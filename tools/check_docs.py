#!/usr/bin/env python
"""Execute the fenced Python blocks in markdown docs and check their links.

CI's docs job runs this over ``docs/usage.md`` and ``docs/robustness.md``
so the recipes in the handbook cannot silently rot: every ````` ```python
````` block is executed, in order, in one shared namespace per file (so a
``trace`` built in an early block is usable by later ones — exactly how a
reader would paste them into a REPL).  Blocks that are illustrative rather
than runnable opt out with ````` ```python no-run `````.

Relative markdown links (``[text](path)``) are also resolved against the
doc's directory and must exist; external (``http``/``mailto``) and
in-page (``#``) links are ignored.

Usage::

    PYTHONPATH=src python tools/check_docs.py docs/usage.md docs/robustness.md

Blocks run with the current working directory switched to a throwaway
temp dir, so recipes may write scratch files freely without polluting the
repo checkout.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import re
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(
    r"^```(?P<info>[^\n`]*)\n(?P<body>.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\((?P<target>[^)\s]+)\)")


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """Return ``(line_number, source)`` for each runnable python block."""
    blocks = []
    for match in _FENCE.finditer(text):
        info = match.group("info").strip().lower()
        if not info.startswith("python") or "no-run" in info:
            continue
        lineno = text.count("\n", 0, match.start()) + 2  # first code line
        blocks.append((lineno, match.group("body")))
    return blocks


def check_links(doc: Path, text: str) -> list[str]:
    """Return one error string per relative link that does not resolve."""
    errors = []
    for match in _LINK.finditer(text):
        target = match.group("target")
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            errors.append(f"{doc}: broken link -> {target}")
    return errors


def run_blocks(doc: Path, blocks: list[tuple[int, str]]) -> list[str]:
    """Exec the doc's blocks sequentially in one namespace; return errors."""
    namespace: dict = {"__name__": f"docs_check_{doc.stem}"}
    errors = []
    for lineno, source in blocks:
        code = compile(source, f"{doc}:{lineno}", "exec")
        stdout = io.StringIO()
        try:
            with contextlib.redirect_stdout(stdout):
                exec(code, namespace)  # noqa: S102 - that is the point here
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(
                f"{doc}: block at line {lineno} raised "
                f"{type(exc).__name__}: {exc}"
            )
            break  # later blocks likely depend on this one
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("docs", nargs="+", help="markdown files to check")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: list[str] = []
    for name in args.docs:
        doc = Path(name).resolve()
        text = doc.read_text()
        failures.extend(check_links(doc, text))
        blocks = extract_python_blocks(text)
        old_cwd = os.getcwd()
        with tempfile.TemporaryDirectory(prefix="docs-check-") as tmp:
            os.chdir(tmp)
            try:
                failures.extend(run_blocks(doc, blocks))
            finally:
                os.chdir(old_cwd)
        print(f"{doc.name}: {len(blocks)} python block(s) executed")

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
