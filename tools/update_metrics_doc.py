#!/usr/bin/env python
"""Regenerate the metric reference table in ``docs/architecture.md``.

The table between the ``<!-- metric-surface:begin/end -->`` markers is
generated from the code's actual instrument registrations (the same
collector behind ``lfo lint --metrics-dump``), and the deep-lint
``xf-metric-surface`` rule fails CI when the two drift.  Run this after
adding, renaming or removing a metric::

    python tools/update_metrics_doc.py          # rewrite in place
    python tools/update_metrics_doc.py --check  # exit 1 when stale
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis import (  # noqa: E402
    ProjectModel,
    collect_metric_surface,
    render_metrics_markdown,
)
from repro.analysis.metrics import splice_doc_table  # noqa: E402

DOC = ROOT / "docs" / "architecture.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the committed table is stale (CI mode)",
    )
    args = parser.parse_args(argv)

    model = ProjectModel.build(root=ROOT)
    table = render_metrics_markdown(collect_metric_surface(model))
    text = DOC.read_text(encoding="utf-8")
    updated = splice_doc_table(text, table)
    if updated is None:
        print(
            f"error: metric-surface markers not found in {DOC}",
            file=sys.stderr,
        )
        return 2
    if updated == text:
        print("metric reference table up to date")
        return 0
    if args.check:
        print(
            "metric reference table is stale; "
            "run `python tools/update_metrics_doc.py`",
            file=sys.stderr,
        )
        return 1
    DOC.write_text(updated, encoding="utf-8")
    print(f"rewrote metric reference table in {DOC}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
