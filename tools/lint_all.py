#!/usr/bin/env python
"""Run every lint tier with graceful degradation for missing tools.

CI's lint job calls this instead of invoking each checker inline, for two
reasons:

* **resilience** — ``ruff`` and ``mypy`` come from the ``[dev]`` extra
  and have repeatedly been unavailable in constrained build containers;
  a missing third-party checker is a loud *warning*, not a job failure,
  while the repo's own ``lfo lint`` tiers (stdlib-only) always run and
  always gate.
* **artifacts & budget** — the deep tier's JSON and SARIF reports are
  written to files for upload, the deep runtime is printed, and the run
  fails when it exceeds the budget (``DEEP_LINT_BUDGET_SECONDS``, default
  60) — the mtime-keyed project-model cache is what keeps real runs far
  under it.

Exit code: non-zero when any tier that *ran* found problems (or the deep
tier blew its budget); skipped tools never fail the job.
"""

from __future__ import annotations

import argparse
import io
import os
import shutil
import subprocess
import sys
import time
from contextlib import redirect_stdout
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main as lfo_main  # noqa: E402


def _capture(argv: list[str], out_path: Path | None) -> int:
    """Run one ``lfo`` invocation in-process, teeing stdout to a file."""
    print(f"$ lfo {' '.join(argv)}", flush=True)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = lfo_main(argv)
    output = buffer.getvalue()
    if out_path is not None:
        out_path.write_text(output, encoding="utf-8")
        print(f"  wrote {out_path}")
    else:
        sys.stdout.write(output)
    return code


def _external(name: str, cmd: list[str]) -> int:
    """Run a third-party checker; missing binary = skip with a warning."""
    if shutil.which(cmd[0]) is None:
        print(
            f"warning: {name} not installed in this environment; skipping "
            f"(install the [dev] extra to run it)",
            flush=True,
        )
        return 0
    print(f"$ {' '.join(cmd)}", flush=True)
    return subprocess.call(cmd, cwd=ROOT)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="PATH",
        help="write the deep-lint JSON report here (CI artifact)",
    )
    parser.add_argument(
        "--sarif-out", type=Path, default=None, metavar="PATH",
        help="write the deep-lint SARIF report here (CI artifact)",
    )
    parser.add_argument(
        "--budget-seconds", type=float,
        default=float(os.environ.get("DEEP_LINT_BUDGET_SECONDS", "60")),
        help="fail when the deep tier takes longer than this (default "
             "60, or DEEP_LINT_BUDGET_SECONDS)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []

    # Tier 1: per-file invariants (always available, stdlib only).
    if _capture(["lint", "--format", "json"], None) != 0:
        failures.append("lfo lint")

    # Tier 2: whole-program rules, against the committed baseline.  Two
    # renders of the same model: the second reuses the mtime-keyed cache
    # built by the first, so the pair costs ~one analysis.
    start = time.perf_counter()
    deep_json = _capture(
        ["lint", "--deep", "--format", "json"], args.json_out
    )
    deep_sarif = _capture(
        ["lint", "--deep", "--format", "sarif"], args.sarif_out
    )
    deep_seconds = time.perf_counter() - start
    print(f"deep lint wall time: {deep_seconds:.2f}s "
          f"(budget {args.budget_seconds:.0f}s)")
    if deep_json != 0 or deep_sarif != 0:
        failures.append("lfo lint --deep")
    if deep_seconds > args.budget_seconds:
        failures.append(
            f"deep lint budget exceeded "
            f"({deep_seconds:.2f}s > {args.budget_seconds:.0f}s)"
        )

    # Tier 3: the docs metric table must match the registered surface.
    check = subprocess.call(
        [sys.executable, str(ROOT / "tools" / "update_metrics_doc.py"),
         "--check"],
        cwd=ROOT,
    )
    if check != 0:
        failures.append("metric reference table stale")

    # Tier 4: third-party checkers, skip-with-warning when absent.
    if _external("ruff", ["ruff", "check", "src", "benchmarks", "examples"]):
        failures.append("ruff")
    if _external("mypy", ["mypy", "src/repro"]):
        failures.append("mypy")

    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("all lint tiers clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
