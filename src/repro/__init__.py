"""LFO — Learning From OPT for CDN caching.

A from-scratch reproduction of Berger, *Towards Lightweight and Robust
Machine Learning for CDN Caching* (HotNets 2018), including every substrate
the paper depends on: a min-cost-flow computation of offline-optimal caching
decisions, a histogram-based gradient-boosted decision tree learner, an
online feature tracker, a cache simulator with the full policy zoo the paper
compares against, and synthetic CDN workload generators.

Quickstart::

    from repro import SyntheticConfig, generate_trace, LFOOnline, simulate
    from repro.cache import LRUCache

    trace = generate_trace(SyntheticConfig(n_requests=30_000))
    cache_size = trace.footprint() // 10
    print(simulate(trace, LFOOnline(cache_size, window=5_000)).bhr)
    print(simulate(trace, LRUCache(cache_size)).bhr)
"""

from .core import (
    AdaptiveLFOOnline,
    IRLOnline,
    LFOCache,
    LFOModel,
    LFOOnline,
    OptLabelConfig,
    SampledEvictionConfig,
    TieredLFOOnline,
    prepare_windows,
    train_and_evaluate,
)
from .obs import (
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .opt import opt_hit_ratios, solve_opt, solve_pruned, solve_segmented
from .serve import (
    ServeConfig,
    ServeReport,
    ServingLoop,
    SyntheticArrivalDriver,
    TraceReplayDriver,
    default_serving_slo,
)
from .sim import compare_policies, format_table, simulate
from .trace import (
    CostModel,
    Request,
    SyntheticConfig,
    Trace,
    generate_mix_shift_trace,
    generate_mixed_trace,
    generate_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveLFOOnline",
    "IRLOnline",
    "TieredLFOOnline",
    "LFOCache",
    "LFOModel",
    "LFOOnline",
    "OptLabelConfig",
    "SampledEvictionConfig",
    "prepare_windows",
    "train_and_evaluate",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "opt_hit_ratios",
    "solve_opt",
    "solve_pruned",
    "solve_segmented",
    "ServeConfig",
    "ServeReport",
    "ServingLoop",
    "SyntheticArrivalDriver",
    "TraceReplayDriver",
    "default_serving_slo",
    "compare_policies",
    "format_table",
    "simulate",
    "CostModel",
    "Request",
    "SyntheticConfig",
    "Trace",
    "generate_mix_shift_trace",
    "generate_mixed_trace",
    "generate_trace",
    "__version__",
]
