"""Terminal-friendly ASCII charts for the benchmark reports.

The benchmark suite regenerates the *data* behind each paper figure; these
helpers render that data as horizontal bar charts (Figures 1, 6, 8) and
line charts (Figures 5a, 5b, 7) directly into the text reports, so the
shape of each figure is visible without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["bar_chart", "line_chart", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    items: Mapping[str, float] | Sequence[tuple[str, float]],
    width: int = 40,
    fmt: str = "{:.4f}",
) -> str:
    """Horizontal bar chart, one row per (label, value).

    Values must be non-negative; bars scale to the maximum.
    """
    pairs = list(items.items()) if isinstance(items, Mapping) else list(items)
    if not pairs:
        return "(empty chart)"
    values = [v for _, v in pairs]
    if min(values) < 0:
        raise ValueError("bar_chart requires non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label, _ in pairs)
    lines = []
    for label, value in pairs:
        bar = "#" * int(round(width * value / peak))
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}} {fmt.format(value)}"
        )
    return "\n".join(lines)


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """ASCII line chart of one or more series over a shared x axis.

    Each series is drawn with its own marker; the first characters of the
    series names are used when distinct, otherwise letters a, b, c, ...
    """
    if not series:
        return "(empty chart)"
    x = np.asarray(x, dtype=np.float64)
    names = list(series)
    markers = []
    used = set()
    alphabet = iter("abcdefghijklmnopqrstuvwxyz")
    for name in names:
        c = name[0]
        if c in used:
            c = next(a for a in alphabet if a not in used)
        used.add(c)
        markers.append(c)

    all_y = np.concatenate([np.asarray(series[n], dtype=np.float64) for n in names])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, marker in zip(names, markers):
        ys = np.asarray(series[name], dtype=np.float64)
        for xi, yi in zip(x, ys):
            col = int(round((xi - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yi - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(gutter)
        elif i == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_min:.3g}".ljust(width // 2) + f"{x_max:.3g}".rjust(width // 2)
    lines.append(" " * (gutter + 1) + x_axis)
    legend = "  ".join(f"{m}={n}" for n, m in zip(names, markers))
    footer = " ".join(filter(None, [x_label, f"[{legend}]", y_label]))
    lines.append(footer)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline (for windowed BHR series)."""
    vals = np.asarray(list(values), dtype=np.float64)
    if len(vals) == 0:
        return ""
    lo, hi = float(vals.min()), float(vals.max())
    if hi == lo:
        return _BLOCKS[0] * len(vals)
    idx = ((vals - lo) / (hi - lo) * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in idx)
