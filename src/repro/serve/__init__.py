"""Always-on serving harness: the piece that turns simulator into system.

The paper's deployment note — training must not interfere with request
traffic — is modelled analytically in ``sim/server.py`` and measured in
the interference benchmark; this package *runs* it.  A bounded ingestion
queue feeds speculative batched scoring (the ``sim/batched.py`` protocol,
extended to survive live model swaps) over a continuously retraining
:class:`~repro.core.LFOOnline` policy, with warm model handoff, windowed
telemetry, SLO evaluation, and a zero-drop drain on shutdown.  Surfaced
on the command line as ``lfo serve``; operations runbook in
``docs/serving.md``.
"""

from .drivers import SyntheticArrivalDriver, TraceReplayDriver
from .engine import BatchScorer
from .loop import ServeConfig, ServeReport, ServingLoop, default_serving_slo

__all__ = [
    "BatchScorer",
    "ServeConfig",
    "ServeReport",
    "ServingLoop",
    "SyntheticArrivalDriver",
    "TraceReplayDriver",
    "default_serving_slo",
]
