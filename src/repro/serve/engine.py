"""Speculative batched scoring around a continuously retraining policy.

:func:`repro.sim.batched.run_batched` assumes a static model — speculated
scores would silently go stale across a model swap, which is why
``LFOOnline.supports_batched_scoring`` is false.  The serving loop wants
both: batched scoring throughput *and* continuous window retraining with
warm model handoff.  :class:`BatchScorer` reconciles them by driving the
policy's serving hooks explicitly and treating a model swap exactly like
the free-bytes bucket drift the batched simulator already handles:

1. poll the trainer (:meth:`repro.core.LFOOnline.poll_training`) before
   scoring each request — a completed background model installs here, an
   overdue one is watchdog-cancelled — and when the install lands
   mid-window, abandon the remaining speculated scores and re-speculate
   under the new model.  The swapped-in predictor was compiled at train
   time (``set_model`` guarantees it), so the handoff costs one aborted
   lookahead, never a compile on the request path;
2. cap every speculation window at
   :attr:`repro.core.LFOOnline.window_remaining`, so a training-window
   boundary (and the retrain it triggers) always falls *between*
   speculation windows, never under in-flight speculated scores;
3. otherwise replay exactly the batched simulator's protocol — dirty-set
   tracking, free-bytes bucket reuse, adaptive lookahead — through
   ``apply_scored``, then feed each live feature row back with
   :meth:`repro.core.LFOOnline.record_for_training`.

The result is bit-identical to the scalar ``policy.on_request`` loop
(pinned by ``tests/test_serve.py``): speculation changes how fast a
decision was computed, never what it was.

Before the first model trains (``policy.model is None``) requests take a
scalar path — there is no predictor to speculate with — and the engine
upgrades itself the moment the first install lands.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from ..obs import get_registry
from ..sim.batched import (
    DECISION_LATENCY_BUCKETS,
    FREE_BYTES_COLUMN,
    free_bytes_thresholds,
)
from ..trace import Request

if TYPE_CHECKING:  # annotation only; avoids repro.core import at runtime.
    from ..core.lfo import LFOModel
    from ..core.online import LFOOnline
    from ..gbdt import CompiledPredictor

__all__ = ["BatchScorer"]

#: Smallest adaptive lookahead — mirrors ``repro.sim.batched``: below
#: this the vectorised probe cannot amortise its setup cost.
_MIN_WINDOW = 16


class BatchScorer:
    """Score request batches against a live :class:`LFOOnline` policy.

    Synchronous and single-consumer by design: the serving loop calls
    :meth:`process` from one task/thread at a time, and the policy's
    watchdog clock advances exactly once per request through
    ``poll_training`` (the ``_polled`` carry-over flag keeps that true
    across abandoned speculation windows).
    """

    def __init__(self, policy: "LFOOnline", max_batch: int = 256) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if policy.rescore_interval:
            raise ValueError(
                "periodic full rescore invalidates speculated scores; "
                "serving requires rescore_interval=0"
            )
        self.policy = policy
        self.max_batch = max_batch
        #: Warm handoffs observed: every time the serving path picks up a
        #: newly installed model (including the cold-start first install).
        self.n_handoffs = 0
        self._active_model: "LFOModel | None" = policy.model
        self._window = min(_MIN_WINDOW * 4, max_batch)
        self._polled = False
        self._predictor_for: "LFOModel | None" = None
        self._predictor: "CompiledPredictor | None" = None
        self._thresholds: list[float] = []
        registry = get_registry()
        self._observing = registry.enabled
        if registry.enabled:
            self._latency_hist = registry.histogram(
                "serve.decision_latency_seconds", DECISION_LATENCY_BUCKETS
            )
            self._handoff_counter = registry.counter("serve.model_handoffs")
        else:
            self._latency_hist = None
            self._handoff_counter = None

    def process(self, requests: Sequence[Request]) -> list[bool]:
        """Score and apply ``requests`` in order; returns per-request hits.

        Decisions are bit-identical to calling ``policy.on_request`` for
        each request in sequence.
        """
        policy = self.policy
        n = len(requests)
        hits = [False] * n
        i = 0
        while i < n:
            if not self._polled:
                policy.poll_training()
                self._polled = True
            model = policy.model
            if model is not self._active_model:
                self._note_handoff(model)
            if model is None:
                # Cold start: nothing to speculate with yet.  Scalar
                # score (likelihood 0.0, admit-all) until the first
                # trained model installs.
                hits[i] = self._apply_cold(requests[i])
                i += 1
                continue
            i += self._speculate(requests, i, hits, model)
        return hits

    def _apply_cold(self, request: Request) -> bool:
        """One pre-model request: live features, score 0.0, record."""
        policy = self.policy
        if self._observing:
            began = perf_counter()
            features = policy.tracker.features(request, policy.free_bytes)
            hit = policy.apply_scored(request, features, 0.0)
            assert self._latency_hist is not None
            self._latency_hist.observe(perf_counter() - began)
        else:
            features = policy.tracker.features(request, policy.free_bytes)
            hit = policy.apply_scored(request, features, 0.0)
        policy.record_for_training(request, policy.last_features)
        self._polled = False
        return hit

    def _note_handoff(self, model: "LFOModel | None") -> None:
        """Record one warm handoff: a new model went live on this path."""
        self._active_model = model
        self.n_handoffs += 1
        if self._handoff_counter is not None:
            self._handoff_counter.inc()

    def _compiled_for(
        self, model: "LFOModel"
    ) -> tuple["CompiledPredictor", list[float]]:
        """Per-model predictor + free-bytes thresholds, cached by identity."""
        if model is not self._predictor_for:
            predictor = model.classifier.compiled()
            self._predictor_for = model
            self._predictor = predictor
            self._thresholds = free_bytes_thresholds(predictor)
        assert self._predictor is not None
        return self._predictor, self._thresholds

    def _speculate(
        self,
        requests: Sequence[Request],
        i: int,
        hits: list[bool],
        model: "LFOModel",
    ) -> int:
        """One speculation window from ``requests[i]``; returns consumed.

        Mirrors ``run_batched``'s window protocol, with two extra exits:
        the window never crosses the policy's training-window boundary
        (``window_remaining`` cap) and a model install observed by a
        mid-window poll abandons the remaining speculated scores.
        Always consumes at least one request: row 0 was polled before
        entry and its free-bytes value is the probe's by construction.
        """
        policy = self.policy
        tracker = policy.tracker
        predictor, thresholds = self._compiled_for(model)
        limit = min(
            self._window,
            self.max_batch,
            policy.window_remaining,
            len(requests) - i,
        )
        batch = requests[i:i + limit]
        free0 = policy.free_bytes
        speculated = tracker.features_batch(batch, free0)
        scores = predictor.predict_proba(speculated)
        spec_bucket = bisect_left(thresholds, float(free0))
        observing = self._observing
        dirty: set[int] = set()
        consumed = len(batch)
        for k, request in enumerate(batch):
            if not self._polled:
                policy.poll_training()
                self._polled = True
                if policy.model is not model:
                    # Warm handoff landed mid-window: every remaining
                    # speculated score came from the old model.  Abandon
                    # the window and re-speculate under the new predictor
                    # — exactly the decision the scalar loop would make
                    # for this request.  ``_polled`` stays set so
                    # re-entry does not advance the watchdog clock twice.
                    self._note_handoff(policy.model)
                    consumed = k
                    break
            obj = request.obj
            if obj in dirty:
                # Re-requested (or cap-evicted) inside the window; score
                # the live row — identical to the scalar loop's value.
                features = tracker.features(request, policy.free_bytes)
                score = model.likelihood_single(features)
            else:
                free_live = policy.free_bytes
                if bisect_left(thresholds, float(free_live)) != spec_bucket:
                    # Free bytes left the speculated bucket: abandon and
                    # re-speculate from this row (never k == 0 — row 0's
                    # free bytes are exactly ``free0``).
                    consumed = k
                    break
                features = speculated[k]
                features[FREE_BYTES_COLUMN] = free_live
                score = float(scores[k])
            if observing:
                began = perf_counter()
                hit = policy.apply_scored(request, features, score)
                assert self._latency_hist is not None
                self._latency_hist.observe(perf_counter() - began)
            else:
                hit = policy.apply_scored(request, features, score)
            # ``last_features`` is the row the decision actually used —
            # what training must see (clean rows are bit-identical to a
            # live extraction after the free-bytes patch).
            policy.record_for_training(request, policy.last_features)
            self._polled = False
            dirty.add(obj)
            evicted = tracker.last_evicted
            if evicted is not None:
                dirty.add(evicted)
            hits[i + k] = hit
        # Adaptive lookahead, mirroring run_batched: grow on a fully
        # consumed window, shrink toward the observed break distance.
        if consumed == len(batch):
            self._window = min(self._window * 2, self.max_batch)
        else:
            self._window = min(max(_MIN_WINDOW, consumed + 1), self.max_batch)
        return consumed
