"""The always-on serving loop: bounded ingestion, batched scoring, drain.

Deployment shape (see ``docs/serving.md`` for the operations runbook)::

    driver ──await put──▶ asyncio.Queue(queue_depth) ──get──▶ BatchScorer
      (trace replay /        bounded: backpressure,              │
       synthetic arrivals)   never silent loss            apply_scored +
                                                          record_for_training
                                                                 │
                             background trainer ◀── window boundary
                             (warm handoff at next poll)

Zero dropped requests is structural, not aspirational: the only buffer is
the bounded queue, producers ``await put`` into it (they *wait* when it is
full — ``serve.backpressure_waits`` counts how often), and shutdown drains
whatever is queued through the scorer before flushing telemetry.  The
``serve.dropped`` counter exists so the invariant is observable; it moves
only if a hard abort interrupts the drain itself.

Cancellation (SIGINT under ``asyncio.run``) is the supported shutdown
path: the loop catches ``CancelledError``, drains the queue
synchronously, closes the partial telemetry window exactly once
(:meth:`~repro.obs.WindowedRegistry.flush` is atomic against racing
flushes), and re-raises so the runner sees a regular interrupt.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, AsyncIterable, Callable

from ..obs import get_registry
from ..obs.slo import SloObjective, SloSpec
from ..trace import Request
from .engine import BatchScorer

if TYPE_CHECKING:  # annotation only; avoids repro.core import at runtime.
    from ..core.online import LFOOnline

__all__ = ["ServeConfig", "ServeReport", "ServingLoop", "default_serving_slo"]

#: Queue sentinel: the producer posts it after the driver is exhausted so
#: the consumer can finish in-flight batches and return cleanly.
_EOF = object()


def default_serving_slo() -> SloSpec:
    """The serving-harness SLO: tail latency, BHR, and model freshness.

    Decision-latency ceilings (p50 ≤ 1 ms, p99 ≤ 2 ms, p999 ≤ 5 ms on
    ``serve.decision_latency_seconds``) are deliberately generous against
    the microsecond-scale decisions the engine actually makes — they gate
    *pathology* (a stall on the scoring path, training leaking into it),
    not CPU luck, so the gate holds on noisy CI hosts.  BHR and staleness
    mirror :meth:`repro.obs.SloSpec.default` — same objectives, evaluated
    over the serving windows.
    """
    return SloSpec(
        objectives=(
            SloObjective(
                name="decision_latency_p50",
                kind="latency_quantile",
                metric="serve.decision_latency_seconds",
                quantile=0.5,
                max_value=1e-3,
                budget=0.1,
                min_count=10,
            ),
            SloObjective(
                name="decision_latency_p99",
                kind="latency_quantile",
                metric="serve.decision_latency_seconds",
                quantile=0.99,
                max_value=2e-3,
                budget=0.1,
                min_count=10,
            ),
            SloObjective(
                name="decision_latency_p999",
                kind="latency_quantile",
                metric="serve.decision_latency_seconds",
                quantile=0.999,
                max_value=5e-3,
                budget=0.1,
                min_count=50,
            ),
            SloObjective(
                name="window_bhr",
                kind="window_bhr",
                min_value=0.2,
                budget=0.2,
            ),
            SloObjective(
                name="train_to_install",
                kind="staleness",
                max_value=8.0,
                budget=0.1,
            ),
        ),
    )


@dataclass(frozen=True)
class ServeConfig:
    """Sizing knobs for the serving loop.

    Attributes:
        queue_depth: ingestion queue bound.  The deeper the queue, the
            more burst the service absorbs before backpressuring the
            driver — and the more requests a shutdown drain must score.
        max_batch: cap on both the queue drain per scoring pass and the
            engine's speculative lookahead.
    """

    queue_depth: int = 1024
    max_batch: int = 256

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")


@dataclass
class ServeReport:
    """What one serving run did — the CLI verdict's raw material."""

    requests: int = 0
    hits: int = 0
    hit_bytes: float = 0.0
    miss_bytes: float = 0.0
    batches: int = 0
    model_handoffs: int = 0
    backpressure_waits: int = 0
    dropped: int = 0
    drained: bool = True

    @property
    def bhr(self) -> float | None:
        """Byte hit ratio over the whole run (None before any bytes)."""
        total = self.hit_bytes + self.miss_bytes
        if total <= 0:
            return None
        return self.hit_bytes / total

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "bhr": self.bhr,
            "batches": self.batches,
            "model_handoffs": self.model_handoffs,
            "backpressure_waits": self.backpressure_waits,
            "dropped": self.dropped,
            "drained": self.drained,
        }


class ServingLoop:
    """Run ``policy`` continuously over ``driver``'s request stream.

    One producer task feeds the bounded queue from the driver; the
    consumer (the :meth:`run` coroutine itself) drains it in batches
    through a :class:`~repro.serve.BatchScorer`.  Telemetry rolls at
    batch edges (``registry.maybe_roll()``), so window closes — and the
    SLO/health engines subscribed to them — happen on the serving path
    with bounded staleness.

    ``on_decision(request, hit)`` is invoked per request after its batch
    is applied — the reply hook a transport would attach to.

    ``scorer`` swaps the scoring engine: anything exposing
    ``process(requests) -> list[bool]`` and ``n_handoffs`` (e.g.
    :class:`repro.cluster.ClusterScorer`, which fans batches out across
    shard processes).  A scorer with a true ``folds_bytes`` attribute
    already folds the ``sim.hit_bytes``/``sim.miss_bytes`` counters into
    the registry itself, so the loop skips its own fold to avoid
    double-counting window BHR.
    """

    def __init__(
        self,
        policy: "LFOOnline",
        driver: AsyncIterable[Request],
        config: ServeConfig | None = None,
        on_decision: Callable[[Request, bool], None] | None = None,
        scorer: "BatchScorer | None" = None,
    ) -> None:
        self.policy = policy
        self.driver = driver
        self.config = config or ServeConfig()
        self.on_decision = on_decision
        self.report = ServeReport()
        self.scorer = scorer or BatchScorer(
            policy, max_batch=self.config.max_batch
        )
        self._scorer_folds_bytes = bool(
            getattr(self.scorer, "folds_bytes", False)
        )
        registry = get_registry()
        self._registry = registry
        self._observing = registry.enabled
        if registry.enabled:
            self._requests_counter = registry.counter("serve.requests")
            self._batches_counter = registry.counter("serve.batches")
            self._dropped_counter = registry.counter("serve.dropped")
            self._backpressure_counter = registry.counter(
                "serve.backpressure_waits"
            )
            self._queue_depth_gauge = registry.gauge("serve.queue_depth")
            # Producer-shared series (see repro.obs.windows): folding the
            # hit/miss bytes here keeps window_bhr and the BHR SLO
            # objective working unchanged over serving windows.
            self._hit_bytes_counter = registry.counter("sim.hit_bytes")
            self._miss_bytes_counter = registry.counter("sim.miss_bytes")
        else:
            self._requests_counter = None
            self._batches_counter = None
            self._dropped_counter = None
            self._backpressure_counter = None
            self._queue_depth_gauge = None
            self._hit_bytes_counter = None
            self._miss_bytes_counter = None
        self._finalised = False

    async def run(self) -> ServeReport:
        """Serve until the driver is exhausted (or the task is cancelled).

        Cancellation drains the queue through the scorer, flushes the
        partial telemetry window exactly once, and re-raises.
        """
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_depth)
        producer = asyncio.create_task(self._produce(queue))
        try:
            await self._consume(queue)
            await producer  # surfaces driver errors after the EOF drain
        except asyncio.CancelledError:
            producer.cancel()
            self._drain(queue)
            raise
        # Consumer failure: stop feeding the queue before propagating.
        # lint: ignore-next-line[rob-broad-except]
        except BaseException:
            producer.cancel()
            raise
        finally:
            self._finalise()
        return self.report

    async def _produce(self, queue: asyncio.Queue) -> None:
        try:
            async for request in self.driver:
                if queue.full():
                    # Structural zero-drop: a full queue *waits* the
                    # producer instead of shedding the request.
                    self.report.backpressure_waits += 1
                    if self._backpressure_counter is not None:
                        self._backpressure_counter.inc()
                await queue.put(request)
        except asyncio.CancelledError:
            raise  # shutdown: the drain path takes over, no EOF needed
        except Exception:
            # Still post the sentinel so the consumer finishes what is
            # already queued; the error resurfaces from ``await producer``.
            await queue.put(_EOF)
            raise
        else:
            await queue.put(_EOF)

    async def _consume(self, queue: asyncio.Queue) -> None:
        max_batch = self.config.max_batch
        while True:
            item = await queue.get()
            if item is _EOF:
                return
            batch = [item]
            saw_eof = False
            while len(batch) < max_batch:
                try:
                    nxt = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _EOF:
                    saw_eof = True
                    break
                batch.append(nxt)
            self._process_batch(batch, queue)
            if saw_eof:
                return
            # Cooperative yield: let the producer top the queue back up
            # (and any metrics server thread's loop callbacks run).
            await asyncio.sleep(0)

    def _process_batch(
        self, batch: list[Request], queue: asyncio.Queue
    ) -> None:
        hits = self.scorer.process(batch)
        hit_bytes = 0.0
        miss_bytes = 0.0
        n_hits = 0
        for request, hit in zip(batch, hits):
            if hit:
                hit_bytes += request.size
                n_hits += 1
            else:
                miss_bytes += request.size
        report = self.report
        report.requests += len(batch)
        report.hits += n_hits
        report.hit_bytes += hit_bytes
        report.miss_bytes += miss_bytes
        report.batches += 1
        report.model_handoffs = self.scorer.n_handoffs
        if self._observing:
            assert self._requests_counter is not None
            assert self._batches_counter is not None
            assert self._hit_bytes_counter is not None
            assert self._miss_bytes_counter is not None
            assert self._queue_depth_gauge is not None
            self._requests_counter.inc(len(batch))
            self._batches_counter.inc()
            if not self._scorer_folds_bytes:
                self._hit_bytes_counter.inc(hit_bytes)
                self._miss_bytes_counter.inc(miss_bytes)
            self._queue_depth_gauge.set(queue.qsize())
            self._registry.maybe_roll()
        if self.on_decision is not None:
            for request, hit in zip(batch, hits):
                self.on_decision(request, hit)

    def _drain(self, queue: asyncio.Queue) -> None:
        """Score everything still queued — the zero-drop half of shutdown.

        Runs synchronously (the event loop is tearing down), bounded by
        ``queue_depth`` items.  Only a hard abort *during* the drain can
        leave requests unscored; those are counted into ``serve.dropped``
        so the loss is loud, and the report marks the run undrained.
        """
        pending: list[Request] = []
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _EOF:
                pending.append(item)
        done = 0
        try:
            while done < len(pending):
                chunk = pending[done:done + self.config.max_batch]
                self._process_batch(chunk, queue)
                done += len(chunk)
        except BaseException:
            left = len(pending) - done
            self.report.dropped += left
            self.report.drained = False
            if self._dropped_counter is not None:
                self._dropped_counter.inc(left)
            raise

    def _finalise(self) -> None:
        """Close out telemetry exactly once, whatever path got here."""
        if self._finalised:
            return
        self._finalised = True
        if self._observing:
            assert self._queue_depth_gauge is not None
            self._queue_depth_gauge.set(0)
            self._registry.flush()
