"""Request drivers: async sources the serving loop ingests from.

A driver is anything ``async for`` can consume that yields
:class:`~repro.trace.Request` objects.  The two here cover the harness's
needs — offline replay at queue speed, and a paced synthetic arrival
process for latency-realistic runs — and double as the reference for
writing a real transport adapter (accept a connection, yield requests,
let the bounded queue backpressure the socket).
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Iterable

import numpy as np

from ..trace import Request

__all__ = ["TraceReplayDriver", "SyntheticArrivalDriver"]

#: Replay fairness: yield the event loop at least every N requests even
#: when the queue never fills (a put into a non-full queue never
#: suspends, so an unthrottled replay could starve the consumer).
_YIELD_EVERY = 256


class TraceReplayDriver:
    """Replay recorded requests as fast as the bounded queue admits.

    The driver itself applies no pacing — backpressure comes from the
    loop's ``await put`` when the queue is full, which is the mechanism
    the zero-drop guarantee rests on.
    """

    def __init__(
        self,
        requests: Iterable[Request],
        yield_every: int = _YIELD_EVERY,
    ) -> None:
        if yield_every < 1:
            raise ValueError("yield_every must be at least 1")
        self.requests = requests
        self.yield_every = yield_every

    async def __aiter__(self) -> AsyncIterator[Request]:
        for n, request in enumerate(self.requests, start=1):
            yield request
            if n % self.yield_every == 0:
                await asyncio.sleep(0)


class SyntheticArrivalDriver:
    """Replay requests on a seeded Poisson arrival process.

    Inter-arrival gaps are exponential with mean ``1 / rate`` seconds of
    loop time, drawn from a seeded generator so a run is reproducible
    end-to-end (the determinism lint holds ``repro.serve`` to the same
    seeded-RNG bar as the simulator).  Useful when the run should exercise
    idle windows and arrival bursts rather than saturate the queue.
    """

    def __init__(
        self,
        requests: Iterable[Request],
        rate: float,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (requests per second)")
        self.requests = requests
        self.rate = float(rate)
        self.seed = seed

    async def __aiter__(self) -> AsyncIterator[Request]:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / self.rate
        for request in self.requests:
            await asyncio.sleep(float(rng.exponential(scale)))
            yield request
