"""Online features (Section 2.2): sparse tracker and dataset assembly."""

from .dataset import Dataset, build_dataset, build_features, thin_gaps
from .noise import add_relative_noise, feature_bits_required, quantize_features
from .tracker import MISSING_GAP, FeatureTracker, feature_names

__all__ = [
    "Dataset",
    "build_dataset",
    "build_features",
    "thin_gaps",
    "add_relative_noise",
    "feature_bits_required",
    "quantize_features",
    "MISSING_GAP",
    "FeatureTracker",
    "feature_names",
]
