"""Online feature tracking (Section 2.2 of the paper).

LFO's features per request:

* object size;
* most recent retrieval cost;
* currently free (available) bytes in the cache;
* the time *gaps* between the last ``n_gaps`` (default 50) consecutive
  requests to the object.

The gap representation is shift-invariant (except the first entry, which is
the gap from the most recent request to "now"), which the paper argues is
important for robustness, unlike LRU-K's absolute-age representation.

The tracker uses a sparse per-object representation (most CDN objects see
fewer than 5 requests, §2.2) with an optional LRU cap on tracked objects so
memory stays bounded on adversarial one-touch scans.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter

import numpy as np

from ..obs import get_registry
from ..trace import Request

__all__ = ["FeatureTracker", "MISSING_GAP", "feature_names"]

#: Sentinel for "no such past request": larger than any realistic gap so the
#: learner can separate "long ago" from "never".
MISSING_GAP = 1e9


def feature_names(n_gaps: int = 50) -> list[str]:
    """Column names of the feature matrix, in order."""
    return ["size", "cost", "free_bytes"] + [
        f"gap_{k}" for k in range(1, n_gaps + 1)
    ]


class _ObjectState:
    """Per-object sliding history (ring buffer of request times)."""

    __slots__ = ("times", "head", "count", "last_cost")

    def __init__(self, n_slots: int) -> None:
        self.times = [0.0] * n_slots
        self.head = 0
        self.count = 0
        self.last_cost = 0.0

    def record(self, time: float, cost: float, n_slots: int) -> None:
        self.times[self.head] = time
        self.head = (self.head + 1) % n_slots
        if self.count < n_slots:
            self.count += 1
        self.last_cost = cost

    def gaps(self, now: float, n_gaps: int, n_slots: int) -> list[float]:
        """Gaps ordered most-recent first; padded with MISSING_GAP."""
        out = [MISSING_GAP] * n_gaps
        prev = now
        for k in range(min(self.count, n_gaps)):
            pos = (self.head - 1 - k) % n_slots
            t = self.times[pos]
            out[k] = prev - t
            prev = t
        return out


class FeatureTracker:
    """Sparse online feature state over a request stream.

    Usage per request (order matters)::

        features = tracker.features(request, free_bytes)  # before updating
        tracker.update(request)                           # then record it

    Attributes:
        n_gaps: number of gap features (the paper uses 50).
        max_objects: optional LRU bound on tracked objects (0 = unbounded).
    """

    def __init__(self, n_gaps: int = 50, max_objects: int = 0) -> None:
        if n_gaps <= 0:
            raise ValueError("n_gaps must be positive")
        if max_objects < 0:
            raise ValueError("max_objects must be >= 0")
        self.n_gaps = n_gaps
        # One extra slot so gap_1 (now - last request) plus n_gaps-1
        # historical gaps are all available.
        self._n_slots = n_gaps + 1
        self.max_objects = max_objects
        self._objects: OrderedDict[int, _ObjectState] = OrderedDict()
        # Extraction-latency instrument, cached per registry so the enabled
        # path pays one identity check per request instead of a registry
        # lookup; None until a real registry is first seen.
        self._obs_registry = None
        self._obs_hist = None

    @property
    def n_features(self) -> int:
        """Width of the feature vector."""
        return 3 + self.n_gaps

    @property
    def n_tracked(self) -> int:
        """Number of objects with live state."""
        return len(self._objects)

    def features(self, request: Request, free_bytes: int) -> np.ndarray:
        """Feature vector for ``request`` given current cache free space.

        Must be called *before* :meth:`update` for the same request, so
        gap_1 reflects the distance to the previous request.

        When a :class:`repro.obs.MetricsRegistry` is active, the
        extraction latency is observed into the
        ``features.extract_seconds`` histogram; with the default
        ``NullRegistry`` the only overhead is one attribute check.
        """
        registry = get_registry()
        if not registry.enabled:
            return self._extract(request, free_bytes)
        if registry is not self._obs_registry:
            self._obs_registry = registry
            self._obs_hist = registry.histogram("features.extract_seconds")
        started = perf_counter()
        vec = self._extract(request, free_bytes)
        self._obs_hist.observe(perf_counter() - started)
        return vec

    def _extract(self, request: Request, free_bytes: int) -> np.ndarray:
        vec = np.empty(self.n_features, dtype=np.float64)
        vec[0] = request.size
        vec[2] = free_bytes
        state = self._objects.get(request.obj)
        if state is None:
            vec[1] = request.cost
            vec[3:] = MISSING_GAP
        else:
            vec[1] = state.last_cost
            vec[3:] = state.gaps(request.time, self.n_gaps, self._n_slots)
        return vec

    def update(self, request: Request) -> None:
        """Record a request in the object's history."""
        state = self._objects.get(request.obj)
        if state is None:
            state = _ObjectState(self._n_slots)
            self._objects[request.obj] = state
        else:
            self._objects.move_to_end(request.obj)
        state.record(request.time, request.cost, self._n_slots)
        if self.max_objects and len(self._objects) > self.max_objects:
            self._objects.popitem(last=False)

    def memory_bytes_naive(self) -> int:
        """The paper's back-of-envelope accounting: a dense per-object record
        of 50 gaps (4 B each) plus size, cost, and bookkeeping ≈ 208 B."""
        per_object = 4 * self.n_gaps + 8  # gaps + size/cost words
        return per_object * len(self._objects)

    def forget(self, obj: int) -> None:
        """Drop state for an object (e.g. after long inactivity)."""
        self._objects.pop(obj, None)
