"""Online feature tracking (Section 2.2 of the paper).

LFO's features per request:

* object size;
* most recent retrieval cost;
* currently free (available) bytes in the cache;
* the time *gaps* between the last ``n_gaps`` (default 50) consecutive
  requests to the object.

The gap representation is shift-invariant (except the first entry, which is
the gap from the most recent request to "now"), which the paper argues is
important for robustness, unlike LRU-K's absolute-age representation.

Storage is an *arena*: every tracked object owns one row of a dense
``(capacity, n_gaps + 1)`` float64 slab of request times, plus parallel
``head``/``count``/``last_cost`` vectors.  An ordered object → row map
preserves LRU order for the optional ``max_objects`` cap, and evicted
rows go on a free list for recycling, so memory stays bounded on
adversarial one-touch scans and the slab never fragments.  Feature
extraction is pure slice arithmetic over the slab — no per-gap Python
loop — and :meth:`FeatureTracker.features_batch` gathers whole request
batches in one shot for the rescoring, dataset-construction, and
labeling paths.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from time import perf_counter

import numpy as np

from ..obs import get_registry
from ..trace import Request

__all__ = ["FeatureTracker", "MISSING_GAP", "feature_names"]

#: Sentinel for "no such past request": larger than any realistic gap so the
#: learner can separate "long ago" from "never".
MISSING_GAP = 1e9

#: Arena capacity for unbounded trackers starts here and doubles on demand.
_INITIAL_CAPACITY = 1024


def feature_names(n_gaps: int = 50) -> list[str]:
    """Column names of the feature matrix, in order."""
    return ["size", "cost", "free_bytes"] + [
        f"gap_{k}" for k in range(1, n_gaps + 1)
    ]


class FeatureTracker:
    """Arena-backed online feature state over a request stream.

    Usage per request (order matters)::

        features = tracker.features(request, free_bytes)  # before updating
        tracker.update(request)                           # then record it

    Attributes:
        n_gaps: number of gap features (the paper uses 50).
        max_objects: optional LRU bound on tracked objects (0 = unbounded).
    """

    def __init__(self, n_gaps: int = 50, max_objects: int = 0) -> None:
        if n_gaps <= 0:
            raise ValueError("n_gaps must be positive")
        if max_objects < 0:
            raise ValueError("max_objects must be >= 0")
        self.n_gaps = n_gaps
        # One extra slot so gap_1 (now - last request) plus n_gaps-1
        # historical gaps are all available.
        self._n_slots = n_gaps + 1
        self.max_objects = max_objects
        capacity = max_objects if max_objects else _INITIAL_CAPACITY
        self._times = np.zeros((capacity, self._n_slots), dtype=np.float64)
        self._last_cost = np.zeros(capacity, dtype=np.float64)
        self._head = np.zeros(capacity, dtype=np.int64)
        self._count = np.zeros(capacity, dtype=np.int64)
        #: object id → arena row, in LRU order (oldest first).
        self._rows: OrderedDict[int, int] = OrderedDict()
        #: rows released by eviction/forget, recycled before slab growth.
        self._free: list[int] = []
        self._next_row = 0
        #: object evicted by the LRU cap during the most recent
        #: :meth:`update` (None when nothing was evicted).  The batched
        #: scoring engine uses this to invalidate speculated rows.
        self.last_evicted: int | None = None
        # Most-recent-first slab positions for every possible head value:
        # row ``h`` lists ``(h - 1 - k) % n_slots`` for k = 0.., so a
        # ring-buffer read is one table row away.
        slots = np.arange(self._n_slots, dtype=np.int64)
        self._idx = (slots[:, None] - 1 - slots[None, :]) % self._n_slots
        # Extraction-latency instruments, cached per registry so the enabled
        # path pays one identity check per request instead of a registry
        # lookup; None until a real registry is first seen.
        self._obs_registry = None
        self._obs_hist = None
        self._obs_batch_hist = None
        self._obs_batch_rows = None

    @property
    def n_features(self) -> int:
        """Width of the feature vector."""
        return 3 + self.n_gaps

    @property
    def n_tracked(self) -> int:
        """Number of objects with live state."""
        return len(self._rows)

    # -- arena bookkeeping --------------------------------------------------

    def _grow(self) -> None:
        capacity = len(self._head)
        new_capacity = capacity * 2
        times = np.zeros((new_capacity, self._n_slots), dtype=np.float64)
        times[:capacity] = self._times
        self._times = times
        self._last_cost = np.resize(self._last_cost, new_capacity)
        self._last_cost[capacity:] = 0.0
        self._head = np.resize(self._head, new_capacity)
        self._head[capacity:] = 0
        self._count = np.resize(self._count, new_capacity)
        self._count[capacity:] = 0

    def _alloc_row(self) -> int:
        if self._free:
            row = self._free.pop()
        else:
            if self._next_row >= len(self._head):
                self._grow()
            row = self._next_row
            self._next_row += 1
        # Stale slab times are invisible while count is 0, so resetting
        # the scalars is all recycling needs.
        self._head[row] = 0
        self._count[row] = 0
        self._last_cost[row] = 0.0
        return row

    # -- extraction ---------------------------------------------------------

    def features(self, request: Request, free_bytes: int) -> np.ndarray:
        """Feature vector for ``request`` given current cache free space.

        Must be called *before* :meth:`update` for the same request, so
        gap_1 reflects the distance to the previous request.

        When a :class:`repro.obs.MetricsRegistry` is active, the
        extraction latency is observed into the
        ``features.extract_seconds`` histogram; with the default
        ``NullRegistry`` the only overhead is one attribute check.
        """
        registry = get_registry()
        if not registry.enabled:
            return self._extract(request, free_bytes)
        if registry is not self._obs_registry:
            self._bind_instruments(registry)
        started = perf_counter()
        vec = self._extract(request, free_bytes)
        self._obs_hist.observe(perf_counter() - started)
        return vec

    def _bind_instruments(self, registry) -> None:
        self._obs_registry = registry
        self._obs_hist = registry.histogram("features.extract_seconds")
        self._obs_batch_hist = registry.histogram(
            "features.batch_extract_seconds"
        )
        self._obs_batch_rows = registry.histogram("features.batch_rows")

    def _extract(self, request: Request, free_bytes: int) -> np.ndarray:
        vec = np.empty(self.n_features, dtype=np.float64)
        vec[0] = request.size
        vec[2] = free_bytes
        row = self._rows.get(request.obj)
        if row is None:
            vec[1] = request.cost
            vec[3:] = MISSING_GAP
        else:
            vec[1] = self._last_cost[row]
            self._gaps_into(row, request.time, vec[3:])
        return vec

    def _gaps_into(self, row: int, now: float, out: np.ndarray) -> None:
        """Write gaps (most-recent first, MISSING_GAP padded) into ``out``."""
        m = min(int(self._count[row]), self.n_gaps)
        out[m:] = MISSING_GAP
        if m:
            t = self._times[row, self._idx[self._head[row], :m]]
            out[0] = now - t[0]
            if m > 1:
                out[1:m] = t[: m - 1] - t[1:m]

    def features_batch(
        self,
        requests: Sequence[Request],
        free_bytes,
        update: bool = False,
    ) -> np.ndarray:
        """Feature matrix for a batch of requests.

        Args:
            requests: the requests to featurise, in stream order.
            free_bytes: free cache bytes — one scalar applied to every
                row, or a per-request sequence.
            update: with ``False`` (probe mode) every row is extracted
                against the *current* tracker state and nothing is
                recorded — the rescoring and speculative-scoring case,
                fully vectorised across the batch.  With ``True`` each
                request is extracted and then recorded before the next,
                exactly like a ``features``/``update`` loop — the
                dataset-construction case, where in-batch repeats of an
                object must see each other.

        Returns:
            ``(len(requests), n_features)`` float64 matrix whose rows are
            bit-identical to the equivalent :meth:`features` calls.
        """
        registry = get_registry()
        if not registry.enabled:
            return self._extract_batch(requests, free_bytes, update)
        if registry is not self._obs_registry:
            self._bind_instruments(registry)
        started = perf_counter()
        X = self._extract_batch(requests, free_bytes, update)
        self._obs_batch_hist.observe(perf_counter() - started)
        self._obs_batch_rows.observe(len(requests))
        return X

    def _extract_batch(
        self,
        requests: Sequence[Request],
        free_bytes,
        update: bool,
    ) -> np.ndarray:
        n = len(requests)
        fb = np.broadcast_to(
            np.asarray(free_bytes, dtype=np.float64), (n,)
        )
        if update:
            X = np.empty((n, self.n_features), dtype=np.float64)
            for i, request in enumerate(requests):
                X[i] = self._extract(request, fb[i])
                self.update(request)
            return X
        X = np.empty((n, self.n_features), dtype=np.float64)
        X[:, 0] = [r.size for r in requests]
        X[:, 1] = [r.cost for r in requests]
        X[:, 2] = fb
        X[:, 3:] = MISSING_GAP
        rows = np.array(
            [self._rows.get(r.obj, -1) for r in requests], dtype=np.int64
        )
        known = np.flatnonzero(rows >= 0)
        if len(known) == 0:
            return X
        kr = rows[known]
        now = np.array([requests[i].time for i in known], dtype=np.float64)
        X[known, 1] = self._last_cost[kr]
        counts = np.minimum(self._count[kr], self.n_gaps)
        positions = self._idx[self._head[kr], : self.n_gaps]
        t = self._times[kr[:, None], positions]
        gaps = np.empty_like(t)
        gaps[:, 0] = now - t[:, 0]
        gaps[:, 1:] = t[:, :-1] - t[:, 1:]
        gaps[np.arange(self.n_gaps)[None, :] >= counts[:, None]] = MISSING_GAP
        X[known, 3:] = gaps
        return X

    # -- recording ----------------------------------------------------------

    def update(self, request: Request) -> None:
        """Record a request in the object's history."""
        row = self._rows.get(request.obj)
        if row is None:
            row = self._alloc_row()
            self._rows[request.obj] = row
        else:
            self._rows.move_to_end(request.obj)
        head = self._head[row]
        self._times[row, head] = request.time
        self._head[row] = (head + 1) % self._n_slots
        if self._count[row] < self._n_slots:
            self._count[row] += 1
        self._last_cost[row] = request.cost
        evicted = None
        if self.max_objects and len(self._rows) > self.max_objects:
            evicted, released = self._rows.popitem(last=False)
            self._free.append(released)
        self.last_evicted = evicted

    def arena_summary(self, now: float) -> dict:
        """Distribution summary of the live arena state at time ``now``.

        One vectorised pass over the live rows — gather, subtract, mean —
        cheap enough to run at every training-window close, which is where
        :class:`repro.core.LFOOnline` publishes it as the
        ``online.feature_*`` gauges the health layer's feature-drift
        detectors watch.

        Returns ``tracked`` (live objects), ``recency_mean`` (mean trace
        time since each object's last request — the gap_1 population), and
        ``cost_mean`` (mean last retrieval cost).
        """
        n = len(self._rows)
        if n == 0:
            return {"tracked": 0, "recency_mean": 0.0, "cost_mean": 0.0}
        rows = np.fromiter(self._rows.values(), dtype=np.int64, count=n)
        # Every mapped row has count >= 1 (update records before mapping
        # is observable), so the slot behind head is always a real time.
        heads = self._head[rows]
        last_times = self._times[rows, (heads - 1) % self._n_slots]
        return {
            "tracked": n,
            "recency_mean": float(now - last_times.mean()),
            "cost_mean": float(self._last_cost[rows].mean()),
        }

    def memory_bytes_naive(self) -> int:
        """The paper's back-of-envelope accounting: a dense per-object record
        of 50 gaps (4 B each) plus size, cost, and bookkeeping ≈ 208 B."""
        per_object = 4 * self.n_gaps + 8  # gaps + size/cost words
        return per_object * len(self._rows)

    def forget(self, obj: int) -> None:
        """Drop state for an object (e.g. after long inactivity)."""
        row = self._rows.pop(obj, None)
        if row is not None:
            self._free.append(row)
