"""Feature accuracy reduction and noise injection (paper §2.2).

The paper argues the feature tracker's memory cost can be cut by storing
features at lower accuracy, and that "adding small amounts of noise can
actually be helpful in learning more robust models".  These utilities make
both claims testable:

* :func:`quantize_features` rounds features to a given number of
  significand bits (what a lossy fixed-width encoding would store);
* :func:`add_relative_noise` perturbs features multiplicatively;
* :func:`feature_bits_required` reports the naive storage width a column
  needs after quantisation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "quantize_features",
    "add_relative_noise",
    "feature_bits_required",
]


def quantize_features(X: np.ndarray, bits: int) -> np.ndarray:
    """Round every value to ``bits`` significand bits (log-scale buckets).

    Positive values are snapped to the nearest representable value with a
    ``bits``-bit mantissa — i.e. relative error is bounded by ``2**-bits``.
    Zero stays zero.  This models storing gaps/sizes in a compact
    floating-point-like encoding instead of full doubles.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if bits >= 52:
        return np.asarray(X, dtype=np.float64).copy()
    X = np.asarray(X, dtype=np.float64)
    out = np.zeros_like(X)
    nonzero = X != 0
    vals = X[nonzero]
    signs = np.sign(vals)
    mags = np.abs(vals)
    exponents = np.floor(np.log2(mags))
    mantissas = mags / 2.0**exponents  # in [1, 2)
    step = 2.0 ** -(bits - 1)
    snapped = np.round((mantissas - 1.0) / step) * step + 1.0
    out[nonzero] = signs * snapped * 2.0**exponents
    return out


def add_relative_noise(
    X: np.ndarray, scale: float, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Multiply every value by ``1 + eps`` with ``eps ~ N(0, scale)``.

    Relative (not additive) noise keeps the perturbation meaningful across
    features spanning many orders of magnitude (bytes vs seconds).
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if rng is None:
        rng = np.random.default_rng(0)
    X = np.asarray(X, dtype=np.float64)
    return X * (1.0 + rng.normal(0.0, scale, size=X.shape))


def feature_bits_required(X: np.ndarray, bits: int) -> int:
    """Bits per value of a naive (exponent + mantissa) encoding.

    The exponent range is derived from the data; the mantissa takes
    ``bits`` bits.  Used by the memory-accounting ablation to translate
    quantisation levels into tracker bytes.
    """
    X = np.asarray(X, dtype=np.float64)
    mags = np.abs(X[X != 0])
    if len(mags) == 0:
        return bits
    exponents = np.floor(np.log2(mags))
    exp_range = int(exponents.max() - exponents.min()) + 1
    exponent_bits = max(1, int(np.ceil(np.log2(exp_range + 1))))
    return exponent_bits + bits
