"""Assembling (features, OPT label) training datasets from a trace window.

This ties the substrates together: walk the window once, emitting each
request's online feature vector *as it would have been observed live* (the
free-bytes feature comes from simulating a cache alongside), paired with the
OPT decision computed offline for the same window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..trace import Trace
from .tracker import FeatureTracker, feature_names

__all__ = ["Dataset", "build_features", "build_dataset", "thin_gaps"]


@dataclass
class Dataset:
    """A training dataset: features ``X``, labels ``y``, column names."""

    X: np.ndarray
    y: np.ndarray
    names: list[str]

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, idx: np.ndarray) -> "Dataset":
        """Row subset (e.g. for subsampling experiments)."""
        return Dataset(self.X[idx], self.y[idx], self.names)


def build_features(
    trace: Trace,
    tracker: FeatureTracker,
    free_bytes_fn: Callable[[int], int] | None = None,
    cache_size: int = 0,
) -> np.ndarray:
    """Feature matrix for every request of a window, in trace order.

    Args:
        trace: the window to featurise.
        tracker: feature state, mutated in place (pass a fresh tracker for
            an isolated window, or carry one across windows for the online
            pipeline).
        free_bytes_fn: called with the request index, returns the cache's
            free bytes observed at that request.  When None, a pessimistic
            constant (``cache_size``) is used.
        cache_size: fallback free-bytes value when ``free_bytes_fn`` is None.
    """
    requests = list(trace)
    if free_bytes_fn is not None:
        free = np.array(
            [free_bytes_fn(i) for i in range(len(requests))],
            dtype=np.float64,
        )
    else:
        free = float(cache_size)
    return tracker.features_batch(requests, free, update=True)


def build_dataset(
    trace: Trace,
    decisions: np.ndarray,
    tracker: FeatureTracker | None = None,
    free_bytes: np.ndarray | None = None,
    cache_size: int = 0,
) -> Dataset:
    """Pair per-request features with OPT labels for a window.

    Args:
        trace: the window.
        decisions: OPT's per-request admission decisions (same length).
        tracker: optional pre-warmed tracker (fresh one created if None).
        free_bytes: optional per-request observed free bytes; constant
            ``cache_size`` when omitted.
        cache_size: fallback free-bytes constant.
    """
    if len(decisions) != len(trace):
        raise ValueError("decisions length must match trace length")
    if tracker is None:
        tracker = FeatureTracker()
    fn = None
    if free_bytes is not None:
        if len(free_bytes) != len(trace):
            raise ValueError("free_bytes length must match trace length")
        fn = lambda i: int(free_bytes[i])  # noqa: E731
    X = build_features(trace, tracker, free_bytes_fn=fn, cache_size=cache_size)
    y = np.asarray(decisions, dtype=np.float64)
    return Dataset(X, y, feature_names(tracker.n_gaps))


def thin_gaps(dataset: Dataset, keep_gaps: list[int]) -> Dataset:
    """Keep only a subset of gap features (paper §3, Figure 8 discussion:
    "artificially thinning out the time gap feature space (e.g., only using
    time gaps 1, 2, 4, 8, 16, etc.)").

    Args:
        dataset: full dataset with columns size, cost, free_bytes, gap_1..N.
        keep_gaps: 1-based gap indices to retain, e.g. ``[1, 2, 4, 8, 16]``.
    """
    base = [0, 1, 2]
    name_to_col = {name: i for i, name in enumerate(dataset.names)}
    cols = base + [name_to_col[f"gap_{k}"] for k in keep_gaps]
    names = [dataset.names[c] for c in cols]
    return Dataset(dataset.X[:, cols], dataset.y, names)
