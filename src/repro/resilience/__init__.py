"""Fault injection and graceful-degradation tooling.

Two halves, one goal — proving the caching loop degrades instead of dying:

* :mod:`repro.resilience.faults` — deterministic, declarative fault plans
  (:class:`FaultPlan` / :class:`FaultSpec`) installed process-wide and
  consulted by hooks in ``core.online``, ``opt.parallel`` and
  ``trace.readers``;
* :mod:`repro.resilience.harness` — :class:`SimulatedTrainerExecutor`, the
  deterministic trainer used to drill hang/watchdog scenarios.

The degradation machinery itself (watchdog, backoff, staleness fallback,
segment retry, tolerant trace reading) lives in the hardened components;
``docs/robustness.md`` is the operations runbook tying fault → metric →
behaviour → recovery together.
"""

from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    get_fault_plan,
    set_fault_plan,
    use_fault_plan,
)
from .harness import SimulatedTrainerExecutor

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "SimulatedTrainerExecutor",
    "get_fault_plan",
    "set_fault_plan",
    "use_fault_plan",
]
