"""Deterministic fault injection: declarative, seeded fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — *which site*
fails, *how* (crash / hang / latency / corrupt), and *when* (the n-th
occurrence, every k-th, or with a seeded probability).  The plan is
installed process-wide (:func:`set_fault_plan` / :func:`use_fault_plan`,
mirroring ``repro.obs.use_registry``) and consulted by cheap hooks inside
the hardened components; with no plan installed — the default — every hook
is a single ``None`` check.

Known fault sites and the fault kinds they honour:

========================  =======================  ==========================
site                      kinds                    hooked in
========================  =======================  ==========================
``online.train_window``   ``crash``, ``latency``   ``repro.core.online``
``trainer.submit``        ``hang``                 :class:`repro.resilience.\
SimulatedTrainerExecutor`
``opt.segment_solve``     ``crash``                ``repro.opt.parallel``
                                                   (selector matches the
                                                   *segment index*; ``attempts``
                                                   = consecutive failing solve
                                                   attempts per segment)
``trace.read_line``       ``corrupt``              ``repro.trace.readers``
                                                   (selector matches the
                                                   data-line index)
========================  =======================  ==========================

Determinism: occurrence counting is plain arithmetic and probabilistic
selectors draw from one ``numpy`` Generator seeded at construction, so the
same plan over the same run fires identically every time.  Call
:meth:`FaultPlan.reset` to replay a plan from scratch.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence, Union

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "get_fault_plan",
    "set_fault_plan",
    "use_fault_plan",
]

#: The fault kinds a spec may declare.
FAULT_KINDS = ("crash", "hang", "latency", "corrupt")


class InjectedFaultError(RuntimeError):
    """Raised by a fault hook standing in for a real component failure."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site}")
        self.site = site

    def __reduce__(self) -> tuple[type, tuple[str]]:
        # Round-trips through process-pool pickling with the site intact.
        return (type(self), (self.site,))


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, how, and on which occurrences.

    Args:
        site: the hook name (see the site table in the module docstring).
        kind: ``"crash"`` raises :class:`InjectedFaultError`, ``"hang"``
            parks the submission forever (honoured by
            :class:`~repro.resilience.SimulatedTrainerExecutor`),
            ``"latency"`` sleeps ``latency_seconds`` before proceeding,
            ``"corrupt"`` mangles the payload (trace lines).
        at: fire on exactly these 0-based occurrences of the site.
        every: fire on every ``every``-th occurrence (0, every, 2*every...).
        probability: fire each occurrence with this probability, drawn from
            the plan's seeded generator.  ``at``/``every``/``probability``
            are mutually exclusive; with none given the spec always fires.
        max_fires: stop firing after this many hits (None = unbounded).
        attempts: for ``opt.segment_solve`` crashes, how many consecutive
            solve attempts of the matched segment fail (1 = the retry
            succeeds; a large value forces the serial fallback).
        latency_seconds: sleep duration for ``kind="latency"``.
    """

    site: str
    kind: str = "crash"
    at: tuple[int, ...] | None = None
    every: int | None = None
    probability: float | None = None
    max_fires: int | None = None
    attempts: int = 1
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("fault site must be a non-empty string")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        selectors = [
            s is not None for s in (self.at, self.every, self.probability)
        ]
        if sum(selectors) > 1:
            raise ValueError("at/every/probability are mutually exclusive")
        if self.at is not None:
            object.__setattr__(self, "at", tuple(int(i) for i in self.at))
        if self.every is not None and self.every <= 0:
            raise ValueError("every must be positive")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.max_fires is not None and self.max_fires <= 0:
            raise ValueError("max_fires must be positive")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be non-negative")

    def matches(self, occurrence: int, rng: np.random.Generator) -> bool:
        """Whether this spec fires on the given 0-based occurrence."""
        if self.at is not None:
            return occurrence in self.at
        if self.every is not None:
            return occurrence % self.every == 0
        if self.probability is not None:
            return bool(rng.random() < self.probability)
        return True

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view (``at`` becomes a list)."""
        out = asdict(self)
        if out["at"] is not None:
            out["at"] = list(out["at"])
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (also accepts hand-written JSON)."""
        data = dict(payload)
        if data.get("at") is not None:
            data["at"] = tuple(int(i) for i in data["at"])
        return cls(**data)


class FaultPlan:
    """A seeded set of :class:`FaultSpec` entries plus replay state.

    The plan tracks one occurrence counter per site and one fire counter
    per spec; both are plain integers behind a small lock (fault sites sit
    at window/segment granularity, never on the per-request hot path).
    """

    def __init__(
        self,
        faults: Sequence[Union[FaultSpec, dict]],
        seed: int = 0,
    ) -> None:
        self.faults: tuple[FaultSpec, ...] = tuple(
            f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
            for f in faults
        )
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(self.seed)
        self._occurrences: dict[str, int] = {}
        self._fired: list[int] = [0] * len(self.faults)

    def reset(self) -> None:
        """Rewind all occurrence/fire state (and the RNG) for a fresh replay."""
        with self._lock:
            self._rng = np.random.default_rng(self.seed)
            self._occurrences = {}
            self._fired = [0] * len(self.faults)

    # -- selection ----------------------------------------------------------

    def _select(self, site: str, occurrence: int) -> FaultSpec | None:
        """First still-armed spec for ``site`` matching ``occurrence``.

        Caller holds the lock.  Matching consumes probability draws, so
        selection order (declaration order) is part of the plan's identity.
        """
        for index, spec in enumerate(self.faults):
            if spec.site != site:
                continue
            if spec.max_fires is not None and self._fired[index] >= spec.max_fires:
                continue
            if spec.matches(occurrence, self._rng):
                self._fired[index] += 1
                return spec
        return None

    def should_fire(self, site: str) -> FaultSpec | None:
        """Advance ``site``'s occurrence counter; return the firing spec."""
        with self._lock:
            occurrence = self._occurrences.get(site, 0)
            self._occurrences[site] = occurrence + 1
            return self._select(site, occurrence)

    # -- enactment helpers (one per fault flavour) --------------------------

    def inject(self, site: str) -> None:
        """Crash/latency hook: raise or sleep when a spec fires at ``site``."""
        spec = self.should_fire(site)
        if spec is None:
            return
        if spec.kind == "crash":
            raise InjectedFaultError(site)
        if spec.kind == "latency":
            time.sleep(spec.latency_seconds)

    def corrupt_line(self, line: str) -> str:
        """Trace-reader hook: mangle the line when a spec fires.

        Occurrence index = data-line index (the reader calls this after
        skipping blanks/comments).  The mangled line is guaranteed
        unparseable: the first field becomes non-numeric.
        """
        spec = self.should_fire("trace.read_line")
        if spec is None or spec.kind != "corrupt":
            return line
        return "!corrupt! " + line

    def segment_failures(self, index: int) -> int:
        """Segment-solve hook: consecutive failing attempts for segment
        ``index`` (0 = the segment solves normally).

        Unlike the other hooks this matches on the segment *index*, not an
        occurrence counter, so a plan pins faults to specific segments
        regardless of submission order.
        """
        with self._lock:
            spec = self._select("opt.segment_solve", index)
        if spec is not None and spec.kind == "crash":
            return spec.attempts
        return 0

    # -- introspection / serialisation --------------------------------------

    def fires(self) -> dict[str, int]:
        """Total fires so far, aggregated per site."""
        with self._lock:
            out: dict[str, int] = {}
            for spec, count in zip(self.faults, self._fired):
                out[spec.site] = out.get(spec.site, 0) + count
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe view of the declaration (not the replay state)."""
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the plan declaration as a JSON file."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output / hand-written JSON."""
        return cls(payload.get("faults", []), seed=payload.get("seed", 0))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan from a JSON file (see ``docs/robustness.md``)."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


# -- process-wide active plan (mirrors repro.obs's registry pattern) ---------

_active_plan: FaultPlan | None = None


def get_fault_plan() -> FaultPlan | None:
    """The currently installed plan, or None (the default: no injection)."""
    return _active_plan


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    return previous


@contextmanager
def use_fault_plan(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Scoped :func:`set_fault_plan`: install for the block, then restore."""
    previous = set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)
