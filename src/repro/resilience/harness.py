"""Deterministic trainer harness for fault drills and benchmarks.

``LFOOnline(background=True)`` normally trains on a worker thread, whose
scheduling makes *which window installs when* nondeterministic.  The fault
matrix benchmark needs the opposite: identical behaviour on every run.
:class:`SimulatedTrainerExecutor` provides it — submissions run inline
(synchronously, on the caller's thread) unless the active
:class:`~repro.resilience.FaultPlan` says the trainer hangs, in which case
the returned future simply never resolves.  To ``LFOOnline`` that is
indistinguishable from a deadlocked trainer, which is exactly what the
watchdog exists to catch.

The ``except BaseException`` handlers below mirror the stdlib executor
contract — every outcome, including KeyboardInterrupt, is captured into
the future for the consumer to re-raise — so they are not swallowed
faults; each carries a line-scoped lint marker at the handler.
"""

from __future__ import annotations

from concurrent.futures import Executor, Future
from typing import Any, Callable

from .faults import get_fault_plan

__all__ = ["SimulatedTrainerExecutor"]


class SimulatedTrainerExecutor(Executor):
    """Inline, plan-aware stand-in for the background trainer.

    * No fault plan (or no matching spec): ``submit`` runs the callable
      immediately and returns an already-resolved future, so background
      mode behaves exactly like serial mode — deterministically.
    * A ``trainer.submit`` spec of kind ``"hang"``: the call is parked and
      the returned future stays pending forever.  ``Future.cancel()``
      succeeds (the job never starts), which is the path ``LFOOnline``'s
      watchdog takes.  :meth:`release_hung` later runs any still-wanted
      parked jobs, modelling a trainer that eventually comes back.
    """

    def __init__(self) -> None:
        self._hung: list[
            tuple[Future, Callable[..., Any], tuple, dict]
        ] = []

    def submit(
        self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any
    ) -> Future:
        """Run ``fn`` inline — or park it when the plan hangs the trainer."""
        future: Future = Future()
        plan = get_fault_plan()
        spec = plan.should_fire("trainer.submit") if plan is not None else None
        if spec is not None and spec.kind == "hang":
            self._hung.append((future, fn, args, kwargs))
            return future
        if not future.set_running_or_notify_cancel():
            return future
        try:
            future.set_result(fn(*args, **kwargs))
        # Executor contract: capture everything into the future.
        # lint: ignore-next-line[rob-broad-except]
        except BaseException as exc:
            future.set_exception(exc)
        return future

    @property
    def n_hung(self) -> int:
        """Parked submissions still pending (cancelled ones included)."""
        return len(self._hung)

    def release_hung(self) -> int:
        """Run every parked job whose future was not cancelled meanwhile.

        Returns the number of jobs actually executed — a watchdog-cancelled
        future is dropped silently, exactly like a thread pool discarding a
        cancelled work item.
        """
        released = 0
        while self._hung:
            future, fn, args, kwargs = self._hung.pop(0)
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args, **kwargs))
            # Executor contract: capture everything into the future.
            # lint: ignore-next-line[rob-broad-except]
            except BaseException as exc:
                future.set_exception(exc)
            released += 1
        return released

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Drop parked jobs; inline jobs have already completed."""
        if cancel_futures:
            for future, _fn, _args, _kwargs in self._hung:
                future.cancel()
        self._hung.clear()
