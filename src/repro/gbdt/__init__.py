"""Histogram-based gradient-boosted decision trees (LightGBM substitute)."""

from .binning import BinMapper
from .boosting import GBDTClassifier, GBDTParams, GBDTRegressor
from .losses import LogisticLoss, SquaredLoss, sigmoid
from .tree import Tree, TreeGrowthParams, grow_tree

__all__ = [
    "BinMapper",
    "GBDTClassifier",
    "GBDTParams",
    "GBDTRegressor",
    "LogisticLoss",
    "SquaredLoss",
    "sigmoid",
    "Tree",
    "TreeGrowthParams",
    "grow_tree",
]
