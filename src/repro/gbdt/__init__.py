"""Histogram-based gradient-boosted decision trees (LightGBM substitute)."""

from .binning import BinMapper
from .boosting import GBDTClassifier, GBDTParams, GBDTRegressor
from .compiled import CompiledPredictor, kernel_available
from .losses import LogisticLoss, SquaredLoss, sigmoid
from .tree import Tree, TreeGrowthParams, grow_tree

__all__ = [
    "BinMapper",
    "CompiledPredictor",
    "GBDTClassifier",
    "GBDTParams",
    "GBDTRegressor",
    "LogisticLoss",
    "SquaredLoss",
    "kernel_available",
    "sigmoid",
    "Tree",
    "TreeGrowthParams",
    "grow_tree",
]
