"""Compiled ensemble inference: the scoring hot path in flat-array form.

The reference predictor (:meth:`repro.gbdt.boosting._GBDTBase.predict_raw`)
walks every tree's Python-list node tables per call.  That is fine for
training-time evaluation but far too slow for the paper's Figure 7 claim
that LFO inference sustains CDN line rate.  :class:`CompiledPredictor`
flattens a fitted ensemble *once* into contiguous node tables so scoring
never touches Python lists again:

* per-tree node records are concatenated into one array-of-structs slab
  (``threshold``, ``feature``, ``kid_le``/``kid_gt`` child ids, leaf
  ``value`` pre-scaled by the learning rate) with per-tree root offsets;
* thresholds are the *raw-value* thresholds recorded at growth time, so
  prediction skips re-binning entirely;
* leaves are self-referential (``feature=0``, ``threshold=+inf``, both
  children pointing at the leaf itself), which makes node stepping
  idempotent — a walk can run for a fixed per-tree depth with no
  leaf checks at all.

Two execution backends share that layout:

* **kernel** — a small C routine (branchless fixed-depth walk, several
  interleaved rows to hide load latency) compiled once per process with
  the system C compiler and bound through :mod:`ctypes`.  The kernel is
  model-independent: every predictor in the process reuses the same
  shared object.  ctypes releases the GIL for the call, so predictor
  *threads* scale too, not just processes.
* **numpy** — a vectorised self-loop level walk over the same arrays,
  used when no C compiler is available (``cc`` missing, sandboxed, or
  ``REPRO_GBDT_NO_CC=1``).  Slower than the kernel but still far ahead
  of the reference path, and always available.

Numerical contract (pinned by ``tests/test_gbdt_compiled.py``): the
kernel accumulates ``init_score + Σ value`` in tree order, exactly like
the reference loop, and is bit-identical to it; the numpy backend sums
with numpy's pairwise reduction and agrees to well under 1e-12.  Within
one predictor, batch and single-row scoring are bit-identical to each
other, which is what lets the batched simulator replay decisions
deterministically (see :mod:`repro.sim.batched`).
"""

from __future__ import annotations

import ctypes
import logging
import os
import struct
import subprocess
import tempfile
import threading
from time import perf_counter

import numpy as np

from ..obs import get_registry
from .losses import sigmoid
from .tree import Tree

__all__ = ["CompiledPredictor", "kernel_available"]

logger = logging.getLogger("repro.gbdt")

#: Environment switch forcing the portable numpy backend (useful for the
#: fallback's own tests and for machines without a C toolchain).
_NO_CC_ENV = "REPRO_GBDT_NO_CC"

#: Interleaved rows per kernel iteration: enough independent dependency
#: chains to hide node-table load latency without spilling registers.
_LANES = 8

#: One node record: raw-value threshold, split feature (0 at leaves),
#: child ids for the ``<=`` / ``>`` outcomes (self-loop at leaves), pad
#: to keep the value 8-byte aligned, pre-scaled leaf value.
_NODE_DTYPE = np.dtype(
    [
        ("threshold", "<f8"),
        ("feature", "<i4"),
        ("kid_le", "<i4"),
        ("kid_gt", "<i4"),
        ("pad", "<i4"),
        ("value", "<f8"),
    ]
)

#: Magic prefix of the wire/shared-memory slab format (see
#: :meth:`CompiledPredictor.to_bytes`).  Bump the trailing digit on any
#: layout change so stale cross-process segments fail loudly.
_SLAB_MAGIC = b"LFOSLAB1"

#: ``<`` = little-endian, no struct padding: magic, n_trees u32,
#: n_features u32, n_nodes u64, init_score f8 — 32 bytes total, which
#: keeps every section after it 4-byte aligned and the node slab (at
#: ``32 + 8 * n_trees``) 8-byte aligned with no pad bytes.
_SLAB_HEADER = struct.Struct("<8sIIQd")

_KERNEL_SOURCE = r"""
#include <stdint.h>

typedef struct {
    double threshold;
    int32_t feature;
    int32_t kids[2];
    int32_t pad;
    double value;
} Node;

#define LANES %(lanes)d

void predict_raw(const double *X, long n, long d,
                 const Node *nodes, const int32_t *roots,
                 const int32_t *depths, long n_trees,
                 double init_score, double *out)
{
    long i = 0;
    for (; i + LANES <= n; i += LANES) {
        const double *x[LANES];
        double acc[LANES];
        int32_t cur[LANES];
        for (int l = 0; l < LANES; l++) {
            x[l] = X + (i + l) * d;
            acc[l] = init_score;
        }
        for (long t = 0; t < n_trees; t++) {
            const int32_t root = roots[t];
            const int32_t depth = depths[t];
            for (int l = 0; l < LANES; l++)
                cur[l] = root;
            for (int32_t k = 0; k < depth; k++)
                for (int l = 0; l < LANES; l++) {
                    const Node *nd = nodes + cur[l];
                    cur[l] = nd->kids[x[l][nd->feature] > nd->threshold];
                }
            for (int l = 0; l < LANES; l++)
                acc[l] += nodes[cur[l]].value;
        }
        for (int l = 0; l < LANES; l++)
            out[i + l] = acc[l];
    }
    for (; i < n; i++) {
        const double *x = X + i * d;
        double acc = init_score;
        for (long t = 0; t < n_trees; t++) {
            int32_t cur = roots[t];
            for (int32_t k = 0, depth = depths[t]; k < depth; k++) {
                const Node *nd = nodes + cur;
                cur = nd->kids[x[nd->feature] > nd->threshold];
            }
            acc += nodes[cur].value;
        }
        out[i] = acc;
    }
}
""" % {"lanes": _LANES}


class _Kernel:
    """A loaded ``predict_raw`` C routine (one per process, shared).

    All pointer arguments are declared ``void*`` so callers can pass the
    plain integer addresses from ``ndarray.ctypes.data`` — this skips the
    ``data_as``/``cast`` machinery, which costs more than the walk itself
    on single-row calls.
    """

    def __init__(self, lib: ctypes.CDLL) -> None:
        self.fn = lib.predict_raw
        self.fn.restype = None
        self.fn.argtypes = [
            ctypes.c_void_p, ctypes.c_long, ctypes.c_long,
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_long, ctypes.c_double, ctypes.c_void_p,
        ]


def _sigmoid_scalar(x: float) -> float:
    """Scalar logistic, bit-identical to :func:`repro.gbdt.losses.sigmoid`.

    Uses the same branch structure and ``np.exp`` (whose scalar path
    matches its vectorised path bit-for-bit), with the division done in
    IEEE double either way — so a single-row probability always equals
    the corresponding batch entry exactly.
    """
    if x >= 0.0:
        return float(1.0 / (1.0 + np.exp(-x)))
    ex = float(np.exp(x))
    return ex / (1.0 + ex)


#: Process-wide kernel cache: None = not attempted, False = build failed
#: (don't retry), _Kernel = ready.  Guarded by a lock because the first
#: bind may race between the trainer thread and the request loop.
_kernel_state: _Kernel | bool | None = None
_kernel_lock = threading.Lock()


def _build_kernel() -> _Kernel | bool:
    """Compile and load the C kernel; False when the toolchain is absent."""
    if os.environ.get(_NO_CC_ENV):
        logger.info("%s set; using the numpy prediction backend", _NO_CC_ENV)
        return False
    build_dir = tempfile.mkdtemp(prefix="repro-gbdt-kernel-")
    source_path = os.path.join(build_dir, "predict.c")
    lib_path = os.path.join(build_dir, "predict.so")
    try:
        with open(source_path, "w") as handle:
            handle.write(_KERNEL_SOURCE)
        subprocess.run(
            ["cc", "-O3", "-fPIC", "-shared", "-o", lib_path, source_path],
            check=True,
            capture_output=True,
        )
        return _Kernel(ctypes.CDLL(lib_path))
    except (OSError, subprocess.SubprocessError) as exc:
        # Missing `cc`, a sandboxed tempdir, or a failed compile: every
        # prediction still works on the numpy backend, just slower.
        logger.warning(
            "could not build the GBDT C kernel (%s); "
            "falling back to the numpy prediction backend",
            type(exc).__name__,
        )
        return False


def _get_kernel() -> _Kernel | None:
    global _kernel_state
    state = _kernel_state
    if state is None:
        with _kernel_lock:
            state = _kernel_state
            if state is None:
                started = perf_counter()
                state = _build_kernel()
                _kernel_state = state
                if state:
                    registry = get_registry()
                    if registry.enabled:
                        registry.histogram("gbdt.kernel_build_seconds").observe(
                            perf_counter() - started
                        )
    return state if isinstance(state, _Kernel) else None


def kernel_available() -> bool:
    """True when the C backend is (or can be made) ready in this process."""
    return _get_kernel() is not None


class CompiledPredictor:
    """Flattened, backend-accelerated inference over a fitted ensemble.

    Build one with :meth:`from_ensemble` (or, more commonly, via
    :meth:`repro.gbdt.GBDTClassifier.compiled`, which caches it on the
    model).  The predictor is immutable: refitting the model compiles a
    fresh one.

    Attributes:
        n_trees: number of flattened trees.
        n_features: feature-vector width the ensemble was fitted on.
        init_score: the ensemble's base score (pre-link).
        backend: ``"kernel"`` or ``"numpy"`` — resolved lazily on first
            prediction, and re-resolved after unpickling (the kernel
            binding never crosses process boundaries).
    """

    def __init__(
        self,
        nodes: np.ndarray,
        roots: np.ndarray,
        depths: np.ndarray,
        init_score: float,
        n_features: int,
    ) -> None:
        self._nodes = nodes
        self._roots = roots
        self._depths = depths
        self.init_score = float(init_score)
        self.n_features = int(n_features)
        self._kernel: _Kernel | None = None
        self._kernel_resolved = False
        # numpy-backend views, built on first fallback use.
        self._numpy_views: tuple[np.ndarray, ...] | None = None
        # single-row reusable buffers + raw pointers, built on first use.
        self._fast: tuple | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_ensemble(
        cls,
        trees: list[Tree],
        init_score: float,
        learning_rate: float,
        n_features: int,
    ) -> "CompiledPredictor":
        """Flatten fitted trees into one contiguous node slab.

        Leaf values are pre-scaled by ``learning_rate`` so prediction is a
        plain sum; raw-value thresholds are copied from the trees, so no
        bin mapper is needed at scoring time.  Observed into the
        ``gbdt.compile_seconds`` histogram when a registry is active.
        """
        registry = get_registry()
        started = perf_counter() if registry.enabled else 0.0
        total_nodes = sum(len(tree.feature) for tree in trees)
        nodes = np.zeros(max(total_nodes, 1), dtype=_NODE_DTYPE)
        roots = np.zeros(len(trees), dtype=np.int32)
        depths = np.zeros(len(trees), dtype=np.int32)
        offset = 0
        for t, tree in enumerate(trees):
            feature, _, threshold, left, right, value = tree._materialise()
            size = len(feature)
            block = nodes[offset:offset + size]
            is_leaf = feature < 0
            node_ids = np.arange(offset, offset + size, dtype=np.int64)
            block["threshold"] = np.where(is_leaf, np.inf, threshold)
            block["feature"] = np.where(is_leaf, 0, feature)
            block["kid_le"] = np.where(is_leaf, node_ids, left + offset)
            block["kid_gt"] = np.where(is_leaf, node_ids, right + offset)
            block["value"] = value * learning_rate
            roots[t] = offset
            depths[t] = tree.max_depth()
            offset += size
        predictor = cls(nodes, roots, depths, init_score, n_features)
        if registry.enabled:
            registry.histogram("gbdt.compile_seconds").observe(
                perf_counter() - started
            )
        return predictor

    # -- prediction ---------------------------------------------------------

    @property
    def n_trees(self) -> int:
        """Number of flattened trees."""
        return len(self._roots)

    @property
    def backend(self) -> str:
        """The execution backend this process resolved to."""
        return "kernel" if self._resolve_kernel() is not None else "numpy"

    def _resolve_kernel(self) -> _Kernel | None:
        if not self._kernel_resolved:
            self._kernel = _get_kernel()
            self._kernel_resolved = True
        return self._kernel

    def predict_raw(self, X: np.ndarray) -> np.ndarray:
        """Pre-link scores for a ``(n, n_features)`` batch (or one row)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        X = np.ascontiguousarray(X)
        kernel = self._resolve_kernel()
        out = np.empty(X.shape[0], dtype=np.float64)
        if kernel is not None:
            kernel.fn(
                X.ctypes.data, X.shape[0], X.shape[1],
                self._nodes.ctypes.data, self._roots.ctypes.data,
                self._depths.ctypes.data, len(self._roots),
                self.init_score, out.ctypes.data,
            )
            return out
        return self._predict_raw_numpy(X, out)

    def _fast_buffers(self) -> tuple:
        fast = self._fast
        if fast is None:
            row = np.empty(self.n_features, dtype=np.float64)
            out = np.empty(1, dtype=np.float64)
            fast = (
                row, out, row.ctypes.data, out.ctypes.data,
                self._nodes.ctypes.data, self._roots.ctypes.data,
                self._depths.ctypes.data, len(self._roots),
            )
            self._fast = fast
        return fast

    def predict_raw_single(self, x: np.ndarray) -> float:
        """Pre-link score for one feature vector (scalar fast path).

        Bit-identical to ``predict_raw(x[None, :])[0]`` on either
        backend — the batched simulator relies on that.  Reuses
        persistent row/output buffers, so the only per-call work is one
        52-element copy and the kernel walk itself.
        """
        kernel = self._resolve_kernel()
        if kernel is None:
            out = np.empty(1, dtype=np.float64)
            x2 = np.ascontiguousarray(x, dtype=np.float64)[None, :]
            return float(self._predict_raw_numpy(x2, out)[0])
        row, out, row_ptr, out_ptr, nodes_ptr, roots_ptr, depths_ptr, \
            n_trees = self._fast_buffers()
        row[:] = x
        kernel.fn(
            row_ptr, 1, self.n_features,
            nodes_ptr, roots_ptr, depths_ptr, n_trees,
            self.init_score, out_ptr,
        )
        return float(out[0])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probability per row (logistic link)."""
        return sigmoid(self.predict_raw(X))

    def predict_proba_single(self, x: np.ndarray) -> float:
        """Positive-class probability for one feature vector."""
        return _sigmoid_scalar(self.predict_raw_single(x))

    def _numpy_arrays(self) -> tuple[np.ndarray, ...]:
        views = self._numpy_views
        if views is None:
            # Contiguous copies: structured-field views have a 32-byte
            # stride, which would slow every gather in the walk.
            kids = np.empty(2 * len(self._nodes), dtype=np.int64)
            kids[0::2] = self._nodes["kid_le"]
            kids[1::2] = self._nodes["kid_gt"]
            views = (
                np.ascontiguousarray(self._nodes["feature"], dtype=np.int64),
                np.ascontiguousarray(self._nodes["threshold"]),
                kids,
                np.ascontiguousarray(self._nodes["value"]),
                self._roots.astype(np.int64),
            )
            self._numpy_views = views
        return views

    def _predict_raw_numpy(self, X: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Self-loop level walk over all (row, tree) pairs at once."""
        feature, threshold, kids, value, roots = self._numpy_arrays()
        n = X.shape[0]
        node = np.repeat(roots[None, :], n, axis=0)  # (n, n_trees)
        x_flat = X.ravel()
        row_base = (np.arange(n, dtype=np.int64) * X.shape[1])[:, None]
        for _ in range(int(self._depths.max(initial=0))):
            gathered = x_flat[row_base + feature[node]]
            go_right = gathered > threshold[node]
            node = kids[(node << 1) + go_right]
        np.sum(value[node], axis=1, out=out)
        out += self.init_score
        return out

    # -- slab serialisation -------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the predictor into one contiguous, position-independent
        blob.

        Layout (all little-endian): a 32-byte header (magic, ``n_trees``
        u32, ``n_features`` u32, ``n_nodes`` u64, ``init_score`` f8),
        then ``roots`` i4, ``depths`` i4, then the ``_NODE_DTYPE`` node
        slab.  Section offsets are pure functions of the header, so
        :meth:`from_buffer` can map the same bytes zero-copy from a
        ``multiprocessing.shared_memory`` segment in another process —
        that mapping is how the cluster publishes models (see
        :mod:`repro.cluster.slab`).
        """
        header = _SLAB_HEADER.pack(
            _SLAB_MAGIC,
            self.n_trees,
            self.n_features,
            len(self._nodes),
            self.init_score,
        )
        return b"".join(
            (
                header,
                np.ascontiguousarray(self._roots, dtype="<i4").tobytes(),
                np.ascontiguousarray(self._depths, dtype="<i4").tobytes(),
                np.ascontiguousarray(self._nodes, dtype=_NODE_DTYPE).tobytes(),
            )
        )

    @classmethod
    def from_buffer(cls, buffer) -> "CompiledPredictor":
        """Rebuild a predictor as zero-copy views over ``buffer``.

        ``buffer`` is anything exposing the buffer protocol — typically a
        ``multiprocessing.shared_memory.SharedMemory.buf`` memoryview, in
        which case the node tables are never copied: every attached
        process walks the same physical pages.  The returned arrays keep
        the buffer alive, and scoring is bit-identical to the predictor
        that produced the bytes (same node records, same walk, same
        accumulation order on both backends).

        Raises ``ValueError`` on a bad magic or a truncated buffer.
        """
        view = memoryview(buffer)
        if len(view) < _SLAB_HEADER.size:
            raise ValueError(
                f"model slab truncated: {len(view)} bytes is smaller than "
                f"the {_SLAB_HEADER.size}-byte header"
            )
        magic, n_trees, n_features, n_nodes, init_score = (
            _SLAB_HEADER.unpack_from(view, 0)
        )
        if magic != _SLAB_MAGIC:
            raise ValueError(
                f"model slab has magic {magic!r}, expected {_SLAB_MAGIC!r}"
            )
        offset = _SLAB_HEADER.size
        total = offset + 8 * n_trees + _NODE_DTYPE.itemsize * n_nodes
        if len(view) < total:
            raise ValueError(
                f"model slab truncated: header promises {total} bytes, "
                f"buffer holds {len(view)}"
            )
        roots = np.frombuffer(view, dtype="<i4", count=n_trees, offset=offset)
        offset += 4 * n_trees
        depths = np.frombuffer(view, dtype="<i4", count=n_trees, offset=offset)
        offset += 4 * n_trees
        nodes = np.frombuffer(
            view, dtype=_NODE_DTYPE, count=n_nodes, offset=offset
        )
        return cls(nodes, roots, depths, init_score, n_features)

    # -- threshold introspection -------------------------------------------

    def feature_thresholds(self, feature: int) -> np.ndarray:
        """Sorted unique raw thresholds the ensemble tests on a feature.

        Two input values that fall between the same pair of consecutive
        thresholds take identical paths through every tree, hence score
        identically — the speculation invariant the batched simulator
        uses for the volatile free-bytes feature.
        """
        internal = self._nodes["kid_le"] != np.arange(
            len(self._nodes), dtype=np.int64
        )
        mask = internal & (self._nodes["feature"] == feature)
        return np.unique(self._nodes["threshold"][mask])

    # -- pickling -----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # ctypes bindings and raw buffer addresses are process-local;
        # re-resolve/rebuild after unpickling.
        state["_kernel"] = None
        state["_kernel_resolved"] = False
        state["_fast"] = None
        return state
