"""Gradient boosting over binned decision trees.

Reproduces the LightGBM configuration the paper uses: 30 boosting
iterations (down from the library default of 100, Section 2.3), otherwise
default-ish parameters — leaf-wise trees with 31 leaves, learning rate 0.1,
optional bagging and feature subsampling seeded by ``seed`` (the knob swept
in Figure 5c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..obs import get_registry
from .binning import BinMapper
from .compiled import CompiledPredictor
from .losses import LogisticLoss, SquaredLoss
from .tree import Tree, TreeGrowthParams, grow_tree

__all__ = ["GBDTParams", "GBDTClassifier", "GBDTRegressor"]


@dataclass(frozen=True)
class GBDTParams:
    """Hyperparameters; defaults mirror the paper's LightGBM setup."""

    num_iterations: int = 30
    learning_rate: float = 0.1
    num_leaves: int = 31
    min_data_in_leaf: int = 20
    min_sum_hessian_in_leaf: float = 1e-3
    lambda_l2: float = 0.0
    min_gain_to_split: float = 0.0
    max_depth: int = -1
    max_bins: int = 255
    bagging_fraction: float = 1.0
    feature_fraction: float = 1.0
    seed: int = 0
    early_stopping_rounds: int = 0  # 0 disables early stopping

    def tree_params(self) -> TreeGrowthParams:
        """Per-tree growth parameters derived from the boosting params."""
        return TreeGrowthParams(
            num_leaves=self.num_leaves,
            min_data_in_leaf=self.min_data_in_leaf,
            min_sum_hessian_in_leaf=self.min_sum_hessian_in_leaf,
            lambda_l2=self.lambda_l2,
            min_gain_to_split=self.min_gain_to_split,
            max_depth=self.max_depth,
        )


class _GBDTBase:
    """Shared fit/predict machinery for classifier and regressor."""

    _loss_cls: type

    def __init__(self, params: GBDTParams | None = None, **overrides) -> None:
        base = params or GBDTParams()
        if overrides:
            base = GBDTParams(**{**base.__dict__, **overrides})
        self.params = base
        self.trees: list[Tree] = []
        self.mapper: BinMapper | None = None
        self.init_score: float = 0.0
        self.n_features: int | None = None
        self.best_iteration: int | None = None
        self.eval_history: list[float] = []
        self._compiled: CompiledPredictor | None = None

    # -- training ---------------------------------------------------------

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "_GBDTBase":
        """Fit the ensemble.

        Args:
            X: (n_samples, n_features) float matrix; must be finite.
            y: labels — {0,1} for the classifier, reals for the regressor.
            eval_set: optional (X_val, y_val) used for loss tracking and,
                when ``early_stopping_rounds > 0``, early stopping.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        params = self.params
        loss = self._loss_cls

        self.n_features = X.shape[1]
        self.mapper = BinMapper(max_bins=params.max_bins)
        binned = self.mapper.fit_transform(X)
        self.init_score = loss.init_score(y)
        raw = np.full(len(y), self.init_score, dtype=np.float64)

        if eval_set is not None:
            X_val = np.asarray(eval_set[0], dtype=np.float64)
            y_val = np.asarray(eval_set[1], dtype=np.float64)
            raw_val = np.full(len(y_val), self.init_score, dtype=np.float64)
        else:
            X_val = y_val = raw_val = None

        self._compiled = None
        rng = np.random.default_rng(params.seed)
        n = len(y)
        tree_params = params.tree_params()
        self.trees = []
        self.eval_history = []
        best_val = np.inf
        best_iter = 0

        # Per-iteration training time (gradients + tree growth + score
        # update); gated so a disabled registry costs nothing per iteration.
        registry = get_registry()
        timing = registry.enabled
        iteration_hist = registry.histogram("gbdt.iteration_seconds")

        for iteration in range(params.num_iterations):
            iteration_start = perf_counter() if timing else 0.0
            grad, hess = loss.grad_hess(y, raw)
            sample_idx = None
            if params.bagging_fraction < 1.0:
                k = max(1, int(round(params.bagging_fraction * n)))
                sample_idx = np.sort(rng.choice(n, size=k, replace=False))
            feature_subset = None
            if params.feature_fraction < 1.0:
                k = max(1, int(round(params.feature_fraction * self.n_features)))
                feature_subset = np.sort(
                    rng.choice(self.n_features, size=k, replace=False)
                )
            tree = grow_tree(
                binned, grad, hess, self.mapper, tree_params,
                sample_idx=sample_idx, feature_subset=feature_subset,
            )
            self.trees.append(tree)
            raw += params.learning_rate * tree.predict_binned(binned)
            if timing:
                iteration_hist.observe(perf_counter() - iteration_start)

            if X_val is not None:
                raw_val += params.learning_rate * tree.predict_raw_values(X_val)
                val_loss = loss.loss(y_val, raw_val)
                self.eval_history.append(val_loss)
                if val_loss < best_val - 1e-12:
                    best_val = val_loss
                    best_iter = iteration + 1
                if (
                    params.early_stopping_rounds > 0
                    and iteration + 1 - best_iter >= params.early_stopping_rounds
                ):
                    self.trees = self.trees[:best_iter]
                    break
        self.best_iteration = best_iter if X_val is not None else len(self.trees)
        return self

    # -- prediction ---------------------------------------------------------

    def compiled(self) -> CompiledPredictor:
        """The flattened fast predictor for this fitted ensemble.

        Built once and cached; refitting invalidates the cache.  The
        returned predictor is immutable and safe to share across
        threads, which is how :class:`repro.core.lfo.LFOModel` and the
        batched simulator avoid any per-request compilation cost.
        """
        if self.mapper is None or self.n_features is None:
            raise RuntimeError("model is not fitted")
        if self._compiled is None:
            self._compiled = CompiledPredictor.from_ensemble(
                self.trees,
                self.init_score,
                self.params.learning_rate,
                self.n_features,
            )
        return self._compiled

    def predict_raw(self, X: np.ndarray) -> np.ndarray:
        """Sum of tree outputs plus the init score (pre-link scores).

        Reference implementation: walks every tree's node table in
        Python.  Kept as the numerical ground truth the compiled
        predictor is tested against; hot paths go through
        :meth:`compiled` instead.
        """
        if self.mapper is None:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        raw = np.full(X.shape[0], self.init_score, dtype=np.float64)
        for tree in self.trees:
            raw += self.params.learning_rate * tree.predict_raw_values(X)
        return raw

    def staged_predict_raw(self, X: np.ndarray):
        """Yield raw scores after each boosting iteration (for learning
        curves and iteration-count diagnostics)."""
        if self.mapper is None:
            raise RuntimeError("model is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        raw = np.full(X.shape[0], self.init_score, dtype=np.float64)
        for tree in self.trees:
            raw = raw + self.params.learning_rate * tree.predict_raw_values(X)
            yield raw

    def feature_importance(self, kind: str = "split") -> np.ndarray:
        """Per-feature importance.

        ``kind='split'`` counts how often each feature occurs in a tree
        branch — exactly the measure behind the paper's Figure 8.
        ``kind='gain'`` sums the loss reduction each feature's splits
        achieved (LightGBM's ``importance_type='gain'``).
        """
        if self.n_features is None:
            raise RuntimeError("model is not fitted")
        if kind == "split":
            counts = np.zeros(self.n_features, dtype=np.int64)
            for tree in self.trees:
                for f in tree.split_features():
                    counts[f] += 1
            return counts
        if kind == "gain":
            gains = np.zeros(self.n_features, dtype=np.float64)
            for tree in self.trees:
                for f, g in tree.split_gains():
                    gains[f] += g
            return gains
        raise ValueError("kind must be 'split' or 'gain'")

    def feature_importance_fraction(self) -> np.ndarray:
        """Split counts normalised to fractions (Fig. 8's y-axis)."""
        counts = self.feature_importance().astype(np.float64)
        total = counts.sum()
        return counts / total if total > 0 else counts

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable model state."""
        if self.mapper is None:
            raise RuntimeError("model is not fitted")
        return {
            "params": self.params.__dict__,
            "init_score": self.init_score,
            "n_features": self.n_features,
            "mapper": self.mapper.to_dict(),
            "trees": [t.to_dict() for t in self.trees],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "_GBDTBase":
        """Inverse of :meth:`to_dict`."""
        model = cls(GBDTParams(**state["params"]))
        model.init_score = state["init_score"]
        model.n_features = state["n_features"]
        model.mapper = BinMapper.from_dict(state["mapper"])
        model.trees = [Tree.from_dict(t) for t in state["trees"]]
        return model


class GBDTClassifier(_GBDTBase):
    """Binary classifier with logistic loss (the LFO predictor)."""

    _loss_cls = LogisticLoss

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class per sample."""
        return LogisticLoss.transform(self.predict_raw(X))

    def predict(self, X: np.ndarray, cutoff: float = 0.5) -> np.ndarray:
        """Boolean predictions at a probability cutoff."""
        return self.predict_proba(X) >= cutoff


class GBDTRegressor(_GBDTBase):
    """Squared-loss regressor (generic substrate reuse)."""

    _loss_cls = SquaredLoss

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values."""
        return self.predict_raw(X)
