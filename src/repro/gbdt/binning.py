"""Quantile feature binning for histogram-based tree growth.

LightGBM's core trick — and the reason the paper's trees are "lightweight" —
is discretising every feature into at most 255 bins up front, so that split
finding reduces to summing gradients per bin.  This module reproduces that:
:class:`BinMapper` learns per-feature quantile bin edges on the training set
and maps raw float matrices to ``uint8`` bin indices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinMapper"]


class BinMapper:
    """Learns and applies per-feature quantile binning.

    Attributes:
        max_bins: maximum number of bins per feature (≤ 255 so bins fit a
            uint8).
        upper_bounds: list (per feature) of ascending bin upper boundaries;
            values ≤ ``upper_bounds[f][b]`` fall into bin ``b``.  The last
            bin is unbounded.
    """

    def __init__(self, max_bins: int = 255) -> None:
        if not 2 <= max_bins <= 255:
            raise ValueError("max_bins must be in [2, 255]")
        self.max_bins = max_bins
        self.upper_bounds: list[np.ndarray] = []
        self.n_features: int | None = None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Learn bin boundaries from a (n_samples, n_features) matrix."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if not np.isfinite(X).all():
            raise ValueError("X must be finite; encode missing values "
                             "as finite sentinels before binning")
        self.n_features = X.shape[1]
        self.upper_bounds = []
        for f in range(self.n_features):
            col = X[:, f]
            uniques = np.unique(col)
            if len(uniques) <= self.max_bins:
                # One bin per distinct value; boundaries at midpoints.
                if len(uniques) == 1:
                    bounds = np.array([], dtype=np.float64)
                else:
                    bounds = (uniques[:-1] + uniques[1:]) / 2.0
            else:
                qs = np.linspace(0, 100, self.max_bins + 1)[1:-1]
                bounds = np.unique(np.percentile(col, qs))
            self.upper_bounds.append(bounds.astype(np.float64))
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map raw values to uint8 bin indices via the learned boundaries."""
        if self.n_features is None:
            raise RuntimeError("BinMapper must be fitted before transform")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {X.shape}"
            )
        binned = np.empty(X.shape, dtype=np.uint8)
        for f in range(self.n_features):
            binned[:, f] = np.searchsorted(
                self.upper_bounds[f], X[:, f], side="left"
            )
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)

    def n_bins(self, feature: int) -> int:
        """Number of occupied bins for a feature."""
        return len(self.upper_bounds[feature]) + 1

    def threshold_value(self, feature: int, bin_index: int) -> float:
        """Raw-value threshold of "go left if value ≤ threshold" for a split
        that sends bins ``<= bin_index`` left."""
        bounds = self.upper_bounds[feature]
        if bin_index >= len(bounds):
            return float("inf")
        return float(bounds[bin_index])

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        return {
            "max_bins": self.max_bins,
            "n_features": self.n_features,
            "upper_bounds": [b.tolist() for b in self.upper_bounds],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "BinMapper":
        """Inverse of :meth:`to_dict`."""
        mapper = cls(max_bins=state["max_bins"])
        mapper.n_features = state["n_features"]
        mapper.upper_bounds = [
            np.asarray(b, dtype=np.float64) for b in state["upper_bounds"]
        ]
        return mapper
