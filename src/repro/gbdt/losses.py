"""Loss functions for gradient boosting.

Each loss provides the per-sample gradient and hessian of the objective with
respect to the raw (pre-link) score, plus the constant initial score that
minimises the loss — the standard second-order boosting setup.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticLoss", "SquaredLoss", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class LogisticLoss:
    """Binary cross-entropy on raw scores (labels in {0, 1})."""

    name = "logistic"

    @staticmethod
    def init_score(y: np.ndarray) -> float:
        """Log-odds of the positive class, clipped away from infinities."""
        p = float(np.clip(y.mean(), 1e-6, 1 - 1e-6))
        return float(np.log(p / (1 - p)))

    @staticmethod
    def grad_hess(y: np.ndarray, raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gradient ``p - y`` and hessian ``p (1 - p)``."""
        p = sigmoid(raw)
        return p - y, p * (1.0 - p)

    @staticmethod
    def transform(raw: np.ndarray) -> np.ndarray:
        """Raw score -> probability."""
        return sigmoid(raw)

    @staticmethod
    def loss(y: np.ndarray, raw: np.ndarray) -> float:
        """Mean binary cross-entropy."""
        p = np.clip(sigmoid(raw), 1e-12, 1 - 1e-12)
        return float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).mean())


class SquaredLoss:
    """Mean squared error on raw scores (regression)."""

    name = "l2"

    @staticmethod
    def init_score(y: np.ndarray) -> float:
        """The mean minimises squared error."""
        return float(y.mean())

    @staticmethod
    def grad_hess(y: np.ndarray, raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gradient ``raw - y`` and unit hessian."""
        return raw - y, np.ones_like(raw)

    @staticmethod
    def transform(raw: np.ndarray) -> np.ndarray:
        """Identity link."""
        return raw

    @staticmethod
    def loss(y: np.ndarray, raw: np.ndarray) -> float:
        """Mean squared error."""
        return float(((raw - y) ** 2).mean())
