"""Leaf-wise regression tree growth over binned features.

This is the tree builder inside the boosting loop: given per-sample
gradients and hessians, it grows a tree by repeatedly splitting the leaf
with the largest gain (LightGBM's *leaf-wise* strategy, as opposed to
XGBoost's level-wise growth), using per-bin gradient histograms so each
split search is O(n_bins) per feature.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .binning import BinMapper

__all__ = ["Tree", "TreeGrowthParams", "grow_tree"]


@dataclass(frozen=True)
class TreeGrowthParams:
    """Regularisation and shape parameters for a single tree."""

    num_leaves: int = 31
    min_data_in_leaf: int = 20
    min_sum_hessian_in_leaf: float = 1e-3
    lambda_l2: float = 0.0
    min_gain_to_split: float = 0.0
    max_depth: int = -1  # -1 = unlimited


@dataclass
class Tree:
    """A fitted regression tree in flat-array form.

    Internal nodes hold ``feature``, a ``bin_threshold`` (go left when the
    sample's bin ≤ threshold) and the equivalent raw-value ``threshold``
    (go left when raw value ≤ threshold); leaves hold ``value``.
    ``feature[i] == -1`` marks a leaf.

    The node lists are the canonical state (kept for growth and
    serialisation); prediction runs on numpy views that are materialised
    once and cached.  All structural mutation goes through
    :meth:`_new_node`, :meth:`_set_split` and :meth:`_set_value`, which
    invalidate the cache — mutating the lists directly after a predict
    call would leave it stale.
    """

    feature: list[int] = field(default_factory=list)
    bin_threshold: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)
    gain: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._arrays: tuple[np.ndarray, ...] | None = None
        self._n_leaves: int | None = None

    def _invalidate(self) -> None:
        self._arrays = None
        self._n_leaves = None

    def _materialise(self) -> tuple[np.ndarray, ...]:
        """Node lists as numpy arrays, built once and reused per predict."""
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self.feature, dtype=np.int64),
                np.asarray(self.bin_threshold, dtype=np.int64),
                np.asarray(self.threshold, dtype=np.float64),
                np.asarray(self.left, dtype=np.int64),
                np.asarray(self.right, dtype=np.int64),
                np.asarray(self.value, dtype=np.float64),
            )
            self._arrays = arrays
        return arrays

    def _new_node(self) -> int:
        self.feature.append(-1)
        self.bin_threshold.append(0)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        self.gain.append(0.0)
        self._invalidate()
        return len(self.feature) - 1

    def _set_split(
        self,
        node: int,
        feature: int,
        bin_threshold: int,
        threshold: float,
        left: int,
        right: int,
        gain: float,
    ) -> None:
        """Turn a leaf into an internal node (cache-invalidating)."""
        self.feature[node] = feature
        self.bin_threshold[node] = bin_threshold
        self.threshold[node] = threshold
        self.left[node] = left
        self.right[node] = right
        self.gain[node] = gain
        self._invalidate()

    def _set_value(self, node: int, value: float) -> None:
        """Assign a node's leaf value (cache-invalidating)."""
        self.value[node] = value
        self._invalidate()

    @property
    def n_leaves(self) -> int:
        """Number of leaf nodes (cached; recounted only after mutation)."""
        count = self._n_leaves
        if count is None:
            count = int((self._materialise()[0] == -1).sum())
            self._n_leaves = count
        return count

    def max_depth(self) -> int:
        """Longest root-to-leaf edge count (0 for a single-leaf tree)."""
        if not self.feature:
            return 0
        depth = [0] * len(self.feature)
        deepest = 0
        # Children are appended after their parent, so one forward pass
        # sees every parent before its children.
        for i, f in enumerate(self.feature):
            if f >= 0:
                child_depth = depth[i] + 1
                depth[self.left[i]] = child_depth
                depth[self.right[i]] = child_depth
                deepest = max(deepest, child_depth)
        return deepest

    def predict_binned(self, binned: np.ndarray) -> np.ndarray:
        """Predict from uint8 bin indices (vectorised level walk)."""
        n = binned.shape[0]
        node = np.zeros(n, dtype=np.int64)
        feature, bin_threshold, _, left, right, value = self._materialise()
        active = feature[node] >= 0
        while active.any():
            idx = np.nonzero(active)[0]
            cur = node[idx]
            feats = feature[cur]
            go_left = binned[idx, feats] <= bin_threshold[cur]
            node[idx] = np.where(go_left, left[cur], right[cur])
            active[idx] = feature[node[idx]] >= 0
        return value[node]

    def predict_raw_values(self, X: np.ndarray) -> np.ndarray:
        """Predict from raw float features using stored value thresholds."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        feature, _, threshold, left, right, value = self._materialise()
        active = feature[node] >= 0
        while active.any():
            idx = np.nonzero(active)[0]
            cur = node[idx]
            feats = feature[cur]
            go_left = X[idx, feats] <= threshold[cur]
            node[idx] = np.where(go_left, left[cur], right[cur])
            active[idx] = feature[node[idx]] >= 0
        return value[node]

    def split_features(self) -> list[int]:
        """Features used by internal nodes (one entry per split) — the raw
        material of the paper's Figure 8 importance measure."""
        return [f for f in self.feature if f >= 0]

    def split_gains(self) -> list[tuple[int, float]]:
        """(feature, gain) pairs for every internal node — the basis of
        gain-weighted importance."""
        return [
            (f, g) for f, g in zip(self.feature, self.gain) if f >= 0
        ]

    def to_dict(self) -> dict:
        """JSON-serialisable state."""
        return {
            "feature": self.feature,
            "bin_threshold": self.bin_threshold,
            "threshold": [
                t if np.isfinite(t) else "inf" for t in self.threshold
            ],
            "left": self.left,
            "right": self.right,
            "value": self.value,
            "gain": self.gain,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "Tree":
        """Inverse of :meth:`to_dict`."""
        return cls(
            feature=list(state["feature"]),
            bin_threshold=list(state["bin_threshold"]),
            threshold=[
                float("inf") if t == "inf" else float(t)
                for t in state["threshold"]
            ],
            left=list(state["left"]),
            right=list(state["right"]),
            value=list(state["value"]),
            gain=list(state.get("gain", [0.0] * len(state["feature"]))),
        )


@dataclass
class _LeafState:
    """Bookkeeping for a growable leaf."""

    node: int
    sample_idx: np.ndarray
    grad_sum: float
    hess_sum: float
    depth: int
    best_gain: float = -np.inf
    best_feature: int = -1
    best_bin: int = -1


def _leaf_value(grad_sum: float, hess_sum: float, lambda_l2: float) -> float:
    return -grad_sum / (hess_sum + lambda_l2)


def _find_best_split(
    leaf: _LeafState,
    binned: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    n_bins: list[int],
    feature_subset: np.ndarray,
    params: TreeGrowthParams,
) -> None:
    """Fill ``leaf.best_*`` with the highest-gain (feature, bin) split."""
    idx = leaf.sample_idx
    g = grad[idx]
    h = hess[idx]
    lam = params.lambda_l2
    parent_score = leaf.grad_sum**2 / (leaf.hess_sum + lam)
    best_gain = params.min_gain_to_split
    best_feature = -1
    best_bin = -1
    for f in feature_subset:
        bins_f = binned[idx, f]
        nb = n_bins[f]
        if nb < 2:
            continue
        grad_hist = np.bincount(bins_f, weights=g, minlength=nb)
        hess_hist = np.bincount(bins_f, weights=h, minlength=nb)
        count_hist = np.bincount(bins_f, minlength=nb)
        g_left = np.cumsum(grad_hist)[:-1]
        h_left = np.cumsum(hess_hist)[:-1]
        c_left = np.cumsum(count_hist)[:-1]
        g_right = leaf.grad_sum - g_left
        h_right = leaf.hess_sum - h_left
        c_right = len(idx) - c_left
        valid = (
            (c_left >= params.min_data_in_leaf)
            & (c_right >= params.min_data_in_leaf)
            & (h_left >= params.min_sum_hessian_in_leaf)
            & (h_right >= params.min_sum_hessian_in_leaf)
        )
        if not valid.any():
            continue
        with np.errstate(divide="ignore", invalid="ignore"):
            gain = (
                g_left**2 / (h_left + lam)
                + g_right**2 / (h_right + lam)
                - parent_score
            )
        gain = np.where(valid, gain, -np.inf)
        b = int(np.argmax(gain))
        if gain[b] > best_gain:
            best_gain = float(gain[b])
            best_feature = int(f)
            best_bin = b
    leaf.best_gain = best_gain
    leaf.best_feature = best_feature
    leaf.best_bin = best_bin


def grow_tree(
    binned: np.ndarray,
    grad: np.ndarray,
    hess: np.ndarray,
    mapper: BinMapper,
    params: TreeGrowthParams,
    sample_idx: np.ndarray | None = None,
    feature_subset: np.ndarray | None = None,
) -> Tree:
    """Grow one leaf-wise tree on the given gradients.

    Args:
        binned: uint8 bin matrix of shape (n_samples, n_features).
        grad, hess: per-sample gradient/hessian arrays.
        mapper: the fitted :class:`BinMapper` (for raw-value thresholds).
        params: growth parameters.
        sample_idx: optional bagging subset of row indices.
        feature_subset: optional subset of feature columns to consider.
    """
    n_features = binned.shape[1]
    if sample_idx is None:
        sample_idx = np.arange(binned.shape[0], dtype=np.int64)
    if feature_subset is None:
        feature_subset = np.arange(n_features, dtype=np.int64)
    n_bins = [mapper.n_bins(f) for f in range(n_features)]

    tree = Tree()
    root = tree._new_node()
    root_leaf = _LeafState(
        node=root,
        sample_idx=sample_idx,
        grad_sum=float(grad[sample_idx].sum()),
        hess_sum=float(hess[sample_idx].sum()),
        depth=0,
    )
    tree._set_value(
        root, _leaf_value(root_leaf.grad_sum, root_leaf.hess_sum, params.lambda_l2)
    )
    _find_best_split(
        root_leaf, binned, grad, hess, n_bins, feature_subset, params
    )

    # Max-heap of splittable leaves keyed by gain; counter breaks ties
    # deterministically.
    heap: list[tuple[float, int, _LeafState]] = []
    counter = 0
    if root_leaf.best_feature >= 0:
        heapq.heappush(heap, (-root_leaf.best_gain, counter, root_leaf))
        counter += 1

    n_leaves = 1
    while heap and n_leaves < params.num_leaves:
        _, _, leaf = heapq.heappop(heap)
        if leaf.best_feature < 0:
            continue
        if params.max_depth >= 0 and leaf.depth >= params.max_depth:
            continue
        f, b = leaf.best_feature, leaf.best_bin
        idx = leaf.sample_idx
        mask = binned[idx, f] <= b
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if len(left_idx) == 0 or len(right_idx) == 0:
            continue

        node = leaf.node
        left_node = tree._new_node()
        right_node = tree._new_node()
        tree._set_split(
            node, f, b, mapper.threshold_value(f, b),
            left_node, right_node, leaf.best_gain,
        )
        n_leaves += 1

        for child_node, child_idx in ((left_node, left_idx), (right_node, right_idx)):
            child = _LeafState(
                node=child_node,
                sample_idx=child_idx,
                grad_sum=float(grad[child_idx].sum()),
                hess_sum=float(hess[child_idx].sum()),
                depth=leaf.depth + 1,
            )
            tree._set_value(
                child_node,
                _leaf_value(child.grad_sum, child.hess_sum, params.lambda_l2),
            )
            if len(child_idx) >= 2 * params.min_data_in_leaf:
                _find_best_split(
                    child, binned, grad, hess, n_bins, feature_subset, params
                )
                if child.best_feature >= 0:
                    heapq.heappush(heap, (-child.best_gain, counter, child))
                    counter += 1
    return tree
