"""Seeded consistent-hash routing for the sharded cache cluster.

The router's one job is to turn an object id into a shard id the same way
on every host, every run, and every restart — cache state lives in the
shards, so an unstable mapping is a cold cache.  Two properties drive the
design:

* **determinism** — ring points come from ``blake2b`` over
  ``(seed, shard, vnode)`` and object ids are mixed with a seeded
  splitmix64 finaliser; no process-global hash randomisation
  (``PYTHONHASHSEED``) or RNG state is involved, so the same
  ``(seed, n_shards, vnodes)`` triple always yields the same mapping;
* **minimal disruption** — growing ``n_shards`` → ``n_shards + 1`` only
  inserts the new shard's vnodes between existing ring points, so only
  keys whose successor point became one of the new points move.  The
  expected remapped fraction is ``1 / (n_shards + 1)`` (the test gate
  allows ``2 / n_shards`` for sampling noise) versus the near-total
  reshuffle of modulo hashing.

Lookups are a binary search over the sorted point array —
``shard_of_batch`` vectorises the mix + ``np.searchsorted`` so routing a
whole request batch costs microseconds, not a Python loop.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from ..trace import Request

__all__ = ["HashRing"]

#: splitmix64 constants (Steele et al.; the JDK SplittableRandom mix).
_PHI = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(values: np.ndarray, seed_term: np.uint64) -> np.ndarray:
    """Seeded 64-bit finaliser: uniform, invertible, and branch-free.

    Operates in wrapping uint64 arithmetic (numpy unsigned overflow is
    defined), so the mapping is a pure function of ``(values, seed)``.
    """
    z = values + seed_term
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


class HashRing:
    """A seeded consistent-hash ring with configurable virtual nodes.

    Args:
        n_shards: number of shards (ring owners), at least 1.
        vnodes: virtual nodes per shard.  More vnodes flatten the load
            imbalance between shards (stddev ~ ``1 / sqrt(vnodes)``) at
            the cost of a longer sorted point array; 64 keeps worst-case
            shard load within a few percent of uniform.
        seed: ring seed.  Folded into both the vnode point hashes and the
            key mix, so distinct seeds give statistically independent
            mappings.
    """

    def __init__(self, n_shards: int, vnodes: int = 64, seed: int = 0) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.n_shards = int(n_shards)
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        points = np.empty(n_shards * vnodes, dtype=np.uint64)
        owners = np.empty(n_shards * vnodes, dtype=np.int64)
        i = 0
        for shard in range(n_shards):
            for vnode in range(vnodes):
                digest = hashlib.blake2b(
                    f"{self.seed}:{shard}:{vnode}".encode(),
                    digest_size=8,
                ).digest()
                points[i] = int.from_bytes(digest, "little")
                owners[i] = shard
                i += 1
        order = np.argsort(points, kind="stable")
        self._points = points[order]
        self._owners = owners[order]
        # Key-mix seed term: derived from the ring seed through the same
        # hash family, so key placement is decorrelated from vnode
        # placement even at seed 0.
        key_mix = int.from_bytes(
            hashlib.blake2b(
                f"{self.seed}:keys".encode(), digest_size=8
            ).digest(),
            "little",
        )
        # Wrapping 64-bit multiply in Python ints: numpy *scalar* uint64
        # products warn on overflow (array ops wrap silently).
        self._key_seed = np.uint64((key_mix * int(_PHI)) & 0xFFFFFFFFFFFFFFFF)

    def shard_of(self, key: int) -> int:
        """The shard owning ``key`` (an object id)."""
        return int(self.shard_of_batch(np.asarray([key]))[0])

    def shard_of_batch(self, keys: "Sequence[int] | np.ndarray") -> np.ndarray:
        """Vectorised :meth:`shard_of` for an array of object ids."""
        mixed = _splitmix64(
            np.asarray(keys, dtype=np.int64).astype(np.uint64),
            self._key_seed,
        )
        # Successor point on the ring, wrapping past the top back to the
        # first point.
        idx = np.searchsorted(self._points, mixed, side="left")
        idx[idx == len(self._points)] = 0
        return self._owners[idx]

    def partition(
        self, requests: Sequence[Request]
    ) -> list[list[tuple[int, Request]]]:
        """Split ``requests`` across shards, keeping per-shard order.

        Returns one list per shard of ``(original_index, request)`` pairs
        — the index is what lets the router re-interleave per-shard
        results back into the caller's request order.
        """
        buckets: list[list[tuple[int, Request]]] = [
            [] for _ in range(self.n_shards)
        ]
        if not requests:
            return buckets
        shards = self.shard_of_batch([r.obj for r in requests])
        for i, (request, shard) in enumerate(zip(requests, shards)):
            buckets[int(shard)].append((i, request))
        return buckets

    def spread(self, keys: "Sequence[int] | np.ndarray") -> np.ndarray:
        """Per-shard key counts for ``keys`` (a load-balance probe)."""
        shards = self.shard_of_batch(keys)
        return np.bincount(shards, minlength=self.n_shards)
