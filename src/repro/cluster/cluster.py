"""The cache cluster: a consistent-hash router over shard processes.

:class:`CacheCluster` owns the three cluster-scale mechanisms and wires
them together:

* the **router** — a seeded :class:`~repro.cluster.HashRing` partitions
  every request batch by object id, preserving per-shard request order
  (an object's whole request stream lands on one shard, so each shard's
  cache behaves exactly like a single-process cache over its split);
* the **model slab** — one :class:`~repro.cluster.ModelSlab` publishes
  each trained model into shared memory; shards attach zero-copy at
  batch boundaries.  :meth:`publish` is shaped to be handed directly to
  :class:`repro.core.LFOOnline` as its ``publish_hook``;
* the **telemetry fold** — striped-buffer drains from every shard
  (counter/histogram deltas, observed accesses) are folded into the
  active registry (:func:`repro.obs.fold_deltas`), so a
  :class:`~repro.obs.WindowedRegistry` sees cluster-wide windows and the
  BHR / latency SLO / drift machinery works unchanged.

Shard workers are ``spawn``-started processes (no inherited state; every
argument pickles), fed over pipes in routed batches.  Dispatch fans out
first and collects second, so shards compute concurrently; each reply
carries the shard's per-request hit bits (re-interleaved into the
caller's order) and cumulative stats including a running score digest —
the bit-identity witness the cluster benchmark checks against a
single-process replay of the same split.

Shutdown (:meth:`close`, idempotent, also the context-manager exit and
the SIGINT path) mirrors the serve loop's drain-then-flush: every shard
is stopped and its final buffered drains folded, workers are joined,
and only then are the shared-memory segments unlinked — exactly once.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Sequence

from ..obs import get_registry
from ..obs.fold import fold_deltas
from ..trace import Request
from .ring import HashRing
from .slab import ModelSlab
from .worker import ShardConfig, shard_main

if TYPE_CHECKING:  # annotation only; avoids repro.core import at runtime.
    from ..core.lfo import LFOModel
    from ..gbdt import CompiledPredictor

__all__ = ["CacheCluster", "ClusterReport"]

#: Histogram bounds for per-batch routing/dispatch round-trips: 10µs..10s.
_BATCH_SECONDS_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


@dataclass
class ClusterReport:
    """Aggregate + per-shard outcome of a cluster run.

    ``shards`` holds each worker's final cumulative stats dict
    (requests, hits, byte counts, ``cpu_seconds`` / ``busy_seconds``
    around the scoring loop only, attach count, and the running
    ``score_digest``).
    """

    requests: int = 0
    hits: int = 0
    hit_bytes: float = 0.0
    miss_bytes: float = 0.0
    batches: int = 0
    generation: int = 0
    shards: list[dict] = field(default_factory=list)

    @property
    def bhr(self) -> float | None:
        """Cluster-wide byte hit ratio (None before any bytes)."""
        total = self.hit_bytes + self.miss_bytes
        if total <= 0:
            return None
        return self.hit_bytes / total

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "bhr": self.bhr,
            "batches": self.batches,
            "generation": self.generation,
            "shards": list(self.shards),
        }


class CacheCluster:
    """N shard caches behind a consistent-hash router and a shared slab.

    Args:
        cache_size: total capacity in bytes, split evenly across shards.
        n_shards: worker process count.
        vnodes: virtual nodes per shard on the routing ring.
        seed: ring seed (key→shard mapping is a pure function of
            ``(seed, n_shards, vnodes)``).
        n_gaps: gap-feature count of each shard's tracker.
        eviction: shard cache eviction mode.
        stripes / stripe_capacity: shard-side striped write buffer shape.
        ship_features: include live feature rows in access drains (the
            serving/training path needs them; plain replay does not).
        on_access: called with each drained batch of access records
            ``(index, request, hit, features | None)`` — the
            training-sample tap.
        slab_token: override the shared-memory token (testing).
    """

    def __init__(
        self,
        cache_size: int,
        n_shards: int,
        *,
        vnodes: int = 64,
        seed: int = 0,
        n_gaps: int = 50,
        eviction: str = "likelihood",
        stripes: int = 8,
        stripe_capacity: int = 256,
        ship_features: bool = False,
        on_access: Callable[[list], None] | None = None,
        slab_token: str | None = None,
    ) -> None:
        if cache_size < n_shards:
            raise ValueError("cache_size must be at least n_shards bytes")
        self.ring = HashRing(n_shards, vnodes=vnodes, seed=seed)
        self.slab = ModelSlab(slab_token)
        self.n_shards = n_shards
        self.shard_size = cache_size // n_shards
        self.on_access = on_access
        self._config = dict(
            n_gaps=n_gaps,
            eviction=eviction,
            stripes=stripes,
            stripe_capacity=stripe_capacity,
            ship_features=ship_features,
        )
        self._processes: list[multiprocessing.process.BaseProcess] = []
        self._conns: list = []
        self._stats: list[dict] = [{} for _ in range(n_shards)]
        self.report = ClusterReport()
        self._started = False
        self._closed = False

    @property
    def ship_features(self) -> bool:
        """Whether shard access records carry live feature rows."""
        return bool(self._config["ship_features"])

    @property
    def n_gaps(self) -> int:
        """Gap-feature count of every shard's tracker."""
        return int(self._config["n_gaps"])

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "CacheCluster":
        """Spawn the shard workers (idempotent)."""
        if self._started:
            return self
        if self._closed:
            raise RuntimeError("start on a closed CacheCluster")
        context = multiprocessing.get_context("spawn")
        for shard_id in range(self.n_shards):
            parent_conn, child_conn = context.Pipe(duplex=True)
            config = ShardConfig(
                shard_id=shard_id,
                slab_token=self.slab.token,
                cache_size=self.shard_size,
                **self._config,
            )
            process = context.Process(
                target=shard_main,
                args=(config, child_conn),
                name=f"lfo-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
        self._started = True
        registry = get_registry()
        if registry.enabled:
            registry.gauge("cluster.shards").set(float(self.n_shards))
        return self

    def __enter__(self) -> "CacheCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop shards, fold their final drains, unlink shared memory.

        Idempotent and exception-safe: whatever happens while stopping
        workers, the slab segments are unlinked exactly once — the
        serve loop's drain-then-flush discipline applied to process and
        shared-memory lifetime.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._started:
                registry = get_registry()
                for conn in self._conns:
                    try:
                        conn.send(("stop",))
                    except (BrokenPipeError, OSError):
                        continue
                for shard_id, conn in enumerate(self._conns):
                    try:
                        self._collect(shard_id, conn, registry, "stopped")
                    except (EOFError, OSError, RuntimeError):
                        # Shutdown is best-effort: a shard that died or
                        # errored mid-drain must not keep the others from
                        # stopping or the slab from unlinking.
                        continue
                    finally:
                        conn.close()
                for process in self._processes:
                    process.join(timeout=10)
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=5)
                registry.maybe_roll()
        finally:
            self._started = False
            self.slab.close()

    # -- model publication ---------------------------------------------------

    @property
    def generation(self) -> int:
        """The currently published model generation (0 = none yet)."""
        return self.slab.generation

    def publish(self, model: "LFOModel") -> int:
        """Publish ``model`` to every shard; returns the new generation.

        Hand this method to :class:`repro.core.LFOOnline` as its
        ``publish_hook`` — each installed model then goes live
        cluster-wide at the shards' next batch boundary.
        """
        generation = self.slab.publish_model(model)
        self._note_publish(generation)
        return generation

    def publish_predictor(
        self, predictor: "CompiledPredictor", cutoff: float, n_gaps: int
    ) -> int:
        """Publish a bare compiled predictor (no ``LFOModel`` wrapper)."""
        generation = self.slab.publish(predictor, cutoff, n_gaps)
        self._note_publish(generation)
        return generation

    def _note_publish(self, generation: int) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter("cluster.publishes").inc()
            registry.gauge("cluster.generation").set(float(generation))

    # -- request path --------------------------------------------------------

    def process(self, requests: Sequence[Request]) -> list[bool]:
        """Route one batch across the shards; per-request hits in order.

        Fan-out first (every shard's sub-batch is dispatched before any
        reply is awaited), then collect — shards compute concurrently.
        Telemetry drains arriving with the replies are folded into the
        active registry before this returns.
        """
        if not self._started:
            raise RuntimeError("CacheCluster.process before start()")
        if not requests:
            return []
        registry = get_registry()
        began = perf_counter()
        buckets = self.ring.partition(requests)
        dispatched: list[int] = []
        for shard_id, bucket in enumerate(buckets):
            if bucket:
                self._conns[shard_id].send(("batch", bucket))
                dispatched.append(shard_id)
        hits = [False] * len(requests)
        for shard_id in dispatched:
            shard_hits = self._collect(
                shard_id, self._conns[shard_id], registry, "done"
            )
            for (index, _request), hit in zip(buckets[shard_id], shard_hits):
                hits[index] = hit
        report = self.report
        report.requests += len(requests)
        report.hits += sum(hits)
        report.batches += 1
        report.generation = self.generation
        report.shards = [dict(stats) for stats in self._stats if stats]
        report.hit_bytes = sum(
            s.get("hit_bytes", 0.0) for s in report.shards
        )
        report.miss_bytes = sum(
            s.get("miss_bytes", 0.0) for s in report.shards
        )
        if registry.enabled:
            registry.counter("cluster.requests").inc(len(requests))
            registry.counter("cluster.shard_batches").inc(len(dispatched))
            registry.histogram(
                "cluster.batch_seconds", _BATCH_SECONDS_BUCKETS
            ).observe(perf_counter() - began)
        registry.maybe_roll()
        return hits

    def run(
        self, requests: Sequence[Request], batch_size: int = 2048
    ) -> ClusterReport:
        """Process a whole trace in routed batches; the final report."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        for start in range(0, len(requests), batch_size):
            self.process(requests[start:start + batch_size])
        return self.report

    def shard_stats(self) -> list[dict]:
        """The latest cumulative stats reported by each shard."""
        return [dict(stats) for stats in self._stats]

    def _collect(
        self, shard_id: int, conn, registry, final: str
    ) -> list[bool]:
        """Receive one shard's messages up to ``final``, folding drains."""
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "drain":
                _, _, payload_kind, items = message
                if registry.enabled:
                    registry.counter("cluster.drains").inc()
                if payload_kind == "metrics":
                    fold_deltas(registry, items)
                elif payload_kind == "accesses":
                    if self.on_access is not None:
                        self.on_access(items)
                else:
                    raise RuntimeError(
                        f"shard {shard_id}: unknown drain {payload_kind!r}"
                    )
            elif kind == "error":
                raise RuntimeError(
                    f"shard {shard_id} failed: {message[2]}"
                )
            elif kind == final:
                self._stats[message[1]] = message[2]
                return message[3] if len(message) > 3 else []
            elif kind == "done" and final == "stopped":
                # A batch reply whose collection was interrupted (SIGINT
                # mid-process): fold its stats and keep waiting for the
                # shutdown ack instead of failing the drain.
                self._stats[message[1]] = message[2]
            else:
                raise RuntimeError(
                    f"shard {shard_id}: unexpected {kind!r} "
                    f"while waiting for {final!r}"
                )
