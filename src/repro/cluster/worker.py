"""The shard worker process: one ``LFOCache`` behind a request pipe.

Spawn-safe by construction: :func:`shard_main` is a module-level
function of a picklable :class:`ShardConfig`, so it works identically
under the ``spawn`` start method (no forked state, no inherited
registry — worker processes observe into plain local instruments and
ship *deltas*).

Per batch the worker:

1. polls the model slab's generation word (two shared-memory reads);
   on a new generation it attaches the published model zero-copy
   (:class:`repro.cluster.SlabReader`) and swaps it in with
   ``cache.set_model`` — the cross-process warm handoff;
2. replays the batch through :func:`replay_scored` — the exact
   ``LFOCache.on_request`` decomposition (live features →
   ``likelihood_single`` → ``apply_scored``), additionally folding every
   score into a running ``blake2b`` digest.  The digest is what the
   cluster benchmark compares against a single-process replay of the
   same trace split: equal digests mean bit-identical scores;
3. pushes telemetry deltas and observed-access records through striped
   write buffers (:class:`repro.cluster.StripedBuffer`); size-triggered
   drains go down the pipe immediately, and the batch boundary drains
   the rest — the router folds them into its windowed registry, the
   trainer consumes the access records as training samples.

Timing: the worker accumulates ``process_time`` (CPU seconds) and
``perf_counter`` (busy wall seconds) around the scoring loop only —
attach, pickling, and pipe waits are excluded, so per-shard service
rates measure the work a dedicated core would do.
"""

from __future__ import annotations

import signal
import struct
import zlib
from dataclasses import dataclass
from hashlib import blake2b
from time import perf_counter, process_time
from typing import TYPE_CHECKING, Sequence

from ..core.lfo import ADMISSION_SCORE_BUCKETS, LFOCache
from ..obs.registry import Histogram
from ..trace import Request
from .buffers import StripedBuffer
from .slab import SlabReader

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

__all__ = ["ShardConfig", "replay_scored", "shard_main"]

_PACK_SCORE = struct.Struct("<d")


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard worker needs, snapshotted and picklable.

    Attributes:
        shard_id: this worker's index in the ring.
        slab_token: the :class:`repro.cluster.ModelSlab` token to attach.
        cache_size: this shard's capacity in bytes (the cluster splits
            the total evenly).
        n_gaps: gap-feature count of the shard's feature tracker.
        eviction: the shard cache's eviction mode.
        stripes: stripe count for the telemetry/access write buffers.
        stripe_capacity: per-stripe items before a size-triggered drain.
        ship_features: include each request's live feature row in the
            access records (the trainer needs them; plain replay does
            not, and the rows dominate pipe traffic).
    """

    shard_id: int
    slab_token: str
    cache_size: int
    n_gaps: int = 50
    eviction: str = "likelihood"
    stripes: int = 8
    stripe_capacity: int = 256
    ship_features: bool = False


def replay_scored(
    cache: LFOCache,
    requests: Sequence[Request],
    digest: "blake2b | None" = None,
    hist: Histogram | None = None,
) -> list[bool]:
    """Replay ``requests`` through ``cache`` exactly like ``on_request``.

    The scalar decomposition (live features → ``likelihood_single`` →
    ``apply_scored``) with the score captured in flight: every score is
    folded into ``digest`` (when given) and observed into ``hist`` (when
    given and a model is live).  Decisions and scores are bit-identical
    to calling ``cache.on_request`` per request — this is both the shard
    worker's serving loop and the benchmark's in-process reference.
    """
    tracker = cache.tracker
    hits = []
    for request in requests:
        features = tracker.features(request, cache.free_bytes)
        model = cache.model
        if model is not None:
            score = model.likelihood_single(features)
            if hist is not None:
                hist.observe(score)
        else:
            score = 0.0
        if digest is not None:
            digest.update(_PACK_SCORE.pack(score))
        hits.append(cache.apply_scored(request, features, score))
    return hits


def _metric_key(name: str) -> int:
    """Deterministic stripe key for a metric name (no hash salting)."""
    return zlib.crc32(name.encode())


class _ShardState:
    """One worker's live state: cache, slab reader, buffers, counters."""

    def __init__(self, config: ShardConfig, conn: "Connection") -> None:
        self.config = config
        self.conn = conn
        self.cache = LFOCache(
            config.cache_size,
            model=None,
            n_gaps=config.n_gaps,
            eviction=config.eviction,
        )
        self.reader = SlabReader(config.slab_token)
        self.generation = 0
        self.attaches = 0
        self.requests = 0
        self.hits = 0
        self.hit_bytes = 0.0
        self.miss_bytes = 0.0
        self.cpu_seconds = 0.0
        self.busy_seconds = 0.0
        self.digest = blake2b(digest_size=16)
        self.score_hist = Histogram(
            "lfo.admission_score", ADMISSION_SCORE_BUCKETS
        )
        self._hist_shipped = [0] * len(self.score_hist.bucket_counts)
        self._hist_shipped_count = 0
        self._hist_shipped_total = 0.0
        self.metrics_buffer = StripedBuffer(
            self._send_metrics,
            stripes=config.stripes,
            capacity=config.stripe_capacity,
        )
        self.access_buffer = StripedBuffer(
            self._send_accesses,
            stripes=config.stripes,
            capacity=config.stripe_capacity,
        )

    def _send_metrics(self, batch: list) -> None:
        self.conn.send(("drain", self.config.shard_id, "metrics", batch))

    def _send_accesses(self, batch: list) -> None:
        self.conn.send(("drain", self.config.shard_id, "accesses", batch))

    def maybe_attach(self) -> None:
        """Batch-boundary model check: attach a new generation if flipped."""
        generation = self.reader.poll()
        if generation == self.generation:
            return
        attached = self.reader.attach()
        if attached is None:
            return
        self.generation, model = attached
        self.cache.set_model(model)
        self.attaches += 1
        self.metrics_buffer.add(
            _metric_key("cluster.shard_attaches"),
            ("counter", "cluster.shard_attaches", 1),
        )

    def process(self, batch: list[tuple[int, Request]]) -> None:
        """Score one routed batch and reply with cumulative stats."""
        self.maybe_attach()
        cache = self.cache
        tracker = cache.tracker
        digest = self.digest
        hist = self.score_hist
        ship_features = self.config.ship_features
        hit_bytes = 0.0
        miss_bytes = 0.0
        hits: list[bool] = []
        n_hits = 0
        began_cpu = process_time()
        began_wall = perf_counter()
        for index, request in batch:
            features = tracker.features(request, cache.free_bytes)
            model = cache.model
            if model is not None:
                score = model.likelihood_single(features)
                hist.observe(score)
            else:
                score = 0.0
            digest.update(_PACK_SCORE.pack(score))
            hit = cache.apply_scored(request, features, score)
            hits.append(hit)
            if hit:
                n_hits += 1
                hit_bytes += request.size
            else:
                miss_bytes += request.size
            self.access_buffer.add(
                request.obj,
                (
                    index,
                    request,
                    hit,
                    features.copy() if ship_features else None,
                ),
            )
        self.cpu_seconds += process_time() - began_cpu
        self.busy_seconds += perf_counter() - began_wall
        self.requests += len(batch)
        self.hits += n_hits
        self.hit_bytes += hit_bytes
        self.miss_bytes += miss_bytes
        for name, delta in (
            ("sim.requests", len(batch)),
            ("sim.hit_bytes", hit_bytes),
            ("sim.miss_bytes", miss_bytes),
        ):
            if delta:
                self.metrics_buffer.add(
                    _metric_key(name), ("counter", name, delta)
                )
        self._ship_histogram_delta()
        # Boundary trigger: the router folds complete batches only.
        self.access_buffer.drain_all()
        self.metrics_buffer.drain_all()
        self.conn.send(("done", self.config.shard_id, self.stats(), hits))

    def _ship_histogram_delta(self) -> None:
        """Queue the admission-score histogram's since-last-ship delta."""
        hist = self.score_hist
        delta = [
            now - before
            for now, before in zip(hist.bucket_counts, self._hist_shipped)
        ]
        count_delta = hist.count - self._hist_shipped_count
        if count_delta == 0:
            return
        total_delta = hist.total - self._hist_shipped_total
        self._hist_shipped = list(hist.bucket_counts)
        self._hist_shipped_count = hist.count
        self._hist_shipped_total = hist.total
        self.metrics_buffer.add(
            _metric_key(hist.name),
            (
                "hist", hist.name, hist.bounds,
                delta, count_delta, total_delta, hist.max,
            ),
        )

    def stats(self) -> dict:
        """Cumulative per-shard stats (the ``done``/``stopped`` payload)."""
        return {
            "shard": self.config.shard_id,
            "requests": self.requests,
            "hits": self.hits,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "cpu_seconds": self.cpu_seconds,
            "busy_seconds": self.busy_seconds,
            "generation": self.generation,
            "attaches": self.attaches,
            "buffer_drains": (
                self.metrics_buffer.drains + self.access_buffer.drains
            ),
            "score_digest": self.digest.copy().hexdigest(),
        }


def shard_main(config: ShardConfig, conn: "Connection") -> None:
    """Worker entry point: serve routed batches until ``stop``.

    Message protocol (parent → worker): ``("batch", [(index, request),
    ...])`` and ``("stop",)``.  Worker → parent: zero or more
    ``("drain", shard, kind, items)`` per batch, then ``("done", shard,
    stats, hits)``; ``("stopped", shard, stats)`` acknowledges shutdown after
    a final drain.  Any worker exception is reported as ``("error",
    shard, message)`` before re-raising, so the router can fail fast
    instead of deadlocking on a silent child.
    """
    # A terminal Ctrl-C signals the whole foreground process group —
    # workers included.  Shutdown is the router's job (a "stop" message
    # followed by join-or-terminate), so the worker must keep serving
    # through the router's drain instead of dying mid-batch with a
    # KeyboardInterrupt half-reply in the pipe.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    state = _ShardState(config, conn)
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "batch":
                state.process(message[1])
            elif kind == "stop":
                # Drain-then-flush, mirroring the serve loop's shutdown:
                # ship every buffered record before acknowledging.
                state.access_buffer.drain_all()
                state.metrics_buffer.drain_all()
                state._ship_histogram_delta()
                state.metrics_buffer.drain_all()
                conn.send(("stopped", config.shard_id, state.stats()))
                return
            else:
                raise ValueError(f"unknown cluster message: {kind!r}")
    except BaseException as exc:
        try:
            conn.send(("error", config.shard_id, repr(exc)))
        except (BrokenPipeError, OSError):
            pass
        raise
    finally:
        # Drop the zero-copy model before detaching: its numpy views pin
        # the shared mapping, and a pinned mapping can be closed neither
        # here nor in ``SharedMemory.__del__`` (interpreter-exit noise).
        state.cache.model = None
        state.reader.close()
        conn.close()
