"""Serving-loop integration: a cluster-backed drop-in for ``BatchScorer``.

:class:`ClusterScorer` gives the always-on serving harness
(:class:`repro.serve.ServingLoop`) a sharded data plane: request batches
route through a :class:`~repro.cluster.CacheCluster` instead of a local
cache, while the control plane — one :class:`repro.core.LFOOnline`
trainer living in the router process — keeps the paper's Figure-2 loop
intact:

1. shards serve each routed batch and ship observed-access records
   (request, hit, the *live* feature row it was scored with) through
   their striped buffers;
2. the scorer replays those records, in global request order, into the
   trainer's window buffer (``poll_training`` + ``record_for_training``
   — the same serving hooks ``BatchScorer`` drives), so training sees
   exactly what the shards served;
3. when a window closes and a fresh model installs, the trainer's
   ``publish_hook`` (installed by this class when unset) writes it into
   the shared slab — and every shard warm-hands-off to the new
   generation at its next batch boundary.

The scorer exposes the two members the serving loop consumes —
``process(requests) -> hits`` and ``n_handoffs`` — plus
``folds_bytes = True``, which tells the loop the byte counters already
arrived through the cluster's telemetry fold (folding them again would
double-count window BHR).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from ..obs import get_registry
from ..sim.batched import DECISION_LATENCY_BUCKETS
from ..trace import Request
from .cluster import CacheCluster

if TYPE_CHECKING:  # annotation only; avoids repro.core import at runtime.
    from ..core.online import LFOOnline

__all__ = ["ClusterScorer"]


class ClusterScorer:
    """Score request batches through a shard cluster; train in-router.

    Args:
        trainer: the router-process :class:`~repro.core.LFOOnline`.  Its
            cache never serves — only its training windows, retraining
            machinery, and ``publish_hook`` matter.  Size it to one
            *shard's* capacity so the OPT oracle labels against the
            capacity each shard actually serves.  When its
            ``publish_hook`` is unset, :meth:`CacheCluster.publish` is
            installed — every installed model then goes live
            cluster-wide.
        cluster: a started-or-startable cluster built with
            ``ship_features=True`` (training needs the live rows).  The
            scorer takes over its ``on_access`` tap.
    """

    #: The serving loop reads this: byte counters already arrive through
    #: the cluster's telemetry fold, so the loop must not count them too.
    folds_bytes = True

    def __init__(self, trainer: "LFOOnline", cluster: CacheCluster) -> None:
        if not cluster.ship_features:
            raise ValueError(
                "ClusterScorer needs a cluster built with "
                "ship_features=True: training must see the live feature "
                "rows the shards scored with"
            )
        if trainer.tracker.n_gaps != cluster.n_gaps:
            raise ValueError(
                f"trainer n_gaps ({trainer.tracker.n_gaps}) != cluster "
                f"n_gaps ({cluster.n_gaps}); feature rows would not match"
            )
        self.trainer = trainer
        self.cluster = cluster
        cluster.on_access = self._take_accesses
        if trainer.publish_hook is None:
            trainer.publish_hook = cluster.publish
        self.n_handoffs = 0
        self._generation = cluster.generation
        self._accesses: list = []
        registry = get_registry()
        if registry.enabled:
            self._latency_hist = registry.histogram(
                "serve.decision_latency_seconds", DECISION_LATENCY_BUCKETS
            )
            self._handoff_counter = registry.counter("serve.model_handoffs")
        else:
            self._latency_hist = None
            self._handoff_counter = None

    def _take_accesses(self, items: list) -> None:
        self._accesses.extend(items)

    def process(self, requests: Sequence[Request]) -> list[bool]:
        """Route one batch through the cluster; per-request hits in order.

        All of the batch's access records arrive before
        :meth:`CacheCluster.process` returns (the batch boundary drains
        every shard buffer), so replaying them sorted by original index
        feeds the trainer in exactly the order the requests were served.
        """
        self._accesses = []
        began = perf_counter()
        hits = self.cluster.process(requests)
        elapsed = perf_counter() - began
        trainer = self.trainer
        for _index, request, _hit, features in sorted(
            self._accesses, key=lambda record: record[0]
        ):
            trainer.poll_training()
            if features is not None:
                trainer.record_for_training(request, features)
        self._accesses = []
        generation = self.cluster.generation
        if generation != self._generation:
            fresh = generation - self._generation
            self._generation = generation
            self.n_handoffs += fresh
            if self._handoff_counter is not None:
                self._handoff_counter.inc(fresh)
        if self._latency_hist is not None and requests:
            per_request = elapsed / len(requests)
            for _ in requests:
                self._latency_hist.observe(per_request)
        return hits
