"""The shared-memory model slab: one writer, many zero-copy readers.

One trainer process publishes each freshly trained model once; every
shard worker scores against it without copies, pickles, or locks.  The
mechanism is two ``multiprocessing.shared_memory`` segments:

* a fixed-size **control segment** (``<token>-ctrl``) holding a seqlock
  word, the current generation number, the admission ``cutoff`` /
  ``n_gaps`` the model was trained with, and the name + payload size of
  the current data segment;
* one **data segment per generation** (``<token>-g<N>``) holding the
  compiled predictor's wire bytes (:meth:`CompiledPredictor.to_bytes`:
  header, roots, depths, the contiguous ``_NODE_DTYPE`` node slab).

Publish protocol (single writer):

1. write the new model's bytes into a *fresh* data segment;
2. bump the control seqlock to odd, rewrite the control record
   (generation + 1, new segment name/size, cutoff), bump it back to
   even — readers that observe an odd or changing seqlock simply retry;
3. unlink the *previous* generation's segment.  POSIX keeps the pages
   alive for every process still mapping them, so shards mid-batch on
   the old model are unaffected and the segment disappears when the
   last reader detaches.

Attach protocol (:class:`SlabReader`): poll the generation word at batch
boundaries (two reads and a compare — never per request); on change,
re-read the control record under the seqlock, open the named segment,
and rebuild the predictor with :meth:`CompiledPredictor.from_buffer` —
zero-copy ``np.frombuffer`` views over the shared pages, bit-identical
scores to the publisher's in-process predictor.

Lifecycle (the part that usually leaks): the *creator* unlinks every
segment exactly once (:meth:`ModelSlab.close` is idempotent and safe
under SIGINT's ``finally``), and that single unlink is also the single
``resource_tracker`` unregister.  On Python 3.11 every attach registers
with the tracker too, but ``spawn`` children inherit the creator's
tracker process and its registry is a per-name *set* — reader
registrations dedupe against the creator's own, so no "leaked
shared_memory" warnings and no double unlinks at exit.  (Readers must
therefore share the creator's tracker: spawn children or the creating
process itself — exactly what :class:`repro.cluster.CacheCluster`
arranges.  A reader-side unregister would instead strip the creator's
entry and make the final unlink a tracker error.)
"""

from __future__ import annotations

import itertools
import os
import struct
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from ..gbdt.compiled import CompiledPredictor

if TYPE_CHECKING:  # annotation only; avoids repro.core import at runtime.
    from ..core.lfo import LFOModel

__all__ = ["ModelSlab", "SlabModel", "SlabReader"]

#: Control-segment magic; bump the digit on layout changes.
_CTRL_MAGIC = b"LFOCTRL1"

#: seq (seqlock word), generation, payload size, cutoff, n_gaps, name_len.
_CTRL_HEADER = struct.Struct("<8sQQQdII")

#: Data-segment names are ASCII and short; 128 bytes is generous.
_CTRL_NAME_MAX = 128

_CTRL_SIZE = _CTRL_HEADER.size + _CTRL_NAME_MAX

#: Offset of the seqlock word inside the control record (after magic).
_SEQ_OFFSET = 8

_SEQ_WORD = struct.Struct("<Q")

#: Per-process token counter: slab names are ``lfo-<pid>-<n>[-...]``, so
#: concurrent clusters in one process never collide and names stay
#: deterministic (no RNG, no wall clock).
_token_counter = itertools.count()


class SlabModel:
    """A duck-typed :class:`~repro.core.LFOModel` over an attached slab.

    Exposes exactly the surface :class:`~repro.core.LFOCache` touches —
    ``classifier.compiled()``, ``cutoff``, ``n_gaps``, ``likelihood``,
    ``likelihood_single`` — backed by a zero-copy
    :class:`CompiledPredictor` whose node tables live in the shared
    segment.  The instance keeps the segment mapped for as long as the
    model is alive.
    """

    def __init__(
        self,
        predictor: CompiledPredictor,
        cutoff: float,
        n_gaps: int,
        segment: "shared_memory.SharedMemory | None" = None,
    ) -> None:
        self.predictor = predictor
        self.cutoff = float(cutoff)
        self.n_gaps = int(n_gaps)
        self._segment = segment

    @property
    def classifier(self) -> "SlabModel":
        """``model.classifier.compiled()`` compatibility shim."""
        return self

    def compiled(self) -> CompiledPredictor:
        """The zero-copy predictor mapped over the shared segment."""
        return self.predictor

    def likelihood(self, features: np.ndarray) -> np.ndarray:
        """Predicted admission probability per feature row."""
        return self.predictor.predict_proba(features)

    def likelihood_single(self, features: np.ndarray) -> float:
        """Admission probability for one feature vector."""
        return self.predictor.predict_proba_single(features)

    def admit(self, features: np.ndarray) -> bool:
        """Admission decision for a single feature vector."""
        return self.likelihood_single(features) >= self.cutoff


class ModelSlab:
    """The publisher (writer) side of the shared model slab.

    Create one in the trainer/router process, hand :meth:`publish_model`
    to :class:`repro.core.LFOOnline` as its ``publish_hook``, and pass
    :attr:`token` to shard workers so they can build a
    :class:`SlabReader`.  Context-manager friendly; :meth:`close` is
    idempotent and unlinks every live segment exactly once.
    """

    def __init__(self, token: str | None = None) -> None:
        self.token = token or f"lfo-{os.getpid()}-{next(_token_counter)}"
        if len(self.token.encode("ascii")) > _CTRL_NAME_MAX - 16:
            raise ValueError(f"slab token too long: {self.token!r}")
        self.generation = 0
        self._seq = 0
        self._data: shared_memory.SharedMemory | None = None
        self._closed = False
        self._ctrl = shared_memory.SharedMemory(
            name=f"{self.token}-ctrl", create=True, size=_CTRL_SIZE
        )
        self._write_control(payload=0, cutoff=0.5, n_gaps=0, name=b"")

    def _write_control(
        self, payload: int, cutoff: float, n_gaps: int, name: bytes
    ) -> None:
        """Rewrite the control record under the seqlock (writer side)."""
        buf = self._ctrl.buf
        # Odd seq = record unstable; readers spin/retry instead of
        # parsing a half-written name.
        _SEQ_WORD.pack_into(buf, _SEQ_OFFSET, self._seq + 1)
        _CTRL_HEADER.pack_into(
            buf, 0,
            _CTRL_MAGIC, self._seq + 1, self.generation,
            payload, cutoff, n_gaps, len(name),
        )
        buf[_CTRL_HEADER.size:_CTRL_HEADER.size + len(name)] = name
        self._seq += 2
        _SEQ_WORD.pack_into(buf, _SEQ_OFFSET, self._seq)

    def publish(
        self, predictor: CompiledPredictor, cutoff: float, n_gaps: int
    ) -> int:
        """Write one compiled model as a fresh generation; returns it.

        The previous generation's segment is unlinked after the flip —
        readers still mapping it keep valid pages until they detach.
        """
        if self._closed:
            raise RuntimeError("publish on a closed ModelSlab")
        payload = predictor.to_bytes()
        generation = self.generation + 1
        segment = shared_memory.SharedMemory(
            name=f"{self.token}-g{generation}", create=True, size=len(payload)
        )
        segment.buf[: len(payload)] = payload
        previous = self._data
        self.generation = generation
        self._data = segment
        self._write_control(
            payload=len(payload),
            cutoff=cutoff,
            n_gaps=n_gaps,
            name=segment.name.encode("ascii"),
        )
        if previous is not None:
            previous.close()
            previous.unlink()
        return generation

    def publish_model(self, model: "LFOModel") -> int:
        """:meth:`publish` an :class:`~repro.core.LFOModel` (hook form)."""
        return self.publish(
            model.classifier.compiled(), model.cutoff, model.n_gaps
        )

    def close(self) -> None:
        """Unlink the control and current data segments, exactly once.

        Safe to call from ``finally`` blocks and signal-interrupted
        shutdown paths in any order or multiplicity.
        """
        if self._closed:
            return
        self._closed = True
        if self._data is not None:
            self._data.close()
            self._data.unlink()
            self._data = None
        self._ctrl.close()
        self._ctrl.unlink()

    def __enter__(self) -> "ModelSlab":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SlabReader:
    """The attach (reader) side: poll the generation, map the model.

    One per shard worker.  :meth:`poll` is the batch-boundary check (a
    seqlock read of the control record); :meth:`attach` maps the current
    generation's segment zero-copy into a :class:`SlabModel`.  Old
    segments stay mapped until :meth:`close` — numpy views pin the
    pages, and the publisher has already unlinked the names, so the cost
    is address space, never stale scores.
    """

    def __init__(self, token: str) -> None:
        self.token = token
        self._ctrl = shared_memory.SharedMemory(name=f"{token}-ctrl")
        self._attached: list[shared_memory.SharedMemory] = []
        self._closed = False

    def _read_control(self) -> tuple[int, int, float, int, str]:
        """One consistent ``(generation, payload, cutoff, n_gaps, name)``.

        Seqlock read: retry while the writer holds the seq odd or the
        seq changes across the record read.  The writer's critical
        section is a few hundred nanoseconds, so the loop terminates
        immediately in practice.
        """
        buf = self._ctrl.buf
        while True:
            (seq_before,) = _SEQ_WORD.unpack_from(buf, _SEQ_OFFSET)
            if seq_before % 2:
                continue
            magic, seq, generation, payload, cutoff, n_gaps, name_len = (
                _CTRL_HEADER.unpack_from(buf, 0)
            )
            name = bytes(
                buf[_CTRL_HEADER.size:_CTRL_HEADER.size + name_len]
            ).decode("ascii")
            (seq_after,) = _SEQ_WORD.unpack_from(buf, _SEQ_OFFSET)
            if seq_before == seq_after:
                if magic != _CTRL_MAGIC:
                    raise ValueError(
                        f"slab control segment has magic {magic!r}, "
                        f"expected {_CTRL_MAGIC!r}"
                    )
                return generation, payload, cutoff, n_gaps, name

    def poll(self) -> int:
        """The currently published generation (0 = nothing published)."""
        return self._read_control()[0]

    def attach(self) -> "tuple[int, SlabModel] | None":
        """Map the current generation; ``None`` before the first publish.

        Returns ``(generation, model)``; the model's node tables are
        ``np.frombuffer`` views over the shared pages (no copy), so its
        scores are bit-identical to the publisher's in-process predictor.
        """
        if self._closed:
            raise RuntimeError("attach on a closed SlabReader")
        generation, payload, cutoff, n_gaps, name = self._read_control()
        if generation == 0:
            return None
        segment = shared_memory.SharedMemory(name=name)
        self._attached.append(segment)
        predictor = CompiledPredictor.from_buffer(segment.buf[:payload])
        return generation, SlabModel(predictor, cutoff, n_gaps, segment)

    def close(self) -> None:
        """Detach every mapped segment (idempotent; never unlinks)."""
        if self._closed:
            return
        self._closed = True
        for segment in self._attached:
            try:
                segment.close()
            except BufferError:
                # Live numpy views still pin the mapping; the OS reclaims
                # it at process exit.  Never an error on the reader side.
                pass
        self._attached.clear()
        try:
            self._ctrl.close()
        except BufferError:
            pass

    def __enter__(self) -> "SlabReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
