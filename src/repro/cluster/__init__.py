"""Sharded multi-process cache cluster with a shared-memory model slab.

Scaling the single-process LFO loop out over cores (the deployment shape
a CDN node actually runs) needs three mechanisms, and this package is
exactly those three plus the router that composes them:

* **consistent-hash routing** (:class:`HashRing`, ``ring.py``) — a
  seeded ring with configurable virtual nodes maps every object id to
  one shard, deterministically across processes and runs, with ~1/(N+1)
  keys remapped when a shard is added;
* **the model slab** (:class:`ModelSlab` / :class:`SlabReader`,
  ``slab.py``) — one trainer serializes each compiled model's
  contiguous node array into ``multiprocessing.shared_memory`` and
  flips a generation counter; every shard attaches zero-copy
  (``np.frombuffer``) with bit-identical scores.  Publish is
  write-new-then-flip, never in-place: readers either see the old
  generation or the complete new one;
* **striped cross-shard buffers** (:class:`StripedBuffer`,
  ``buffers.py``) — telemetry deltas and observed accesses batch
  through per-shard striped write buffers and drain on size/boundary
  triggers, so cross-shard traffic never serializes on a lock.

:class:`CacheCluster` (``cluster.py``) wires them together — spawn-safe
shard workers (``worker.py``), fan-out/collect batch dispatch, and
telemetry folding into the registry (cluster-wide windows, SLOs, and
drift detection unchanged) — and :class:`ClusterScorer` (``serving.py``)
drops the cluster into the always-on serving loop with the trainer
publishing into the slab (``lfo serve --shards N``).
"""

from .buffers import StripedBuffer
from .cluster import CacheCluster, ClusterReport
from .ring import HashRing
from .serving import ClusterScorer
from .slab import ModelSlab, SlabModel, SlabReader
from .worker import ShardConfig, replay_scored, shard_main

__all__ = [
    "CacheCluster",
    "ClusterReport",
    "ClusterScorer",
    "HashRing",
    "ModelSlab",
    "ShardConfig",
    "SlabModel",
    "SlabReader",
    "StripedBuffer",
    "replay_scored",
    "shard_main",
]
