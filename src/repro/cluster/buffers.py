"""Striped write buffers: batched cross-shard traffic without locks.

Telemetry deltas and observed-access records flow from every shard to
the router/trainer.  Sending them per request would serialise the
cluster on its slowest pipe; guarding one shared buffer with a lock
would serialise it on contention.  The theine-style answer (see its
``striped_buffer.py``/``write_buffer.py``) is striping: each producer
appends into one of several independent ring/list stripes chosen by key
hash, and a stripe drains *itself* the moment it fills — so flush cost
is amortised, batch sizes are bounded, and no two keys ever contend on
the same append unless they share a stripe.

The shard workers here are single-threaded processes, so the stripes'
role is batching and bounded drain granularity rather than mutual
exclusion — but the shape is kept deliberately theine-like (power-of-two
stripe count, mask selection, swap-on-drain) so a threaded producer
works unchanged: list append and reference swap are each atomic under
the GIL.

Two triggers drain a stripe:

* **size** — an append that fills the stripe to ``capacity`` drains it
  immediately (bounded memory, bounded message size);
* **boundary** — :meth:`StripedBuffer.drain_all` at batch/window edges
  flushes every remaining stripe, so downstream folding (telemetry
  windows, training samples) always observes complete batches.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["StripedBuffer"]


class StripedBuffer:
    """N independent append buffers with swap-on-drain batching.

    Args:
        on_drain: called with each drained batch (a list of items, in
            append order for that stripe).  The batch is detached before
            the call — the callback may hold or mutate it freely.
        stripes: stripe count; must be a power of two (mask selection).
        capacity: items per stripe before a size-triggered drain.
    """

    def __init__(
        self,
        on_drain: Callable[[list], None],
        stripes: int = 8,
        capacity: int = 256,
    ) -> None:
        if stripes < 1 or stripes & (stripes - 1):
            raise ValueError("stripes must be a power of two")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.drains = 0
        self.items_drained = 0
        self._on_drain = on_drain
        self._mask = stripes - 1
        self._stripes: list[list] = [[] for _ in range(stripes)]

    @property
    def stripes(self) -> int:
        """Number of stripes."""
        return self._mask + 1

    def add(self, key: int, item: Any) -> None:
        """Append ``item`` to the stripe selected by ``key``.

        Fills trigger an immediate drain of that stripe only — the other
        stripes keep batching.
        """
        index = key & self._mask
        stripe = self._stripes[index]
        stripe.append(item)
        if len(stripe) >= self.capacity:
            self._drain(index)

    def _drain(self, index: int) -> None:
        # Swap-on-drain: detach the full list, install a fresh one, then
        # hand the batch out — a threaded producer appending concurrently
        # lands in the new list, never in the batch being consumed.
        batch = self._stripes[index]
        self._stripes[index] = []
        self.drains += 1
        self.items_drained += len(batch)
        self._on_drain(batch)

    def drain_all(self) -> None:
        """Boundary trigger: flush every non-empty stripe."""
        for index in range(self._mask + 1):
            if self._stripes[index]:
                self._drain(index)

    def __len__(self) -> int:
        """Items currently buffered across all stripes."""
        return sum(len(stripe) for stripe in self._stripes)
