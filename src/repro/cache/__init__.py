"""Cache policies: the paper's full comparison zoo plus OPT replay."""

from .adaptsize import AdaptSizeCache
from .base import CachePolicy
from .classic import LFUCache, LFUDACache, LRUCache, LRUKCache, RandomCache
from .greedydual import GDSFCache, GDWheelCache
from .hyperbolic import HyperbolicCache
from .lhd import LHDCache
from .optreplay import OptReplayCache
from .rl import RLCache
from .scan_resistant import ClockCache, FIFOCache, GDSCache, TwoQCache
from .segmented import S4LRUCache
from .tinylfu import CountMinSketch, TinyLFUCache

__all__ = [
    "CachePolicy",
    "AdaptSizeCache",
    "LFUCache",
    "LFUDACache",
    "LRUCache",
    "LRUKCache",
    "RandomCache",
    "GDSFCache",
    "GDWheelCache",
    "HyperbolicCache",
    "LHDCache",
    "OptReplayCache",
    "RLCache",
    "ClockCache",
    "FIFOCache",
    "GDSCache",
    "TwoQCache",
    "S4LRUCache",
    "CountMinSketch",
    "TinyLFUCache",
]
