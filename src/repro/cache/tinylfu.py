"""TinyLFU admission filter (Einziger & Friedman 2014) over LRU.

Cited by the paper among the admission-policy heuristics [24].  A
count-min sketch estimates request frequencies; a missed object is admitted
only if its estimated frequency beats the would-be victim's.  The sketch is
periodically halved ("reset") so estimates age.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..trace import Request
from .base import CachePolicy

__all__ = ["TinyLFUCache", "CountMinSketch"]


class CountMinSketch:
    """A small count-min sketch with periodic aging.

    Attributes:
        width: counters per row.
        depth: number of hash rows.
        reset_interval: increments between halvings of all counters.
    """

    def __init__(
        self, width: int = 16384, depth: int = 4, reset_interval: int = 100_000,
        seed: int = 0,
    ) -> None:
        self.width = width
        self.depth = depth
        self.reset_interval = reset_interval
        self._table = np.zeros((depth, width), dtype=np.int64)
        rng = np.random.default_rng(seed)
        # Odd multipliers for multiply-shift hashing.
        self._salts = rng.integers(1, 2**61, size=depth) | 1
        self._increments = 0

    def _rows(self, key: int) -> np.ndarray:
        hashed = (key * self._salts) & ((1 << 61) - 1)
        return hashed % self.width

    def add(self, key: int) -> None:
        """Count one occurrence of ``key``."""
        cols = self._rows(key)
        self._table[np.arange(self.depth), cols] += 1
        self._increments += 1
        if self._increments >= self.reset_interval:
            self._table >>= 1
            self._increments = 0

    def estimate(self, key: int) -> int:
        """Upper-biased frequency estimate of ``key``."""
        cols = self._rows(key)
        return int(self._table[np.arange(self.depth), cols].min())


class TinyLFUCache(CachePolicy):
    """LRU with TinyLFU frequency-based admission."""

    name = "TinyLFU"

    def __init__(
        self, cache_size: int, sketch_width: int = 16384, seed: int = 0,
    ) -> None:
        super().__init__(cache_size)
        self._sketch = CountMinSketch(width=sketch_width, seed=seed)
        self._lru: OrderedDict[int, None] = OrderedDict()

    def _on_hit(self, request: Request) -> None:
        self._sketch.add(request.obj)
        self._lru.move_to_end(request.obj)

    def _on_miss_observed(self, request: Request) -> None:
        self._sketch.add(request.obj)

    def _admit(self, request: Request) -> bool:
        if self.used_bytes + request.size <= self.cache_size:
            return True  # free space: no victim to beat
        victim = next(iter(self._lru), None)
        if victim is None:
            return True
        return self._sketch.estimate(request.obj) > self._sketch.estimate(victim)

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._lru.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if not self._lru:
            return None
        return next(iter(self._lru))

    def _reset_policy_state(self) -> None:
        self._lru.clear()
        self._sketch = CountMinSketch(width=self._sketch.width)
