"""Additional classic policies: FIFO, CLOCK, GDS, and 2Q.

These are not in the paper's Figure 6 set but are the standard lineage of
the policies that are (GDS is GDSF without the frequency term; 2Q and CLOCK
are the classic scan-resistant/low-overhead designs that S4LRU and
Hyperbolic are usually compared against).  They round out the simulator as
a general caching library.
"""

from __future__ import annotations

from collections import OrderedDict

from ..trace import Request
from .base import CachePolicy
from .classic import _AgedFrequencyCache

__all__ = ["FIFOCache", "ClockCache", "GDSCache", "TwoQCache"]


class FIFOCache(CachePolicy):
    """First-in-first-out eviction; hits do not refresh position."""

    name = "FIFO"

    def __init__(self, cache_size: int) -> None:
        super().__init__(cache_size)
        self._queue: OrderedDict[int, None] = OrderedDict()

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._queue[request.obj] = None

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._queue.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        return next(iter(self._queue), None)

    def _reset_policy_state(self) -> None:
        self._queue.clear()


class ClockCache(CachePolicy):
    """CLOCK (second-chance FIFO): a reference bit saves recently hit
    objects from the advancing hand once."""

    name = "CLOCK"

    def __init__(self, cache_size: int) -> None:
        super().__init__(cache_size)
        self._ring: OrderedDict[int, bool] = OrderedDict()  # obj -> ref bit

    def _on_hit(self, request: Request) -> None:
        self._ring[request.obj] = True

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._ring[request.obj] = False

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._ring.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        while self._ring:
            obj, referenced = next(iter(self._ring.items()))
            if referenced:
                # Second chance: clear the bit, move to the back.
                self._ring[obj] = False
                self._ring.move_to_end(obj)
            else:
                return obj
        return None

    def _reset_policy_state(self) -> None:
        self._ring.clear()


class GDSCache(_AgedFrequencyCache):
    """GreedyDual-Size (Cao & Irani): priority = age + cost/size, without
    GDSF's frequency term."""

    name = "GDS"

    def _key(self, request: Request, freq: int) -> float:
        del freq
        return request.cost / request.size


class TwoQCache(CachePolicy):
    """Simplified 2Q (Johnson & Shasha 1994).

    New objects enter a small FIFO probation queue (A1in); objects evicted
    from probation leave a ghost entry (A1out, ids only); a request that
    hits the ghost list promotes the object into the protected LRU (Am).
    Scans churn the probation queue without touching the protected space.
    """

    name = "2Q"

    def __init__(
        self,
        cache_size: int,
        probation_fraction: float = 0.25,
        ghost_entries: int = 10_000,
    ) -> None:
        super().__init__(cache_size)
        if not 0.0 < probation_fraction < 1.0:
            raise ValueError("probation_fraction must be in (0, 1)")
        self._probation_quota = int(cache_size * probation_fraction)
        self._ghost_entries = ghost_entries
        self._a1in: OrderedDict[int, int] = OrderedDict()  # obj -> size
        self._a1in_bytes = 0
        self._a1out: OrderedDict[int, None] = OrderedDict()  # ghosts
        self._am: OrderedDict[int, int] = OrderedDict()

    def _on_hit(self, request: Request) -> None:
        obj = request.obj
        if obj in self._am:
            self._am.move_to_end(obj)
        # A1in hits stay put (2Q's defining rule: no promotion on the first
        # re-reference inside probation).

    def _on_miss_observed(self, request: Request) -> None:
        pass

    def _admit(self, request: Request) -> bool:
        return True

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        obj, size = request.obj, request.size
        if obj in self._a1out:
            # Ghost hit: straight into the protected space.
            self._a1out.pop(obj)
            self._am[obj] = size
        else:
            self._a1in[obj] = size
            self._a1in_bytes += size

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        if obj in self._a1in:
            self._a1in_bytes -= self._a1in.pop(obj)
            self._a1out[obj] = None
            while len(self._a1out) > self._ghost_entries:
                self._a1out.popitem(last=False)
        else:
            self._am.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        # Prefer probation victims while probation exceeds its quota or the
        # protected space is empty.
        if self._a1in and (
            self._a1in_bytes > self._probation_quota or not self._am
        ):
            return next(iter(self._a1in))
        if self._am:
            return next(iter(self._am))
        if self._a1in:
            return next(iter(self._a1in))
        return None

    def _reset_policy_state(self) -> None:
        self._a1in.clear()
        self._a1in_bytes = 0
        self._a1out.clear()
        self._am.clear()
