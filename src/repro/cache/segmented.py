"""S4LRU (Huang et al., SOSP 2013) — the best non-learning BHR policy in the
paper's Figure 6 comparison."""

from __future__ import annotations

from collections import OrderedDict

from ..trace import Request
from .base import CachePolicy

__all__ = ["S4LRUCache"]


class S4LRUCache(CachePolicy):
    """Segmented LRU with four levels.

    Objects enter at level 0; a hit promotes an object to the head of the
    next level up.  When a level overflows its byte quota, its tail demotes
    to the head of the level below; overflow at level 0 leaves the cache.
    """

    name = "S4LRU"

    def __init__(self, cache_size: int, n_levels: int = 4) -> None:
        super().__init__(cache_size)
        if n_levels < 1:
            raise ValueError("n_levels must be >= 1")
        self.n_levels = n_levels
        self._level_quota = cache_size // n_levels
        self._levels: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(n_levels)
        ]
        self._level_bytes = [0] * n_levels
        self._level_of: dict[int, int] = {}

    def _demote_overflow(self, level: int) -> None:
        """Cascade tail demotions until every level fits its quota."""
        for lvl in range(level, 0, -1):
            while self._level_bytes[lvl] > self._level_quota and self._levels[lvl]:
                obj, size = self._levels[lvl].popitem(last=False)
                self._level_bytes[lvl] -= size
                self._levels[lvl - 1][obj] = size
                self._level_bytes[lvl - 1] += size
                self._level_of[obj] = lvl - 1

    def _on_hit(self, request: Request) -> None:
        obj = request.obj
        lvl = self._level_of[obj]
        size = self._levels[lvl].pop(obj)
        self._level_bytes[lvl] -= size
        new_lvl = min(lvl + 1, self.n_levels - 1)
        self._levels[new_lvl][obj] = size
        self._level_bytes[new_lvl] += size
        self._level_of[obj] = new_lvl
        self._demote_overflow(new_lvl)

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._levels[0][request.obj] = request.size
        self._level_bytes[0] += request.size
        self._level_of[request.obj] = 0

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        lvl = self._level_of.pop(obj)
        size = self._levels[lvl].pop(obj)
        self._level_bytes[lvl] -= size

    def _select_victim(self, incoming: Request) -> int | None:
        # Evict from the lowest non-empty level's LRU tail.
        for lvl in range(self.n_levels):
            if self._levels[lvl]:
                return next(iter(self._levels[lvl]))
        return None

    def _reset_policy_state(self) -> None:
        self._levels = [OrderedDict() for _ in range(self.n_levels)]
        self._level_bytes = [0] * self.n_levels
        self._level_of.clear()
