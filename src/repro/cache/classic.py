"""Classic baseline policies: RND, LRU, LRU-K, LFU, LFUDA.

These are the simple end of the paper's Figure 6 comparison (plus RND and
LRU from Figure 1).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque

import numpy as np

from ..trace import Request
from .base import CachePolicy

__all__ = ["RandomCache", "LRUCache", "LRUKCache", "LFUCache", "LFUDACache"]


class RandomCache(CachePolicy):
    """Admit everything, evict a uniformly random resident object."""

    name = "RND"

    def __init__(self, cache_size: int, seed: int = 0) -> None:
        super().__init__(cache_size)
        self._rng = np.random.default_rng(seed)
        self._order: list[int] = []
        self._pos: dict[int, int] = {}

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._pos[request.obj] = len(self._order)
        self._order.append(request.obj)

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        # O(1) removal: swap with the last element.
        pos = self._pos.pop(obj)
        last = self._order.pop()
        if last != obj:
            self._order[pos] = last
            self._pos[last] = pos

    def _select_victim(self, incoming: Request) -> int | None:
        if not self._order:
            return None
        return self._order[int(self._rng.integers(0, len(self._order)))]

    def _reset_policy_state(self) -> None:
        self._order.clear()
        self._pos.clear()


class LRUCache(CachePolicy):
    """Least-recently-used eviction, admit-all."""

    name = "LRU"

    def __init__(self, cache_size: int) -> None:
        super().__init__(cache_size)
        self._lru: OrderedDict[int, None] = OrderedDict()

    def _on_hit(self, request: Request) -> None:
        self._lru.move_to_end(request.obj)

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._lru.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if not self._lru:
            return None
        return next(iter(self._lru))

    def _reset_policy_state(self) -> None:
        self._lru.clear()


class LRUKCache(CachePolicy):
    """LRU-K (O'Neil et al. 1993): evict the object whose K-th most recent
    reference is oldest; objects with fewer than K references rank lowest.

    Reference history is retained for a bounded set of non-resident objects,
    as the original algorithm requires.
    """

    name = "LRU-K"

    def __init__(self, cache_size: int, k: int = 2, history_size: int = 100_000) -> None:
        super().__init__(cache_size)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._history: OrderedDict[int, deque] = OrderedDict()
        self._history_size = history_size
        self._heap: list[tuple[float, int, int]] = []  # (kth_time, stamp, obj)
        self._stamp: dict[int, int] = {}
        self._counter = 0

    def _record(self, request: Request) -> float:
        hist = self._history.get(request.obj)
        if hist is None:
            hist = deque(maxlen=self.k)
            self._history[request.obj] = hist
        else:
            self._history.move_to_end(request.obj)
        hist.append(request.time)
        while len(self._history) > self._history_size:
            old_obj, _ = self._history.popitem(last=False)
            if old_obj in self._entries:
                # Keep history for residents; re-insert at the front.
                self._history[old_obj] = deque([request.time], maxlen=self.k)
                self._history.move_to_end(old_obj, last=False)
                break
        return hist[0] if len(hist) >= self.k else float("-inf")

    def _push(self, obj: int, kth_time: float) -> None:
        self._counter += 1
        self._stamp[obj] = self._counter
        heapq.heappush(self._heap, (kth_time, self._counter, obj))

    def _on_hit(self, request: Request) -> None:
        self._push(request.obj, self._record(request))

    def _on_miss_observed(self, request: Request) -> None:
        self._record(request)

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        hist = self._history[request.obj]
        kth = hist[0] if len(hist) >= self.k else float("-inf")
        self._push(request.obj, kth)

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._stamp.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        while self._heap:
            _, stamp, obj = self._heap[0]
            if obj in self._entries and self._stamp.get(obj) == stamp:
                return obj
            heapq.heappop(self._heap)
        return None

    def _reset_policy_state(self) -> None:
        self._history.clear()
        self._heap.clear()
        self._stamp.clear()
        self._counter = 0


class _AgedFrequencyCache(CachePolicy):
    """Shared machinery for LFU-style policies with a global age term.

    Priority of an object is ``age_offset + key(request, frequency)``; the
    aging offset is bumped to the victim's priority on eviction, which is
    the classic GreedyDual trick for O(log n) aging.
    """

    def __init__(self, cache_size: int) -> None:
        super().__init__(cache_size)
        self._age = 0.0
        self._freq: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._stamp: dict[int, int] = {}
        self._counter = 0

    def _key(self, request: Request, freq: int) -> float:
        raise NotImplementedError

    def _reprioritise(self, request: Request) -> None:
        freq = self._freq.get(request.obj, 0) + 1
        self._freq[request.obj] = freq
        prio = self._age + self._key(request, freq)
        self._prio[request.obj] = prio
        self._counter += 1
        self._stamp[request.obj] = self._counter
        heapq.heappush(self._heap, (prio, self._counter, request.obj))

    def _on_hit(self, request: Request) -> None:
        self._reprioritise(request)

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._reprioritise(request)

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._stamp.pop(obj, None)
        victim_prio = self._prio.pop(obj, None)
        if victim_prio is not None:
            self._age = max(self._age, victim_prio)
        self._freq.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        while self._heap:
            _, stamp, obj = self._heap[0]
            if obj in self._entries and self._stamp.get(obj) == stamp:
                return obj
            heapq.heappop(self._heap)
        return None

    def _reset_policy_state(self) -> None:
        self._age = 0.0
        self._freq.clear()
        self._prio.clear()
        self._heap.clear()
        self._stamp.clear()
        self._counter = 0


class LFUCache(_AgedFrequencyCache):
    """Plain least-frequently-used (no aging)."""

    name = "LFU"

    def _key(self, request: Request, freq: int) -> float:
        return float(freq)

    def _remove(self, obj: int) -> None:
        # Plain LFU keeps no dynamic aging: pop without bumping the age.
        CachePolicy._remove(self, obj)
        self._stamp.pop(obj, None)
        self._prio.pop(obj, None)
        self._freq.pop(obj, None)


class LFUDACache(_AgedFrequencyCache):
    """LFU with Dynamic Aging (Arlitt et al. 2000): priority = age + freq."""

    name = "LFUDA"

    def _key(self, request: Request, freq: int) -> float:
        return float(freq)
