"""LHD — Least Hit Density (Beckmann, Chen, Cidon, NSDI 2018).

LHD evicts the object with the lowest *hit density*: the probability of a
hit before eviction divided by the expected resource consumption (bytes ×
time) until then.  The original system estimates densities from per-class
age histograms of hits and evictions and evicts the lowest-density object
among a random sample.  This implementation keeps the same structure with
log-coarsened ages and size-octave classes.
"""

from __future__ import annotations

import numpy as np

from ..trace import Request
from .base import CachePolicy

__all__ = ["LHDCache"]

_MAX_AGE_BUCKETS = 32


def _age_bucket(age: int) -> int:
    if age <= 0:
        return 0
    return min(int(age).bit_length() - 1, _MAX_AGE_BUCKETS - 1)


class _ClassStats:
    """Hit/eviction age histograms and the derived density table."""

    __slots__ = ("hits", "evictions", "density")

    def __init__(self) -> None:
        self.hits = np.zeros(_MAX_AGE_BUCKETS, dtype=np.float64)
        self.evictions = np.zeros(_MAX_AGE_BUCKETS, dtype=np.float64)
        self.density = np.full(_MAX_AGE_BUCKETS, 1.0, dtype=np.float64)

    def recompute(self, ewma: float) -> None:
        """Rebuild the density-by-age table from the histograms.

        For each age a: the numerator is the probability of hitting at some
        age >= a, the denominator the expected remaining lifetime; their
        ratio is the classic LHD hit density (per byte factored in later).
        """
        events = self.hits + self.evictions
        total_tail = np.cumsum(events[::-1])[::-1]
        hit_tail = np.cumsum(self.hits[::-1])[::-1]
        # Expected remaining lifetime: sum over a' >= a of P(alive at a').
        with np.errstate(divide="ignore", invalid="ignore"):
            alive = np.where(total_tail > 0, total_tail, 1.0)
            lifetime = np.cumsum(alive[::-1])[::-1] / alive
            density = np.where(
                total_tail > 0, (hit_tail / alive) / np.maximum(lifetime, 1.0), 0.0
            )
        self.density = density
        # Age the histograms so densities track workload drift.
        self.hits *= ewma
        self.evictions *= ewma


class LHDCache(CachePolicy):
    """Sampled least-hit-density eviction, admit-all.

    Args:
        cache_size: capacity in bytes.
        sample_size: residents sampled per eviction (64 in the original).
        reconfigure_interval: requests between density-table rebuilds.
        ewma: histogram decay applied at each rebuild.
    """

    name = "LHD"

    def __init__(
        self,
        cache_size: int,
        sample_size: int = 64,
        reconfigure_interval: int = 20_000,
        ewma: float = 0.9,
        n_size_classes: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__(cache_size)
        self.sample_size = sample_size
        self.reconfigure_interval = reconfigure_interval
        self.ewma = ewma
        self.n_size_classes = n_size_classes
        self._rng = np.random.default_rng(seed)
        self._clock = 0
        self._classes = [_ClassStats() for _ in range(n_size_classes)]
        self._last_touch: dict[int, int] = {}
        self._class_of: dict[int, int] = {}
        self._order: list[int] = []
        self._pos: dict[int, int] = {}

    def _size_class(self, size: int) -> int:
        return min(max(int(size).bit_length() - 1, 0), self.n_size_classes - 1)

    def on_request(self, request: Request) -> bool:
        """Process one request; rebuilds density tables periodically."""
        self._clock += 1
        if self._clock % self.reconfigure_interval == 0:
            for stats in self._classes:
                stats.recompute(self.ewma)
        return super().on_request(request)

    def _density(self, obj: int) -> float:
        age = self._clock - self._last_touch[obj]
        bucket = _age_bucket(age)
        cls = self._class_of[obj]
        return self._classes[cls].density[bucket] / self._entries[obj]

    def _on_hit(self, request: Request) -> None:
        obj = request.obj
        age = self._clock - self._last_touch[obj]
        self._classes[self._class_of[obj]].hits[_age_bucket(age)] += 1.0
        self._last_touch[obj] = self._clock

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        obj = request.obj
        self._last_touch[obj] = self._clock
        self._class_of[obj] = self._size_class(request.size)
        self._pos[obj] = len(self._order)
        self._order.append(obj)

    def _remove(self, obj: int) -> None:
        age = self._clock - self._last_touch.get(obj, self._clock)
        cls = self._class_of.get(obj)
        if cls is not None:
            self._classes[cls].evictions[_age_bucket(age)] += 1.0
        super()._remove(obj)
        self._last_touch.pop(obj, None)
        self._class_of.pop(obj, None)
        pos = self._pos.pop(obj)
        last = self._order.pop()
        if last != obj:
            self._order[pos] = last
            self._pos[last] = pos

    def _select_victim(self, incoming: Request) -> int | None:
        n = len(self._order)
        if n == 0:
            return None
        if n <= self.sample_size:
            candidates = self._order
        else:
            idx = self._rng.integers(0, n, size=self.sample_size)
            candidates = [self._order[i] for i in idx]
        return min(candidates, key=self._density)

    def _reset_policy_state(self) -> None:
        self._clock = 0
        self._classes = [_ClassStats() for _ in range(self.n_size_classes)]
        self._last_touch.clear()
        self._class_of.clear()
        self._order.clear()
        self._pos.clear()
