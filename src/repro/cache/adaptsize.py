"""AdaptSize (Berger, Sitaraman, Harchol-Balter, NSDI 2017).

Probabilistic size-aware admission in front of LRU: a missed object is
admitted with probability ``exp(-size / c)``.  The parameter ``c`` is
re-tuned at a fixed cadence by evaluating candidate values against a
Markov/Che-style model of the recent request mix and picking the candidate
with the highest modelled *object* hit ratio — AdaptSize optimises OHR,
which is why it trades away BHR in the paper's Figure 6.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from ..trace import Request
from .base import CachePolicy

__all__ = ["AdaptSizeCache"]


def _modelled_ohr(
    counts: np.ndarray, sizes: np.ndarray, n_requests: int,
    cache_size: int, c: float,
) -> float:
    """Modelled OHR for admission parameter ``c`` on the observed mix.

    Uses the Che-style approximation: under Poisson arrivals with rate
    ``lambda_i`` and admission probability ``p_i = exp(-s_i/c)``, an
    object's stationary in-cache probability with characteristic time T is
    ``pi_i = p_i (e^{lambda_i T} - 1) / (1 + p_i (e^{lambda_i T} - 1))``.
    T is solved so total expected occupancy matches the cache size.
    """
    lam = counts / n_requests
    p_admit = np.exp(-sizes / c)

    def occupancy(T: float) -> tuple[float, np.ndarray]:
        with np.errstate(over="ignore"):
            grow = np.expm1(np.minimum(lam * T, 50.0))
        x = p_admit * grow
        pi = x / (1.0 + x)
        return float((sizes * pi).sum()), pi

    # If even T -> huge keeps occupancy under the cache size, everything fits.
    hi = 4.0 * n_requests
    occ_hi, pi_hi = occupancy(hi)
    if occ_hi <= cache_size:
        return float((lam * pi_hi).sum())
    lo = 0.0
    for _ in range(50):
        mid = (lo + hi) / 2.0
        occ, _ = occupancy(mid)
        if occ > cache_size:
            hi = mid
        else:
            lo = mid
    _, pi = occupancy(lo)
    return float((lam * pi).sum())


class AdaptSizeCache(CachePolicy):
    """Size-aware probabilistic admission with self-tuning ``c``.

    Args:
        cache_size: capacity in bytes.
        tuning_interval: requests between re-tunings of ``c``.
        n_candidates: size of the geometric candidate grid for ``c``.
        seed: RNG seed for the admission coin flips.
    """

    name = "AdaptSize"

    def __init__(
        self,
        cache_size: int,
        tuning_interval: int = 25_000,
        n_candidates: int = 16,
        seed: int = 0,
    ) -> None:
        super().__init__(cache_size)
        self.tuning_interval = tuning_interval
        self.n_candidates = n_candidates
        self._rng = np.random.default_rng(seed)
        self._c = float(cache_size) / 100.0  # starting point; re-tuned online
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._window_counts: dict[int, int] = {}
        self._window_sizes: dict[int, int] = {}
        self._window_requests = 0

    @property
    def c(self) -> float:
        """Current admission size threshold parameter."""
        return self._c

    def _observe(self, request: Request) -> None:
        self._window_counts[request.obj] = (
            self._window_counts.get(request.obj, 0) + 1
        )
        self._window_sizes[request.obj] = request.size
        self._window_requests += 1
        if self._window_requests >= self.tuning_interval:
            self._retune()

    def _retune(self) -> None:
        counts = np.array(list(self._window_counts.values()), dtype=np.float64)
        sizes = np.array(
            [self._window_sizes[o] for o in self._window_counts],
            dtype=np.float64,
        )
        n = self._window_requests
        mean_size = float(sizes.mean())
        candidates = mean_size * np.logspace(-2, 4, self.n_candidates)
        best_c, best_ohr = self._c, -1.0
        for c in candidates:
            ohr = _modelled_ohr(counts, sizes, n, self.cache_size, float(c))
            if ohr > best_ohr:
                best_ohr, best_c = ohr, float(c)
        self._c = best_c
        self._window_counts.clear()
        self._window_sizes.clear()
        self._window_requests = 0

    # -- CachePolicy hooks ---------------------------------------------------

    def _on_hit(self, request: Request) -> None:
        self._observe(request)
        self._lru.move_to_end(request.obj)

    def _on_miss_observed(self, request: Request) -> None:
        self._observe(request)

    def _admit(self, request: Request) -> bool:
        probability = math.exp(-request.size / self._c)
        return bool(self._rng.random() < probability)

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._lru.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if not self._lru:
            return None
        return next(iter(self._lru))

    def _reset_policy_state(self) -> None:
        self._lru.clear()
        self._window_counts.clear()
        self._window_sizes.clear()
        self._window_requests = 0
        self._c = float(self.cache_size) / 100.0
