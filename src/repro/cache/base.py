"""Cache policy interface and shared machinery.

Every policy manages a byte-budgeted object store and answers one question
per request: *was this a hit, and if not, do we admit (and who do we
evict)?*  Policies override the admission/eviction hooks; the bookkeeping
(resident set, byte accounting, hit counting) lives here so policy code
stays small — the paper makes a point of its whole LFO policy fitting in 50
simulator lines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..trace import Request

__all__ = ["CachePolicy"]


class CachePolicy(ABC):
    """Abstract cache with byte capacity, admission, and eviction.

    Subclasses implement :meth:`_on_hit`, :meth:`_admit` and
    :meth:`_select_victim`; the base class drives them from
    :meth:`on_request`.
    """

    #: Human-readable policy name (overridden per subclass).
    name = "abstract"

    def __init__(self, cache_size: int) -> None:
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.cache_size = int(cache_size)
        self.used_bytes = 0
        self.n_evictions = 0
        self._entries: dict[int, int] = {}  # obj -> size

    # -- public API ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes currently unoccupied."""
        return self.cache_size - self.used_bytes

    @property
    def supports_batched_scoring(self) -> bool:
        """Whether :func:`repro.sim.simulate` may use its micro-batching
        fast path for this policy (see :mod:`repro.sim.batched`).  Only
        model-driven policies with a static scorer opt in."""
        return False

    @property
    def n_objects(self) -> int:
        """Number of resident objects."""
        return len(self._entries)

    def contains(self, obj: int) -> bool:
        """True when the object is resident."""
        return obj in self._entries

    def on_request(self, request: Request) -> bool:
        """Process one request; returns True on a cache hit."""
        if request.obj in self._entries:
            self._on_hit(request)
            return True
        self._on_miss_observed(request)
        if request.size > self.cache_size:
            return False  # cannot possibly fit
        if not self._admit(request):
            return False
        if not self._evict_until_fits(request):
            return False  # policy refuses to evict: bypass instead
        self._insert(request)
        return False

    def _evict_until_fits(self, request: Request) -> bool:
        """Evict victims until ``request`` fits; True on success.

        When the policy refuses mid-plan (``_select_victim`` returns None
        with the object still not fitting), the incoming request is
        bypassed and every victim already removed is reinstated via
        :meth:`_restore` — a bypass must never shrink the resident set.
        """
        evicted: list[tuple[int, int]] = []
        while self.used_bytes + request.size > self.cache_size:
            victim = self._select_victim(request)
            if victim is None:
                for obj, size in reversed(evicted):
                    self._restore(obj, size, request)
                return False
            evicted.append((victim, self._entries[victim]))
            self._remove(victim)
        # Only completed plans count: restored victims were never evicted.
        self.n_evictions += len(evicted)
        return True

    def reset(self) -> None:
        """Clear all cache state."""
        self.used_bytes = 0
        self.n_evictions = 0
        self._entries.clear()
        self._reset_policy_state()

    # -- hooks for subclasses ----------------------------------------------

    def _on_hit(self, request: Request) -> None:
        """Update recency/frequency state on a hit (default: nothing)."""

    def _on_miss_observed(self, request: Request) -> None:
        """Observe a miss before the admission question (default: nothing).

        Useful for policies that track history of non-resident objects
        (LRU-K, TinyLFU, RL agents)."""

    def _admit(self, request: Request) -> bool:
        """Admission decision for a missed object (default: admit)."""
        return True

    @abstractmethod
    def _select_victim(self, incoming: Request) -> int | None:
        """Pick a resident object id to evict, or None to bypass instead."""

    def _insert(self, request: Request) -> None:
        """Insert an admitted object (subclasses extend for their state)."""
        self._entries[request.obj] = request.size
        self.used_bytes += request.size

    def _remove(self, obj: int) -> None:
        """Remove a resident object (subclasses extend for their state)."""
        size = self._entries.pop(obj)
        self.used_bytes -= size

    def _restore(self, obj: int, size: int, incoming: Request) -> None:
        """Reinstate a victim removed by an aborted eviction plan.

        The default rebuilds the entry through :meth:`_insert` with a
        synthesized request at the incoming request's timestamp, so policy
        metadata is refreshed (e.g. the object returns at the MRU end, and
        cost-aware priorities fall back to ``cost == size``) rather than
        preserved exactly; subclasses with richer state can override for a
        closer undo.
        """
        self._insert(Request(incoming.time, obj, size))

    def _reset_policy_state(self) -> None:
        """Clear subclass state on :meth:`reset` (default: nothing)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.cache_size}, "
            f"used={self.used_bytes}, objects={len(self._entries)})"
        )
