"""Cache policy interface and shared machinery.

Every policy manages a byte-budgeted object store and answers one question
per request: *was this a hit, and if not, do we admit (and who do we
evict)?*  Policies override the admission/eviction hooks; the bookkeeping
(resident set, byte accounting, hit counting) lives here so policy code
stays small — the paper makes a point of its whole LFO policy fitting in 50
simulator lines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..trace import Request

__all__ = ["CachePolicy"]


class CachePolicy(ABC):
    """Abstract cache with byte capacity, admission, and eviction.

    Subclasses implement :meth:`_on_hit`, :meth:`_admit` and
    :meth:`_select_victim`; the base class drives them from
    :meth:`on_request`.
    """

    #: Human-readable policy name (overridden per subclass).
    name = "abstract"

    def __init__(self, cache_size: int) -> None:
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.cache_size = int(cache_size)
        self.used_bytes = 0
        self.n_evictions = 0
        self._entries: dict[int, int] = {}  # obj -> size
        self._costs: dict[int, float] = {}  # obj -> last retrieval cost

    # -- public API ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Bytes currently unoccupied."""
        return self.cache_size - self.used_bytes

    @property
    def supports_batched_scoring(self) -> bool:
        """Whether :func:`repro.sim.simulate` may use its micro-batching
        fast path for this policy (see :mod:`repro.sim.batched`).  Only
        model-driven policies with a static scorer opt in."""
        return False

    @property
    def n_objects(self) -> int:
        """Number of resident objects."""
        return len(self._entries)

    def contains(self, obj: int) -> bool:
        """True when the object is resident."""
        return obj in self._entries

    def entry_cost(self, obj: int) -> float | None:
        """Latest observed retrieval cost of a resident object, or None."""
        return self._costs.get(obj)

    def on_request(self, request: Request) -> bool:
        """Process one request; returns True on a cache hit."""
        if request.obj in self._entries:
            self._costs[request.obj] = request.cost
            self._on_hit(request)
            return True
        self._on_miss_observed(request)
        if request.size > self.cache_size:
            return False  # cannot possibly fit
        if not self._admit(request):
            return False
        if not self._evict_until_fits(request):
            return False  # policy refuses to evict: bypass instead
        self._insert(request)
        return False

    def _evict_until_fits(self, request: Request) -> bool:
        """Evict victims until ``request`` fits; True on success.

        Victims come from :meth:`_select_victims`, which may return a
        multi-victim *plan* (e.g. one sampled-and-scored candidate batch
        covering several evictions); the plan is consumed in order and
        only as far as needed, and a fresh plan is requested when it runs
        out.  When the policy refuses (an empty plan with the object still
        not fitting), the incoming request is bypassed and every victim
        already removed is reinstated via :meth:`_restore`, original
        retrieval cost included — a bypass must never shrink the resident
        set or corrupt cost-aware priorities.
        """
        evicted: list[tuple[int, int, float]] = []
        while self.used_bytes + request.size > self.cache_size:
            progressed = False
            for victim in self._select_victims(request):
                if self.used_bytes + request.size <= self.cache_size:
                    break
                size = self._entries.get(victim)
                if size is None:
                    continue  # plan entry went stale mid-plan
                cost = self._costs.get(victim, float(size))
                evicted.append((victim, size, cost))
                self._remove(victim)
                progressed = True
            if not progressed:
                for obj, size, cost in reversed(evicted):
                    self._restore(obj, size, request, cost)
                return False
        # Only completed plans count: restored victims were never evicted.
        self.n_evictions += len(evicted)
        return True

    def reset(self) -> None:
        """Clear all cache state."""
        self.used_bytes = 0
        self.n_evictions = 0
        self._entries.clear()
        self._costs.clear()
        self._reset_policy_state()

    # -- hooks for subclasses ----------------------------------------------

    def _on_hit(self, request: Request) -> None:
        """Update recency/frequency state on a hit (default: nothing)."""

    def _on_miss_observed(self, request: Request) -> None:
        """Observe a miss before the admission question (default: nothing).

        Useful for policies that track history of non-resident objects
        (LRU-K, TinyLFU, RL agents)."""

    def _admit(self, request: Request) -> bool:
        """Admission decision for a missed object (default: admit)."""
        return True

    @abstractmethod
    def _select_victim(self, incoming: Request) -> int | None:
        """Pick a resident object id to evict, or None to bypass instead."""

    def _select_victims(self, incoming: Request) -> list[int]:
        """Victim *plan* for one :meth:`_evict_until_fits` round.

        The default wraps :meth:`_select_victim` (one victim per round;
        an empty list means "refuse: bypass the incoming request").
        Policies that amortise victim selection — e.g. sampled eviction,
        which scores a whole candidate batch in one predictor call —
        override this to return several victims in eviction order; the
        driver consumes only as many as the incoming request needs.
        """
        victim = self._select_victim(incoming)
        return [] if victim is None else [victim]

    def _insert(self, request: Request) -> None:
        """Insert an admitted object (subclasses extend for their state)."""
        self._entries[request.obj] = request.size
        self.used_bytes += request.size
        self._costs[request.obj] = request.cost

    def _remove(self, obj: int) -> None:
        """Remove a resident object (subclasses extend for their state)."""
        size = self._entries.pop(obj)
        self.used_bytes -= size
        self._costs.pop(obj, None)

    def _restore(
        self,
        obj: int,
        size: int,
        incoming: Request,
        cost: float | None = None,
    ) -> None:
        """Reinstate a victim removed by an aborted eviction plan.

        The default rebuilds the entry through :meth:`_insert` with a
        synthesized request at the incoming request's timestamp carrying
        the victim's true retrieval cost (``cost``; falls back to
        ``cost == size`` when unknown), so policy metadata is refreshed
        (e.g. the object returns at the MRU end) without corrupting
        cost-aware priorities like GDSF's ``freq * cost / size``;
        subclasses with richer state can override for a closer undo.
        """
        self._insert(
            Request(
                incoming.time,
                obj,
                size,
                float(size) if cost is None else cost,
            )
        )

    def _reset_policy_state(self) -> None:
        """Clear subclass state on :meth:`reset` (default: nothing)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.cache_size}, "
            f"used={self.used_bytes}, objects={len(self._entries)})"
        )
