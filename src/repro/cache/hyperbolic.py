"""Hyperbolic caching (Blankstein et al., USENIX ATC 2017).

Priority of an object is ``frequency / time-in-cache`` — a hyperbolic decay
that needs no queue maintenance.  Eviction samples a handful of resident
objects and evicts the lowest-priority one, as in the original system.
"""

from __future__ import annotations

import numpy as np

from ..trace import Request
from .base import CachePolicy

__all__ = ["HyperbolicCache"]


class HyperbolicCache(CachePolicy):
    """Sampling-based hyperbolic eviction, admit-all.

    Args:
        cache_size: capacity in bytes.
        sample_size: number of residents sampled per eviction (64 in the
            paper's implementation).
        size_aware: when True, priority is ``freq / (age * size)``, the
            cost-aware variant the authors suggest for variable sizes.
    """

    name = "Hyperbolic"

    def __init__(
        self,
        cache_size: int,
        sample_size: int = 64,
        size_aware: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(cache_size)
        self.sample_size = sample_size
        self.size_aware = size_aware
        self._rng = np.random.default_rng(seed)
        self._clock = 0  # logical time: one tick per request observed
        self._freq: dict[int, int] = {}
        self._entered: dict[int, int] = {}
        self._order: list[int] = []
        self._pos: dict[int, int] = {}

    def on_request(self, request: Request) -> bool:
        """Process one request, advancing the logical clock."""
        self._clock += 1
        return super().on_request(request)

    def _priority(self, obj: int) -> float:
        age = max(1, self._clock - self._entered[obj])
        prio = self._freq[obj] / age
        if self.size_aware:
            prio /= self._entries[obj]
        return prio

    def _on_hit(self, request: Request) -> None:
        self._freq[request.obj] += 1

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._freq[request.obj] = self._freq.get(request.obj, 0) + 1
        self._entered[request.obj] = self._clock
        self._pos[request.obj] = len(self._order)
        self._order.append(request.obj)

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._freq.pop(obj, None)
        self._entered.pop(obj, None)
        pos = self._pos.pop(obj)
        last = self._order.pop()
        if last != obj:
            self._order[pos] = last
            self._pos[last] = pos

    def _select_victim(self, incoming: Request) -> int | None:
        n = len(self._order)
        if n == 0:
            return None
        if n <= self.sample_size:
            candidates = self._order
        else:
            idx = self._rng.integers(0, n, size=self.sample_size)
            candidates = [self._order[i] for i in idx]
        return min(candidates, key=self._priority)

    def _reset_policy_state(self) -> None:
        self._clock = 0
        self._freq.clear()
        self._entered.clear()
        self._order.clear()
        self._pos.clear()
