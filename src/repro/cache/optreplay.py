"""Replaying OPT's offline decisions inside a real cache.

The paper's Section 5 observes that near-perfect *prediction* of OPT does
not automatically give near-optimal *caching*: admission mistakes have
knock-on effects through eviction.  This policy lets us study exactly that
question in isolation — admit precisely what OPT admits, with a choice of
eviction rules — and also provides the OPT bar of Figure 6 when driven with
the true decisions.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..trace import Request, Trace
from .base import CachePolicy

__all__ = ["OptReplayCache"]


class OptReplayCache(CachePolicy):
    """Admit according to a precomputed per-request decision array.

    The policy is positional: it must see the exact trace the decisions were
    computed for, in order.  Eviction is either oracle farthest-in-future
    ("belady") or LRU ("lru").

    Args:
        cache_size: capacity in bytes.
        decisions: per-request booleans (True = OPT caches this request).
        trace: the trace the decisions belong to (for the next-use oracle).
        eviction: "belady" or "lru".
    """

    name = "OPT-replay"

    def __init__(
        self,
        cache_size: int,
        decisions: Sequence[bool] | np.ndarray,
        trace: Trace,
        eviction: str = "belady",
    ) -> None:
        super().__init__(cache_size)
        if eviction not in ("belady", "lru"):
            raise ValueError("eviction must be 'belady' or 'lru'")
        self.decisions = np.asarray(decisions, dtype=bool)
        if len(self.decisions) != len(trace):
            raise ValueError("decisions must align with the trace")
        self.eviction = eviction
        self._next_use = trace.next_occurrence()
        self._cursor = -1
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._heap: list[tuple[float, int]] = []  # (-next_use, obj)
        self._next_of: dict[int, float] = {}

    def on_request(self, request: Request) -> bool:
        """Process the next request of the aligned trace."""
        self._cursor += 1
        if self._cursor >= len(self.decisions):
            raise IndexError("more requests than precomputed decisions")
        return super().on_request(request)

    def _record_next_use(self, obj: int) -> None:
        nxt = self._next_use[self._cursor]
        next_use = float(nxt) if nxt >= 0 else float("inf")
        self._next_of[obj] = next_use
        heapq.heappush(self._heap, (-next_use, obj))

    def _on_hit(self, request: Request) -> None:
        self._lru.move_to_end(request.obj)
        self._record_next_use(request.obj)
        if not self.decisions[self._cursor]:
            # OPT drops the object after serving this hit (the paper notes a
            # hit may evict the hit object, matching OPT's behaviour).
            self._remove(request.obj)

    def _admit(self, request: Request) -> bool:
        return bool(self.decisions[self._cursor])

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None
        self._record_next_use(request.obj)

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._lru.pop(obj, None)
        self._next_of.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if self.eviction == "lru":
            if not self._lru:
                return None
            return next(iter(self._lru))
        while self._heap:
            neg_use, obj = self._heap[0]
            if obj in self._entries and self._next_of.get(obj) == -neg_use:
                return obj
            heapq.heappop(self._heap)
        return None

    def _reset_policy_state(self) -> None:
        self._cursor = -1
        self._lru.clear()
        self._heap.clear()
        self._next_of.clear()
