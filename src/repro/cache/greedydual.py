"""Greedy-Dual family: GDSF and GD-Wheel.

GDSF (Cherkasova 1998) is the heuristic that beats RL-based caching in the
paper's Figure 1.  GD-Wheel (Li & Cox 2015) approximates GreedyDual aging
with cost wheels to avoid the priority queue; both appear in Figure 6.
"""

from __future__ import annotations

import heapq

from ..trace import Request
from .base import CachePolicy
from .classic import _AgedFrequencyCache

__all__ = ["GDSFCache", "GDWheelCache"]


class GDSFCache(_AgedFrequencyCache):
    """Greedy-Dual-Size-Frequency: priority = age + freq * cost / size."""

    name = "GDSF"

    def _key(self, request: Request, freq: int) -> float:
        return freq * request.cost / request.size


class GDWheelCache(CachePolicy):
    """GD-Wheel: GreedyDual(-Size) with hierarchical cost wheels.

    Priorities ``H = L + cost/size`` are quantised into wheel slots; the
    clock hand advances to the next occupied slot to find a victim, which
    implements the aging term ``L`` in O(1) amortised instead of a heap.
    Two wheel levels carry overflow, as in the original design.
    """

    name = "GD-Wheel"

    def __init__(
        self,
        cache_size: int,
        n_slots: int = 1024,
        slot_granularity: float | None = None,
    ) -> None:
        super().__init__(cache_size)
        self.n_slots = n_slots
        self._granularity = slot_granularity
        self._hand = 0
        self._rounds = 0  # completed wheel revolutions (level-2 wheel)
        self._slots: list[dict[int, None]] = [dict() for _ in range(n_slots)]
        self._overflow: dict[int, float] = {}  # obj -> absolute priority
        self._slot_of: dict[int, int] = {}
        self._freq: dict[int, int] = {}

    # -- priority plumbing ---------------------------------------------------

    def _auto_granularity(self, request: Request) -> float:
        # First-touch calibration: one wheel revolution spans ~4x the
        # incoming cost density, so typical priorities land within a turn.
        return max(request.cost / request.size, 1e-9) * 4.0 / self.n_slots

    def _priority(self, request: Request) -> float:
        freq = self._freq.get(request.obj, 0) + 1
        self._freq[request.obj] = freq
        base = (self._rounds * self.n_slots + self._hand) * self._granularity
        return base + freq * request.cost / request.size

    def _place(self, obj: int, priority: float) -> None:
        slot_abs = int(priority / self._granularity)
        current_abs = self._rounds * self.n_slots + self._hand
        if slot_abs - current_abs >= self.n_slots:
            self._overflow[obj] = priority
            self._slot_of[obj] = -1
            return
        slot = slot_abs % self.n_slots
        self._slots[slot][obj] = None
        self._slot_of[obj] = slot

    def _unplace(self, obj: int) -> None:
        slot = self._slot_of.pop(obj, None)
        if slot is None:
            return
        if slot == -1:
            self._overflow.pop(obj, None)
        else:
            self._slots[slot].pop(obj, None)

    # -- CachePolicy hooks ---------------------------------------------------

    def _on_hit(self, request: Request) -> None:
        self._unplace(request.obj)
        self._place(request.obj, self._priority(request))

    def _insert(self, request: Request) -> None:
        if self._granularity is None:
            self._granularity = self._auto_granularity(request)
        super()._insert(request)
        self._place(request.obj, self._priority(request))

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._unplace(obj)
        self._freq.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if not self._entries:
            return None
        for _ in range(self.n_slots + 1):
            slot = self._slots[self._hand]
            if slot:
                return next(iter(slot))
            self._hand += 1
            if self._hand == self.n_slots:
                self._hand = 0
                self._rounds += 1
                self._respill_overflow()
        # All wheel slots empty: everything sits in overflow; evict the
        # overflow minimum directly.
        if self._overflow:
            return min(self._overflow, key=self._overflow.get)
        return None

    def _respill_overflow(self) -> None:
        """After a revolution, pull overflow entries whose priority now fits."""
        horizon = (self._rounds + 1) * self.n_slots * self._granularity
        ready = [o for o, p in self._overflow.items() if p < horizon]
        for obj in ready:
            priority = self._overflow.pop(obj)
            self._slot_of.pop(obj, None)
            self._place(obj, priority)

    def _reset_policy_state(self) -> None:
        self._hand = 0
        self._rounds = 0
        self._slots = [dict() for _ in range(self.n_slots)]
        self._overflow.clear()
        self._slot_of.clear()
        self._freq.clear()
