"""RLC — a model-free reinforcement-learning admission policy.

This is the baseline behind the paper's Figure 1 (taken from the HotNets'17
"Harvesting Randomness" line of work [48]): a tabular Q-learning agent
decides admit/bypass per miss, on top of LRU eviction.

The whole point of including it is to reproduce the *failure mode* the paper
describes: rewards (cache hits) arrive long after the admission decision
that caused them, so the delayed, sparse credit assignment leaves the agent
hovering around the performance of random admission and LRU, well below a
simple size-aware heuristic like GDSF.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..trace import Request
from .base import CachePolicy

__all__ = ["RLCache"]

_ADMIT = 1
_BYPASS = 0


def _bucket_log2(value: float, max_bucket: int) -> int:
    if value < 1:
        return 0
    return min(int(value).bit_length() - 1, max_bucket - 1)


class RLCache(CachePolicy):
    """Tabular Q-learning admission over LRU eviction.

    State: (log2 size bucket, log2 time-since-last-request bucket).
    Action: admit or bypass on each miss.
    Reward: +1 delivered when an admitted object is requested again while
    still resident; 0 when it was evicted first or bypassed.  The reward is
    credited to the state-action pair of the *admission-time* decision —
    i.e. the delayed-feedback structure the paper identifies as the root
    cause of RL's trouble with caching.
    """

    name = "RLC"

    def __init__(
        self,
        cache_size: int,
        epsilon: float = 0.1,
        learning_rate: float = 0.1,
        discount: float = 0.95,
        n_size_buckets: int = 24,
        n_gap_buckets: int = 24,
        seed: int = 0,
    ) -> None:
        super().__init__(cache_size)
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self.discount = discount
        self.n_size_buckets = n_size_buckets
        self.n_gap_buckets = n_gap_buckets
        self._rng = np.random.default_rng(seed)
        self._q = np.zeros((n_size_buckets, n_gap_buckets, 2), dtype=np.float64)
        self._lru: OrderedDict[int, None] = OrderedDict()
        self._clock = 0
        self._last_seen: dict[int, int] = {}
        # Pending decisions awaiting their (possibly never-arriving) reward:
        # obj -> (state, action)
        self._pending: dict[int, tuple[tuple[int, int], int]] = {}

    # -- RL plumbing ---------------------------------------------------------

    def _state(self, request: Request) -> tuple[int, int]:
        gap = self._clock - self._last_seen.get(request.obj, -(2**self.n_gap_buckets))
        return (
            _bucket_log2(request.size, self.n_size_buckets),
            _bucket_log2(gap, self.n_gap_buckets),
        )

    def _learn(self, obj: int, reward: float, next_state: tuple[int, int]) -> None:
        pending = self._pending.pop(obj, None)
        if pending is None:
            return
        state, action = pending
        target = reward + self.discount * float(self._q[next_state].max())
        self._q[state][action] += self.learning_rate * (
            target - self._q[state][action]
        )

    # -- CachePolicy hooks ---------------------------------------------------

    def on_request(self, request: Request) -> bool:
        """Process one request, advancing the logical clock."""
        self._clock += 1
        return super().on_request(request)

    def _on_hit(self, request: Request) -> None:
        # The admission that kept this object resident finally pays off.
        self._learn(request.obj, 1.0, self._state(request))
        self._last_seen[request.obj] = self._clock
        self._lru.move_to_end(request.obj)

    def _on_miss_observed(self, request: Request) -> None:
        # A miss on a previously-decided object: the earlier decision earned
        # nothing (bypassed, or admitted but evicted before reuse).
        self._learn(request.obj, 0.0, self._state(request))

    def _admit(self, request: Request) -> bool:
        state = self._state(request)
        if self._rng.random() < self.epsilon:
            action = int(self._rng.integers(0, 2))
        else:
            action = int(np.argmax(self._q[state]))
        self._pending[request.obj] = (state, action)
        self._last_seen[request.obj] = self._clock
        return action == _ADMIT

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._lru.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if not self._lru:
            return None
        return next(iter(self._lru))

    def _reset_policy_state(self) -> None:
        self._q.fill(0.0)
        self._lru.clear()
        self._clock = 0
        self._last_seen.clear()
        self._pending.clear()
