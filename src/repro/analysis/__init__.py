"""Static analysis for the repo's own invariants (``lfo lint``).

The production claims this codebase makes — deterministic relabeling,
lock-free request path, bounded-cardinality observability — are invariants
of the *source*, so they are enforced by an AST-level checker rather than
review comments.  The framework is self-contained (stdlib ``ast`` only):

* :class:`Rule` — visitor-based plugin API; each rule owns a stable
  ``rule_id`` used by ``--select`` and suppressions;
* :func:`run_analysis` — walk a tree, run the (selected) suite, return an
  :class:`AnalysisReport`;
* :func:`check_source` — run the suite over one source string (tests);
* :func:`render_text` / :func:`render_json` — reporters;
* ``# lint: ignore[rule-id]`` anywhere in a file suppresses that rule for
  the whole file (always pair it with a justification comment).

The built-in suite lives in :mod:`repro.analysis.rules`; see
``docs/architecture.md`` ("Static analysis & invariants") for the rule
catalogue.
"""

from __future__ import annotations

from .base import FileContext, Rule, Violation
from .engine import AnalysisReport, check_source, iter_python_files, run_analysis
from .report import render_json, render_text
from .rules import ALL_RULES, all_rules, rule_ids

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "check_source",
    "iter_python_files",
    "render_json",
    "render_text",
    "rule_ids",
    "run_analysis",
]
