"""Static analysis for the repo's own invariants (``lfo lint``).

The production claims this codebase makes — deterministic relabeling,
lock-free request path, bounded-cardinality observability — are invariants
of the *source*, so they are enforced by an AST-level checker rather than
review comments.  The framework is self-contained (stdlib ``ast`` only):

* :class:`Rule` — visitor-based plugin API; each rule owns a stable
  ``rule_id`` used by ``--select`` and suppressions;
* :class:`ProjectRule` — whole-program rules (``lfo lint --deep``) that
  consume one :class:`~repro.analysis.project.ProjectModel` — repo-wide
  symbol table, import/call graph, dataflow effect summaries;
* :func:`run_analysis` / :func:`run_deep_analysis` — walk a tree, run the
  (selected) suite(s), return an :class:`AnalysisReport`;
* :func:`check_source` / :func:`check_project_sources` — fixture entry
  points over in-memory sources (tests);
* :func:`render_text` / :func:`render_json` / :func:`render_sarif` —
  reporters;
* :class:`Baseline` — committed accepted-findings file applied by the
  deep tier;
* ``# lint: ignore[rule-id]`` anywhere in a file suppresses that rule for
  the whole file; ``# lint: ignore-next-line[rule-id]`` suppresses it on
  the next line only (always pair either with a justification comment).

The built-in suite lives in :mod:`repro.analysis.rules`; see
``docs/architecture.md`` ("Static analysis & invariants") for the rule
catalogue.
"""

from __future__ import annotations

from .base import FileContext, ProjectRule, Rule, Violation
from .engine import (
    AnalysisReport,
    Baseline,
    check_project_sources,
    check_source,
    iter_python_files,
    run_analysis,
    run_deep_analysis,
)
from .metrics import (
    collect_metric_surface,
    render_metrics_json,
    render_metrics_markdown,
)
from .project import ProjectModel
from .report import render_json, render_sarif, render_text
from .rules import (
    ALL_RULES,
    PROJECT_RULES,
    all_project_rules,
    all_rules,
    project_rule_ids,
    rule_ids,
)

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Baseline",
    "FileContext",
    "PROJECT_RULES",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_project_rules",
    "all_rules",
    "check_project_sources",
    "check_source",
    "collect_metric_surface",
    "iter_python_files",
    "project_rule_ids",
    "render_json",
    "render_metrics_json",
    "render_metrics_markdown",
    "render_sarif",
    "render_text",
    "rule_ids",
    "run_analysis",
    "run_deep_analysis",
]
