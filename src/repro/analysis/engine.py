"""The analysis engine: file discovery, rule dispatch, suppression.

:func:`run_analysis` walks a set of files/directories, parses each Python
file once, hands the AST to every selected rule that claims the module,
and returns an :class:`AnalysisReport`.  Module names are derived from
paths (``src/repro/...`` loses the ``src/`` prefix) so rule scoping works
on dotted names regardless of where the tree is checked out.

:func:`run_deep_analysis` is the whole-program tier (``lfo lint --deep``):
it builds one :class:`~repro.analysis.project.ProjectModel` (reusing the
parsed per-file contexts, optionally from the on-disk model cache), runs
the per-file suite over those contexts *and* every
:class:`~repro.analysis.base.ProjectRule` over the model, then applies
suppressions and an optional :class:`Baseline` of accepted findings.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .base import FileContext, Rule, Violation
from .rules import (
    all_project_rules,
    all_rules,
    project_rule_ids,
    rule_ids,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "check_project_sources",
    "check_source",
    "iter_python_files",
    "run_analysis",
    "run_deep_analysis",
    "split_select",
]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".venv", "venv", "build", "dist", ".mypy_cache",
     ".ruff_cache", ".pytest_cache", "node_modules"}
)

#: Default roots checked when the CLI is given no paths, relative to cwd.
DEFAULT_ROOTS = ("src", "benchmarks", "examples")


@dataclass
class AnalysisReport:
    """Everything one run produced, ready for a reporter."""

    violations: list[Violation]
    files_checked: int
    rule_ids: list[str]
    parse_errors: list[Violation] = field(default_factory=list)
    #: Findings matched (and silenced) by the committed baseline; SARIF
    #: still carries them with an external suppression marker.
    suppressed: list[Violation] = field(default_factory=list)
    duration_seconds: float = 0.0
    #: Whether the whole-program tier ran.
    deep: bool = False
    #: Whether the project model came from the on-disk cache unchanged.
    model_cached: bool = False
    #: rule id -> one-line summary (feeds the SARIF rule catalogue).
    rule_meta: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


@dataclass(frozen=True)
class Baseline:
    """Accepted findings, matched on ``(rule id, posix path)``.

    Deliberately line-insensitive: edits above a baselined finding must
    not resurrect it, while any *new* rule/file pairing still fails the
    run.  Tightening is monotone — fixing the last finding of a pair
    makes the entry dead weight that ``--write-baseline`` drops.
    """

    entries: frozenset[tuple[str, str]]

    @classmethod
    def load(cls, path: str | Path) -> "Baseline | None":
        """Read a baseline file; None when it does not exist."""
        file = Path(path)
        if not file.is_file():
            return None
        payload = json.loads(file.read_text(encoding="utf-8"))
        return cls(
            entries=frozenset(
                (entry["rule"], entry["path"])
                for entry in payload.get("entries", [])
            )
        )

    def matches(self, violation: Violation) -> bool:
        key = (violation.rule_id, violation.path.replace("\\", "/"))
        return key in self.entries

    @staticmethod
    def render(violations: Sequence[Violation]) -> str:
        """Serialise ``violations`` as a fresh baseline document."""
        entries = sorted(
            {(v.rule_id, v.path.replace("\\", "/")) for v in violations}
        )
        return json.dumps(
            {
                "version": 1,
                "entries": [
                    {"rule": rule, "path": path} for rule, path in entries
                ],
            },
            indent=2,
        ) + "\n"


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through directly)."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate


def module_name_for(path: Path, root: Path | None = None) -> str:
    """Dotted module name for ``path`` (``src/`` layout aware)."""
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        relative = resolved.relative_to(base)
    except ValueError:
        relative = Path(resolved.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or resolved.stem


def split_select(
    select: list[str] | None,
) -> tuple[list[str] | None, list[str] | None]:
    """Partition ``--select`` ids into (per-file ids, project ids).

    Raises ValueError on ids known to neither tier; (None, None) when no
    selection was given (meaning: run everything).
    """
    if select is None:
        return None, None
    file_known = set(rule_ids())
    project_known = set(project_rule_ids())
    unknown = sorted(set(select) - file_known - project_known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)}; known: "
            f"{', '.join(sorted(file_known | project_known))}"
        )
    return (
        [s for s in select if s in file_known],
        [s for s in select if s in project_known],
    )


def run_analysis(
    paths: Sequence[str | Path] | None = None,
    *,
    select: list[str] | None = None,
    root: str | Path | None = None,
) -> AnalysisReport:
    """Run the (selected) per-file rule suite over ``paths``.

    ``paths`` defaults to the ``src``/``benchmarks``/``examples`` roots
    that exist under ``root`` (itself defaulting to the current working
    directory).  Violations are sorted by location; file-wide
    (``# lint: ignore[rule-id]``) and line-scoped
    (``# lint: ignore-next-line[rule-id]``) suppressions are applied.
    """
    start = time.perf_counter()
    base = Path(root) if root is not None else Path.cwd()
    if paths is None:
        paths = [base / name for name in DEFAULT_ROOTS if (base / name).is_dir()]
    rules = all_rules(select)
    contexts: dict[str, FileContext] = {}
    violations: list[Violation] = []
    parse_errors: list[Violation] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        source = path.read_text(encoding="utf-8")
        display = _display_path(path, base)
        try:
            ctx = FileContext.from_source(
                source, path=display, module=module_name_for(path, base)
            )
        except SyntaxError as exc:
            parse_errors.append(
                Violation(
                    rule_id="parse-error",
                    path=display,
                    line=exc.lineno or 0,
                    col=(exc.offset or 0),
                    message=f"could not parse file: {exc.msg}",
                )
            )
            continue
        contexts[ctx.path] = ctx
        violations.extend(_check_file(ctx, rules))
    for rule in rules:
        violations.extend(rule.finish())
    violations = _apply_suppressions(violations, contexts)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return AnalysisReport(
        violations=violations,
        files_checked=files_checked,
        rule_ids=[rule.rule_id for rule in rules],
        parse_errors=parse_errors,
        duration_seconds=time.perf_counter() - start,
        rule_meta={rule.rule_id: rule.summary for rule in rules},
    )


def run_deep_analysis(
    paths: Sequence[str | Path] | None = None,
    *,
    select: list[str] | None = None,
    root: str | Path | None = None,
    baseline: Baseline | None = None,
    model_cache: str | Path | None = None,
) -> AnalysisReport:
    """Run the per-file suite *and* the whole-program tier.

    The :class:`~repro.analysis.project.ProjectModel` is built once (or
    loaded from ``model_cache`` when no file changed) and its parsed
    contexts are reused for the per-file pass, so ``--deep`` costs one
    parse of the tree, not two.  ``baseline`` entries silence matching
    findings into :attr:`AnalysisReport.suppressed`.
    """
    from .project import ProjectModel

    start = time.perf_counter()
    file_select, project_select = split_select(select)
    model = ProjectModel.load_or_build(
        paths, root=root, cache_path=model_cache
    )
    rules = all_rules(file_select)
    project_rules = all_project_rules(project_select)
    violations: list[Violation] = []
    for ctx in model.contexts.values():
        violations.extend(_check_file(ctx, rules))
    for rule in rules:
        violations.extend(rule.finish())
    for project_rule in project_rules:
        violations.extend(project_rule.check_project(model))
    contexts = {ctx.path: ctx for ctx in model.contexts.values()}
    violations = _apply_suppressions(violations, contexts)
    suppressed: list[Violation] = []
    if baseline is not None:
        kept: list[Violation] = []
        for violation in violations:
            if baseline.matches(violation):
                suppressed.append(violation)
            else:
                kept.append(violation)
        violations = kept
    order = lambda v: (v.path, v.line, v.col, v.rule_id)  # noqa: E731
    violations.sort(key=order)
    suppressed.sort(key=order)
    all_checked = rules + project_rules
    return AnalysisReport(
        violations=violations,
        files_checked=len(model.contexts) + len(model.parse_errors),
        rule_ids=[rule.rule_id for rule in all_checked],
        parse_errors=list(model.parse_errors),
        suppressed=suppressed,
        duration_seconds=time.perf_counter() - start,
        deep=True,
        model_cached=model.from_cache,
        rule_meta={rule.rule_id: rule.summary for rule in all_checked},
    )


def check_source(
    source: str,
    *,
    module: str = "module",
    path: str = "<string>",
    select: list[str] | None = None,
) -> list[Violation]:
    """Run per-file rules over one source string (test-fixture entry)."""
    ctx = FileContext.from_source(source, path=path, module=module)
    rules = all_rules(select)
    violations = _check_file(ctx, rules)
    for rule in rules:
        violations.extend(rule.finish())
    violations = _apply_suppressions(violations, {ctx.path: ctx})
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def check_project_sources(
    sources: Mapping[str, str],
    *,
    docs: Mapping[str, str] | None = None,
    select: list[str] | None = None,
) -> list[Violation]:
    """Run project rules over in-memory ``{module: source}`` fixtures.

    Only the whole-program tier runs (fixtures for per-file rules go
    through :func:`check_source`); ``docs`` feeds artifacts such as the
    metric reference table.
    """
    from .project import ProjectModel

    _, project_select = split_select(select)
    model = ProjectModel.from_sources(sources, docs=docs)
    violations: list[Violation] = []
    for rule in all_project_rules(project_select):
        violations.extend(rule.check_project(model))
    contexts = {ctx.path: ctx for ctx in model.contexts.values()}
    violations = _apply_suppressions(violations, contexts)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def _check_file(ctx: FileContext, rules: list[Rule]) -> list[Violation]:
    found: list[Violation] = []
    for rule in rules:
        if rule.rule_id in ctx.suppressed or not rule.applies_to(ctx):
            continue
        found.extend(rule.check(ctx))
    return found


def _apply_suppressions(
    violations: list[Violation], contexts: Mapping[str, FileContext]
) -> list[Violation]:
    """Drop findings silenced by file-wide or line-scoped markers.

    Catches what the per-rule skip in :func:`_check_file` cannot:
    line-scoped markers, ``finish()`` findings, and project-rule findings
    anchored in files whose rules were never individually skipped.
    Findings in non-Python artifacts (no context) pass through.
    """
    kept: list[Violation] = []
    for violation in violations:
        ctx = contexts.get(violation.path)
        if ctx is not None and ctx.suppressed_at(
            violation.rule_id, violation.line
        ):
            continue
        kept.append(violation)
    return kept


def _display_path(path: Path, base: Path) -> str:
    try:
        return str(path.resolve().relative_to(base.resolve()))
    except ValueError:
        return str(path)
