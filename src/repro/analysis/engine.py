"""The analysis engine: file discovery, rule dispatch, suppression.

:func:`run_analysis` walks a set of files/directories, parses each Python
file once, hands the AST to every selected rule that claims the module,
and returns an :class:`AnalysisReport`.  Module names are derived from
paths (``src/repro/...`` loses the ``src/`` prefix) so rule scoping works
on dotted names regardless of where the tree is checked out.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .base import FileContext, Rule, Violation
from .rules import all_rules

__all__ = ["AnalysisReport", "check_source", "iter_python_files", "run_analysis"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".venv", "venv", "build", "dist", ".mypy_cache",
     ".ruff_cache", ".pytest_cache", "node_modules"}
)

#: Default roots checked when the CLI is given no paths, relative to cwd.
DEFAULT_ROOTS = ("src", "benchmarks", "examples")


@dataclass
class AnalysisReport:
    """Everything one run produced, ready for a reporter."""

    violations: list[Violation]
    files_checked: int
    rule_ids: list[str]
    parse_errors: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return counts


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through directly)."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate


def module_name_for(path: Path, root: Path | None = None) -> str:
    """Dotted module name for ``path`` (``src/`` layout aware)."""
    resolved = path.resolve()
    base = (root or Path.cwd()).resolve()
    try:
        relative = resolved.relative_to(base)
    except ValueError:
        relative = Path(resolved.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or resolved.stem


def run_analysis(
    paths: Sequence[str | Path] | None = None,
    *,
    select: list[str] | None = None,
    root: str | Path | None = None,
) -> AnalysisReport:
    """Run the (selected) rule suite over ``paths``.

    ``paths`` defaults to the ``src``/``benchmarks``/``examples`` roots
    that exist under ``root`` (itself defaulting to the current working
    directory).  Violations are sorted by location; per-file suppressions
    (``# lint: ignore[rule-id]``) are already applied.
    """
    base = Path(root) if root is not None else Path.cwd()
    if paths is None:
        paths = [base / name for name in DEFAULT_ROOTS if (base / name).is_dir()]
    rules = all_rules(select)
    violations: list[Violation] = []
    parse_errors: list[Violation] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        source = path.read_text(encoding="utf-8")
        display = _display_path(path, base)
        try:
            ctx = FileContext.from_source(
                source, path=display, module=module_name_for(path, base)
            )
        except SyntaxError as exc:
            parse_errors.append(
                Violation(
                    rule_id="parse-error",
                    path=display,
                    line=exc.lineno or 0,
                    col=(exc.offset or 0),
                    message=f"could not parse file: {exc.msg}",
                )
            )
            continue
        violations.extend(_check_file(ctx, rules))
    for rule in rules:
        violations.extend(rule.finish())
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return AnalysisReport(
        violations=violations,
        files_checked=files_checked,
        rule_ids=[rule.rule_id for rule in rules],
        parse_errors=parse_errors,
    )


def check_source(
    source: str,
    *,
    module: str = "module",
    path: str = "<string>",
    select: list[str] | None = None,
) -> list[Violation]:
    """Run rules over one source string (the test-fixture entry point)."""
    ctx = FileContext.from_source(source, path=path, module=module)
    rules = all_rules(select)
    violations = _check_file(ctx, rules)
    for rule in rules:
        violations.extend(rule.finish())
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def _check_file(ctx: FileContext, rules: list[Rule]) -> list[Violation]:
    found: list[Violation] = []
    for rule in rules:
        if rule.rule_id in ctx.suppressed or not rule.applies_to(ctx):
            continue
        found.extend(rule.check(ctx))
    return found


def _display_path(path: Path, base: Path) -> str:
    try:
        return str(path.resolve().relative_to(base.resolve()))
    except ValueError:
        return str(path)
