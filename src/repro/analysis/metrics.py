"""The reconciled metric surface: code vs docs vs Prometheus exposition.

The observability layer now registers ~60 instruments from call sites
spread across the tree.  Three views of that surface must agree:

* the **code** view — every literal name passed to a
  ``registry.counter/gauge/histogram`` factory call;
* the **docs** view — the generated metric-reference table in
  ``docs/architecture.md`` (between the :data:`MARKER_START` /
  :data:`MARKER_END` comments);
* the **exposition** view — the Prometheus series name each instrument
  maps to (``repro.obs.export.prom_series_name``), which must be
  collision-free after dot-to-underscore sanitisation.

:func:`collect_metric_surface` extracts the code view from a
:class:`~repro.analysis.project.ProjectModel`;
:func:`render_metrics_markdown` / :func:`render_metrics_json` render it
(the ``lfo lint --metrics-dump`` output, and what
``tools/update_metrics_doc.py`` splices into the docs); and
:func:`parse_doc_table` reads the docs view back for the
``xf-metric-surface`` rule to reconcile.
"""

from __future__ import annotations

import ast
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ProjectModel

__all__ = [
    "MARKER_END",
    "MARKER_START",
    "MetricInfo",
    "collect_metric_surface",
    "parse_doc_table",
    "render_metrics_json",
    "render_metrics_markdown",
    "splice_doc_table",
]

MARKER_START = "<!-- metric-surface:begin -->"
MARKER_END = "<!-- metric-surface:end -->"

#: Span/event names live in their own namespace (no exposition series of
#: their own beyond the span summary) and are excluded from the table.
_TABLE_KINDS = ("counter", "gauge", "histogram")


class MetricInfo:
    """One instrument: dotted name, kind, exposition series, first site."""

    __slots__ = ("name", "kind", "prom", "path", "line")

    def __init__(
        self, name: str, kind: str, prom: str, path: str, line: int
    ) -> None:
        self.name = name
        self.kind = kind
        self.prom = prom
        self.path = path
        self.line = line


def prom_series_name(name: str, kind: str, prefix: str = "repro") -> str:
    """Exposition series name (re-exported from ``repro.obs.export``)."""
    from ..obs.export import prom_series_name as _impl

    return _impl(name, kind, prefix)


def collect_metric_surface(model: "ProjectModel") -> list[MetricInfo]:
    """Every literal counter/gauge/histogram name registered in code.

    One entry per ``(name, kind)`` pair, anchored at the first
    registration site in ``(path, line)`` order; span/event names are
    excluded (own namespace).  Kind conflicts are *not* collapsed — the
    per-file ``obs-name-unique`` rule owns that invariant — so a name
    registered as two kinds yields two entries for the reconciler to see.
    """
    # Imported lazily: the rules package imports this module (via
    # ``rules.crossfile``), so a top-level import here would be circular.
    from .rules.obs import _is_forwarded_param, _iter_factory_calls

    sites: dict[tuple[str, str], tuple[str, int]] = {}
    for ctx in model.contexts.values():
        for kind, call, stack in _iter_factory_calls(ctx.tree):
            if kind not in _TABLE_KINDS:
                continue
            name_arg = call.args[0] if call.args else None
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                continue
            if _is_forwarded_param(name_arg, stack):
                continue
            key = (name_arg.value, kind)
            site = (ctx.path, name_arg.lineno)
            if key not in sites or site < sites[key]:
                sites[key] = site
    return [
        MetricInfo(
            name=name,
            kind=kind,
            prom=prom_series_name(name, kind),
            path=path,
            line=line,
        )
        for (name, kind), (path, line) in sorted(sites.items())
    ]


def render_metrics_markdown(infos: list[MetricInfo]) -> str:
    """The docs table body (what sits between the generated markers)."""
    lines = [
        "| Metric | Kind | Prometheus series |",
        "| --- | --- | --- |",
    ]
    for info in infos:
        lines.append(f"| `{info.name}` | {info.kind} | `{info.prom}` |")
    return "\n".join(lines)


def render_metrics_json(infos: list[MetricInfo]) -> str:
    """Machine-readable reconciliation table (``--metrics-dump json``)."""
    return json.dumps(
        {
            "metrics": [
                {
                    "name": info.name,
                    "kind": info.kind,
                    "prometheus": info.prom,
                    "registered_at": f"{info.path}:{info.line}",
                }
                for info in infos
            ]
        },
        indent=2,
    )


def parse_doc_table(text: str) -> list[tuple[str, str, str]] | None:
    """Parse the generated table out of a docs file.

    Returns ``(name, kind, prometheus_series)`` rows, or None when the
    marker pair is missing entirely (a distinct finding: the docs have no
    metric reference to reconcile against).
    """
    start = text.find(MARKER_START)
    end = text.find(MARKER_END)
    if start < 0 or end < 0 or end < start:
        return None
    rows: list[tuple[str, str, str]] = []
    body = text[start + len(MARKER_START) : end]
    for line in body.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if len(cells) != 3 or cells[0] in ("Metric", "---", "--- "):
            continue
        if set(cells[0]) <= {"-", " "}:
            continue
        name = cells[0].strip("`")
        kind = cells[1]
        prom = cells[2].strip("`")
        rows.append((name, kind, prom))
    return rows


def splice_doc_table(text: str, table: str) -> str | None:
    """Replace the between-markers block of ``text`` with ``table``.

    Returns the updated document, or None when the markers are absent
    (the caller decides whether that is an error or a fresh insert).
    """
    start = text.find(MARKER_START)
    end = text.find(MARKER_END)
    if start < 0 or end < 0 or end < start:
        return None
    head = text[: start + len(MARKER_START)]
    tail = text[end:]
    return f"{head}\n{table}\n{tail}"
