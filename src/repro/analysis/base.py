"""Core types of the static-analysis framework: violations, file context,
and the visitor-based :class:`Rule` plugin API.

A rule is an :class:`ast.NodeVisitor` subclass with a stable ``rule_id``.
The engine instantiates each selected rule once per run (so cross-file
rules can accumulate state), feeds it every in-scope file via
:meth:`Rule.check`, and finally calls :meth:`Rule.finish` for whole-tree
invariants such as metric-name uniqueness.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = ["FileContext", "ProjectRule", "Rule", "Violation"]

#: ``# lint: ignore[rule-a, rule-b]`` — file-wide suppression marker.
SUPPRESSION_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\s-]+)\]")

#: ``# lint: ignore-next-line[rule-a, rule-b]`` — suppresses the listed
#: rules on the line directly below the marker only.
NEXT_LINE_RE = re.compile(
    r"#\s*lint:\s*ignore-next-line\[([A-Za-z0-9_,\s-]+)\]"
)


@dataclass(frozen=True)
class Violation:
    """One finding: where it is, which invariant it breaks, and why."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict[str, str | int]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"


@dataclass
class FileContext:
    """One parsed source file as rules see it.

    ``module`` is the dotted module name derived from the path
    (``src/repro/sim/runner.py`` -> ``repro.sim.runner``;
    ``benchmarks/common.py`` -> ``benchmarks.common``), which is what rule
    scoping matches against.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    suppressed: frozenset[str] = field(default_factory=frozenset)
    #: Line-scoped suppressions: line number -> rule ids silenced there
    #: (populated from ``# lint: ignore-next-line[...]`` markers).
    line_suppressed: dict[int, frozenset[str]] = field(default_factory=dict)
    #: Whether this file is a package ``__init__`` (drives relative-import
    #: resolution in the whole-program model).
    is_package: bool = False

    @classmethod
    def from_source(
        cls, source: str, *, path: str = "<string>", module: str = "module"
    ) -> FileContext:
        """Parse ``source`` into a context (also the test-fixture entry point)."""
        return cls(
            path=path,
            module=module,
            source=source,
            tree=ast.parse(source, filename=path),
            suppressed=parse_suppressions(source),
            line_suppressed=parse_line_suppressions(source),
            is_package=path.endswith("__init__.py"),
        )

    def in_package(self, *prefixes: str) -> bool:
        """True when :attr:`module` is any of ``prefixes`` or inside one."""
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )

    def suppressed_at(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced at ``line`` (file- or line-wide)."""
        return rule_id in self.suppressed or rule_id in self.line_suppressed.get(
            line, frozenset()
        )


def parse_suppressions(source: str) -> frozenset[str]:
    """Rule ids suppressed file-wide via ``# lint: ignore[rule-id, ...]``."""
    ids: set[str] = set()
    for match in SUPPRESSION_RE.finditer(source):
        ids.update(part.strip() for part in match.group(1).split(",") if part.strip())
    return frozenset(ids)


def parse_line_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppressions: ``# lint: ignore-next-line[rule-id, ...]``.

    The marker silences the listed rules on the *next* line only, so a
    justified one-line exception does not blank the rule for the whole
    file.  Returns a map of suppressed line number -> rule ids.
    """
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in NEXT_LINE_RE.finditer(line):
            ids = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            out.setdefault(lineno + 1, set()).update(ids)
    return {line: frozenset(ids) for line, ids in out.items()}


class Rule(ast.NodeVisitor):
    """Base class for all analysis rules.

    Subclasses set ``rule_id`` (stable, kebab-case, what ``--select`` and
    suppressions match) and ``summary`` (one line for reports), override
    ``visit_*`` methods, and call :meth:`report` on findings.  Override
    :meth:`applies_to` to scope a rule to particular modules and
    :meth:`finish` for cross-file invariants.
    """

    rule_id: str = ""
    summary: str = ""

    def __init__(self) -> None:
        self._violations: list[Violation] = []
        self._ctx: FileContext | None = None

    # -- engine entry points -------------------------------------------------

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule inspects ``ctx`` at all (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> list[Violation]:
        """Visit one file's AST; returns the violations found in it."""
        self._ctx = ctx
        self._violations = []
        try:
            self.visit(ctx.tree)
        finally:
            self._ctx = None
        return self._violations

    def finish(self) -> list[Violation]:
        """Cross-file findings, emitted once after every file was checked."""
        return []

    # -- helpers for subclasses ----------------------------------------------

    @property
    def ctx(self) -> FileContext:
        assert self._ctx is not None, "report() outside check()"
        return self._ctx

    def report(self, node: ast.AST, message: str) -> None:
        """Record a violation anchored at ``node`` in the current file."""
        self._violations.append(
            Violation(
                rule_id=self.rule_id,
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (the ``lfo lint --deep`` tier).

    A project rule never visits single files: the engine builds one
    :class:`repro.analysis.project.ProjectModel` — repo-wide symbol
    table, import/call graph, dataflow summaries — and hands it to
    :meth:`check_project` once.  Findings still anchor to a concrete
    ``path:line`` so suppressions and baselines apply uniformly.
    """

    def check(self, ctx: FileContext) -> list[Violation]:
        """Project rules do not participate in the per-file pass."""
        return []

    def check_project(self, model: object) -> list[Violation]:
        """All findings over the whole-program ``model``."""
        raise NotImplementedError

    def report_at(
        self, *, path: str, line: int, col: int, message: str
    ) -> Violation:
        """Construct (without recording) a violation at an explicit site."""
        return Violation(
            rule_id=self.rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
        )


def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; '' for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def references_name(node: ast.AST, name: str) -> bool:
    """True when any ``Name`` node inside ``node`` loads ``name``."""
    return any(
        isinstance(child, ast.Name) and child.id == name
        for child in ast.walk(node)
    )
