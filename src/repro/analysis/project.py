"""The whole-program model behind ``lfo lint --deep``.

Per-file AST rules cannot see cross-module contract breaks — the class of
defect every recent regression fell into (a ``CachePolicy`` subclass
skipping the ``_on_miss_observed`` hook, a ``_restore`` dropping the
victim's true cost).  :class:`ProjectModel` gives rules the repo-wide
view those checks need:

* a **symbol table** — every module-level function, class and method with
  its qualified name (``repro.cache.base.CachePolicy.on_request``);
* an **import graph** — per module, the alias table mapping every bound
  name to the fully qualified symbol it refers to, with relative imports
  and package re-exports (``from .base import CachePolicy`` in an
  ``__init__``) resolved;
* a **class hierarchy** — resolved base classes, transitive subclass
  queries, and an approximate MRO for method resolution;
* a **call graph** — per function, the call sites with their callees
  resolved through imports, ``self.``/``super().`` dispatch and
  re-exports (dynamic calls stay unresolved and carry their trailing
  attribute name for conservative matching).

Building the model costs one parse of the tree, so it is cached on disk
keyed on every file's ``(path, mtime_ns, size)`` signature — an unchanged
tree loads the pickled model instead of re-parsing (the CI deep-lint
budget relies on this; ``REPRO_LINT_NO_CACHE=1`` or ``cache_path=None``
disables it).  :meth:`ProjectModel.from_sources` builds a model from an
in-memory ``{module: source}`` mapping, which is how rule fixtures are
tested without touching disk.
"""

from __future__ import annotations

import ast
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .base import FileContext, Violation, dotted_name

__all__ = ["CallSite", "ClassInfo", "FunctionInfo", "ProjectModel"]

#: Cache-format version: bump when the model shape changes so stale
#: pickles are rebuilt instead of unpickled into the wrong shape.
_CACHE_VERSION = 1

#: Re-export chasing depth bound (a.b re-exporting c.d re-exporting ...).
_CHASE_LIMIT = 10


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    cls: str | None = None  # enclosing class qualname, None for functions
    is_property: bool = False

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition with raw (as-written) base expressions."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the resolved function/method qualname when static
    resolution succeeded, else None; ``raw`` is the dotted text as
    written ('' for dynamic receivers) and ``attr`` the trailing
    attribute name, kept for conservative name-based matching.
    """

    raw: str
    callee: str | None
    attr: str | None
    lineno: int
    col: int


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = dotted_name(decorator)
        if name == "property" or name.endswith(".setter"):
            return True
    return False


class ProjectModel:
    """Repo-wide symbol table, import graph, class hierarchy, call graph."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = root
        self.contexts: dict[str, FileContext] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module -> bound name -> fully qualified target (pre-chase).
        self.imports: dict[str, dict[str, str]] = {}
        #: function qualname -> call sites in its body.
        self.calls: dict[str, list[CallSite]] = {}
        self.parse_errors: list[Violation] = []
        #: In-memory docs overlay (fixtures); real trees read from disk.
        self._docs: dict[str, str] = {}
        #: Whether this model came from the on-disk cache unchanged.
        self.from_cache = False

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        paths: Sequence[str | Path] | None = None,
        *,
        root: str | Path | None = None,
    ) -> "ProjectModel":
        """Parse the tree under ``paths`` (default roots) into a model."""
        from .engine import (
            DEFAULT_ROOTS,
            _display_path,
            iter_python_files,
            module_name_for,
        )

        base = Path(root) if root is not None else Path.cwd()
        if paths is None:
            paths = [
                base / name for name in DEFAULT_ROOTS if (base / name).is_dir()
            ]
        model = cls(root=base)
        for path in iter_python_files(paths):
            source = path.read_text(encoding="utf-8")
            display = _display_path(path, base)
            try:
                ctx = FileContext.from_source(
                    source, path=display, module=module_name_for(path, base)
                )
            except SyntaxError as exc:
                model.parse_errors.append(
                    Violation(
                        rule_id="parse-error",
                        path=display,
                        line=exc.lineno or 0,
                        col=(exc.offset or 0),
                        message=f"could not parse file: {exc.msg}",
                    )
                )
                continue
            model._add_context(ctx)
        model._link()
        return model

    @classmethod
    def from_sources(
        cls,
        sources: Mapping[str, str],
        *,
        docs: Mapping[str, str] | None = None,
    ) -> "ProjectModel":
        """Build a model from ``{module: source}`` (the fixture entry point).

        ``docs`` maps doc-relative paths (``docs/architecture.md``) to
        their text for rules that reconcile code against documentation.
        """
        model = cls(root=None)
        for module, source in sources.items():
            path = module.replace(".", "/") + ".py"
            ctx = FileContext.from_source(source, path=path, module=module)
            model._add_context(ctx)
        if docs:
            model._docs = dict(docs)
        model._link()
        return model

    @classmethod
    def load_or_build(
        cls,
        paths: Sequence[str | Path] | None = None,
        *,
        root: str | Path | None = None,
        cache_path: str | Path | None = None,
    ) -> "ProjectModel":
        """Return a cached model when no file changed, else rebuild.

        The signature is every in-scope file's ``(path, mtime_ns, size)``;
        any difference — content, addition, removal — invalidates.  Cache
        I/O failures fall back to a rebuild, never an error.
        """
        if cache_path is None or os.environ.get("REPRO_LINT_NO_CACHE"):
            return cls.build(paths, root=root)
        cache_file = Path(cache_path)
        signature = _tree_signature(paths, root=root)
        if cache_file.is_file():
            try:
                with cache_file.open("rb") as handle:
                    payload = pickle.load(handle)
                if (
                    payload.get("version") == _CACHE_VERSION
                    and payload.get("signature") == signature
                ):
                    model = payload["model"]
                    model.from_cache = True
                    return model
            except (OSError, pickle.PickleError, AttributeError, EOFError,
                    KeyError, ImportError):
                pass  # corrupt/stale cache: rebuild below
        model = cls.build(paths, root=root)
        try:
            cache_file.parent.mkdir(parents=True, exist_ok=True)
            with cache_file.open("wb") as handle:
                pickle.dump(
                    {
                        "version": _CACHE_VERSION,
                        "signature": signature,
                        "model": model,
                    },
                    handle,
                )
        except (OSError, pickle.PickleError):
            pass  # cache is best-effort
        return model

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["from_cache"] = False
        return state

    # -- docs access ---------------------------------------------------------

    def read_text(self, relpath: str) -> str | None:
        """Text of a repo-relative non-Python artifact (docs), or None."""
        if relpath in self._docs:
            return self._docs[relpath]
        if self.root is None:
            return None
        candidate = self.root / relpath
        if candidate.is_file():
            return candidate.read_text(encoding="utf-8")
        return None

    # -- indexing ------------------------------------------------------------

    def _add_context(self, ctx: FileContext) -> None:
        self.contexts[ctx.module] = ctx
        self.imports[ctx.module] = _import_aliases(ctx)
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{ctx.module}.{node.name}",
                    module=ctx.module,
                    name=node.name,
                    node=node,
                    path=ctx.path,
                    is_property=_is_property(node),
                )
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                cls_info = ClassInfo(
                    qualname=f"{ctx.module}.{node.name}",
                    module=ctx.module,
                    name=node.name,
                    node=node,
                    path=ctx.path,
                    bases=[
                        dotted_name(b) for b in node.bases if dotted_name(b)
                    ],
                )
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        method = FunctionInfo(
                            qualname=f"{cls_info.qualname}.{child.name}",
                            module=ctx.module,
                            name=child.name,
                            node=child,
                            path=ctx.path,
                            cls=cls_info.qualname,
                            is_property=_is_property(child),
                        )
                        cls_info.methods[child.name] = method
                        self.functions[method.qualname] = method
                self.classes[cls_info.qualname] = cls_info

    def _link(self) -> None:
        """Second pass: extract and resolve every function's call sites."""
        for info in list(self.functions.values()):
            self.calls[info.qualname] = self._extract_calls(info)

    # -- symbol resolution ---------------------------------------------------

    def resolve_symbol(self, module: str, dotted: str) -> str | None:
        """Resolve a dotted name as used in ``module`` to a qualname."""
        if not dotted:
            return None
        parts = dotted.split(".")
        aliases = self.imports.get(module, {})
        target = aliases.get(parts[0])
        if target is None:
            local = f"{module}.{dotted}"
            chased = self._chase(local)
            if chased is not None:
                return chased
            return None
        return self._chase(".".join([target] + parts[1:]))

    def _chase(self, full: str) -> str | None:
        """Follow re-export chains until a defined symbol (or give up)."""
        for _ in range(_CHASE_LIMIT):
            if full in self.functions or full in self.classes:
                return full
            parts = full.split(".")
            hopped = False
            for i in range(len(parts) - 1, 0, -1):
                module = ".".join(parts[:i])
                if module not in self.contexts:
                    continue
                target = self.imports.get(module, {}).get(parts[i])
                if target is not None:
                    full = ".".join([target] + parts[i + 1 :])
                    hopped = True
                break
            if not hopped:
                return None
        return None

    # -- class hierarchy -----------------------------------------------------

    def resolved_bases(self, qualname: str) -> list[str]:
        """Base-class qualnames of ``qualname`` that resolve in-project."""
        info = self.classes.get(qualname)
        if info is None:
            return []
        out = []
        for base in info.bases:
            resolved = self.resolve_symbol(info.module, base)
            if resolved is not None and resolved in self.classes:
                out.append(resolved)
        return out

    def mro(self, qualname: str) -> list[str]:
        """Approximate linearisation: the class, then bases depth-first."""
        order: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            order.append(name)
            for base in self.resolved_bases(name):
                visit(base)

        visit(qualname)
        return order

    def is_subclass_of(self, qualname: str, ancestor_suffix: str) -> bool:
        """Whether any class in the MRO (or an unresolved written base)
        matches ``ancestor_suffix`` — a qualname, or a bare class name
        matched on the final component (fixture-friendly)."""
        for name in self.mro(qualname):
            if name == ancestor_suffix or name.endswith(
                "." + ancestor_suffix
            ):
                return True
            info = self.classes.get(name)
            if info is None:
                continue
            for base in info.bases:
                tail = base.rsplit(".", 1)[-1]
                if base == ancestor_suffix or tail == ancestor_suffix:
                    return True
        return False

    def subclasses_of(self, ancestor_suffix: str) -> list[ClassInfo]:
        """Every project class below ``ancestor_suffix`` (excluded itself)."""
        out = []
        for qualname, info in self.classes.items():
            if qualname == ancestor_suffix or qualname.endswith(
                "." + ancestor_suffix
            ):
                continue
            if self.is_subclass_of(qualname, ancestor_suffix):
                out.append(info)
        return sorted(out, key=lambda c: c.qualname)

    def resolve_method(
        self, cls_qualname: str, method: str, *, skip_self: bool = False
    ) -> FunctionInfo | None:
        """Find ``method`` along the MRO (``skip_self`` models super())."""
        order = self.mro(cls_qualname)
        if skip_self:
            order = order[1:]
        for name in order:
            info = self.classes.get(name)
            if info is not None and method in info.methods:
                return info.methods[method]
        return None

    # -- call extraction -----------------------------------------------------

    def _extract_calls(self, info: FunctionInfo) -> list[CallSite]:
        sites: list[CallSite] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            sites.append(self._resolve_call(info, node))
        return sites

    def _resolve_call(self, info: FunctionInfo, node: ast.Call) -> CallSite:
        raw = dotted_name(node.func)
        callee: str | None = None
        attr: str | None = None
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            # super().meth(...): dispatch past the defining class.
            inner = node.func.value
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id == "super"
                and info.cls is not None
            ):
                resolved = self.resolve_method(
                    info.cls, node.func.attr, skip_self=True
                )
                if resolved is not None:
                    callee = resolved.qualname
                return CallSite(
                    raw=f"super().{node.func.attr}",
                    callee=callee,
                    attr=attr,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                )
        if raw:
            parts = raw.split(".")
            if parts[0] == "self" and info.cls is not None:
                if len(parts) == 2:
                    resolved = self.resolve_method(info.cls, parts[1])
                    if resolved is not None:
                        callee = resolved.qualname
            else:
                symbol = self.resolve_symbol(info.module, raw)
                if symbol is not None:
                    if symbol in self.functions:
                        callee = symbol
                    elif symbol in self.classes:
                        # Constructor call: effects live in __init__.
                        ctor = self.resolve_method(symbol, "__init__")
                        callee = ctor.qualname if ctor is not None else None
            if attr is None and "." not in raw:
                attr = raw
        return CallSite(
            raw=raw,
            callee=callee,
            attr=attr,
            lineno=node.lineno,
            col=node.col_offset + 1,
        )

    # -- convenience ---------------------------------------------------------

    def functions_in(self, *prefixes: str) -> Iterable[FunctionInfo]:
        """Every function whose module is inside one of ``prefixes``."""
        for info in self.functions.values():
            module = info.module
            if any(
                module == p or module.startswith(p + ".") for p in prefixes
            ):
                yield info

    def context_for_path(self, path: str) -> FileContext | None:
        for ctx in self.contexts.values():
            if ctx.path == path:
                return ctx
        return None


def _import_aliases(ctx: FileContext) -> dict[str, str]:
    """Bound name -> fully qualified target for every import in ``ctx``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = _from_import_base(ctx, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                aliases[alias.asname or alias.name] = target
    return aliases


def _from_import_base(
    ctx: FileContext, node: ast.ImportFrom
) -> str | None:
    """The absolute module a ``from ... import`` pulls names out of."""
    if node.level == 0:
        return node.module or None
    package_parts = ctx.module.split(".")
    if not ctx.is_package:
        package_parts = package_parts[:-1]
    cut = len(package_parts) - (node.level - 1)
    if cut < 0:
        return None
    parts = package_parts[:cut]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


def _tree_signature(
    paths: Sequence[str | Path] | None, *, root: str | Path | None
) -> tuple:
    """Mtime/size fingerprint of every in-scope file (cache key)."""
    from .engine import DEFAULT_ROOTS, iter_python_files

    base = Path(root) if root is not None else Path.cwd()
    if paths is None:
        paths = [
            base / name for name in DEFAULT_ROOTS if (base / name).is_dir()
        ]
    entries = []
    for path in iter_python_files(paths):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((str(path), stat.st_mtime_ns, stat.st_size))
    return tuple(sorted(entries))
