"""Robustness rules.

Production caches fail quietly: a swallowed exception drops retraining on
the floor, a mutable default argument leaks one call's state into the
next, a float equality in a split comparison flips with the optimisation
level.  Each rule here turns one of those silent failure modes into a
build error.
"""

from __future__ import annotations

import ast

from ..base import FileContext, Rule, dotted_name

__all__ = ["BroadExceptRule", "FloatEqualityRule", "MutableDefaultRule"]

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: Modules where float split/cost comparisons live.
_FLOAT_EQ_SCOPES = ("repro.gbdt", "repro.flow")


class BroadExceptRule(Rule):
    """Broad exception handlers must log and count, or re-raise."""

    rule_id = "rob-broad-except"
    summary = (
        "a bare/`except Exception` handler that neither re-raises nor both "
        "logs the failure and increments a metrics counter swallows faults "
        "invisibly; narrow the type, or log + count what you catch"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type) and not self._handled_loudly(node):
            caught = (
                dotted_name(node.type) if node.type is not None else "all"
            )
            self.report(
                node,
                f"broad handler (catches {caught}) must re-raise or both "
                "log the exception and increment a metrics counter",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        names = (
            [dotted_name(e) for e in type_node.elts]
            if isinstance(type_node, ast.Tuple)
            else [dotted_name(type_node)]
        )
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _handled_loudly(handler: ast.ExceptHandler) -> bool:
        logs = counts = reraises = False
        for child in ast.walk(handler):
            if isinstance(child, ast.Raise):
                reraises = True
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                receiver = dotted_name(child.func.value).lower()
                if child.func.attr in _LOG_METHODS and "log" in receiver:
                    logs = True
                if child.func.attr == "inc":
                    counts = True
        return reraises or (logs and counts)


class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    rule_id = "rob-mutable-default"
    summary = (
        "a list/dict/set default argument is shared across calls and "
        "mutates under the caller's feet; default to None and materialise "
        "inside the function"
    )

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable(default):
                self.report(
                    default,
                    f"mutable default argument in `{node.name}()`; use "
                    "None and build the value inside the function",
                )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and dotted_name(node.func).rsplit(".", 1)[-1] in self._MUTABLE_CALLS
        )


class FloatEqualityRule(Rule):
    """No float-literal equality in split/cost comparisons."""

    rule_id = "rob-float-eq"
    summary = (
        "== / != against a float literal in gbdt/flow split or cost "
        "comparisons flips with rounding; compare with a tolerance or "
        "restructure around an integer/None sentinel"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_FLOAT_EQ_SCOPES)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant)
                and isinstance(o.value, float)
                # Infinities are exact sentinels, not rounding hazards.
                and o.value == o.value  # not NaN
                and abs(o.value) != float("inf")
                for o in operands
            ):
                self.report(
                    node,
                    "float literal equality comparison; use a tolerance "
                    "(abs(a - b) < eps) or an exact sentinel",
                )
        self.generic_visit(node)
