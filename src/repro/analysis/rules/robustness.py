"""Robustness rules.

Production caches fail quietly: a swallowed exception drops retraining on
the floor, a mutable default argument leaks one call's state into the
next, a float equality in a split comparison flips with the optimisation
level.  Each rule here turns one of those silent failure modes into a
build error.
"""

from __future__ import annotations

import ast

from typing import Iterable, Iterator

from ..base import FileContext, Rule, dotted_name

__all__ = [
    "BroadExceptRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "SilentDegradeRule",
]

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: Modules where float split/cost comparisons live.
_FLOAT_EQ_SCOPES = ("repro.gbdt", "repro.flow")

#: Packages whose failure handling must be observable (the request path,
#: labeling, and trace I/O — exactly where silent degradation hides).
_DEGRADE_SCOPES = ("repro.core", "repro.opt", "repro.trace")

#: Identifier fragments that mark a degradation flag or mode switch.
_DEGRADE_FRAGMENTS = ("degraded", "fallback", "tolerant", "halted", "broken")

#: Metric-bump method names (counter.inc, histogram.observe, tracer.event).
_METRIC_METHODS = frozenset({"inc", "observe", "event"})


class BroadExceptRule(Rule):
    """Broad exception handlers must log and count, or re-raise."""

    rule_id = "rob-broad-except"
    summary = (
        "a bare/`except Exception` handler that neither re-raises nor both "
        "logs the failure and increments a metrics counter swallows faults "
        "invisibly; narrow the type, or log + count what you catch"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type) and not self._handled_loudly(node):
            caught = (
                dotted_name(node.type) if node.type is not None else "all"
            )
            self.report(
                node,
                f"broad handler (catches {caught}) must re-raise or both "
                "log the exception and increment a metrics counter",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(type_node: ast.AST | None) -> bool:
        if type_node is None:
            return True
        names = (
            [dotted_name(e) for e in type_node.elts]
            if isinstance(type_node, ast.Tuple)
            else [dotted_name(type_node)]
        )
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _handled_loudly(handler: ast.ExceptHandler) -> bool:
        logs = counts = reraises = False
        for child in ast.walk(handler):
            if isinstance(child, ast.Raise):
                reraises = True
            elif isinstance(child, ast.Call) and isinstance(
                child.func, ast.Attribute
            ):
                receiver = dotted_name(child.func.value).lower()
                if child.func.attr in _LOG_METHODS and "log" in receiver:
                    logs = True
                if child.func.attr == "inc":
                    counts = True
        return reraises or (logs and counts)


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested function,
    class, or lambda bodies (those are separate observability scopes)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            stack.extend(ast.iter_child_nodes(child))


def _is_loud_call(call: ast.Call) -> bool:
    """A call that makes a degradation path observable: logging, a
    warnings.warn, or a metric bump (inc/observe/event, gauge .set)."""
    if isinstance(call.func, ast.Name):
        return call.func.id == "warn"
    if not isinstance(call.func, ast.Attribute):
        return False
    attr = call.func.attr
    receiver = dotted_name(call.func.value).lower()
    if attr == "warn" and "warnings" in receiver:
        return True
    if attr in _LOG_METHODS and "log" in receiver:
        return True
    if attr in _METRIC_METHODS:
        return True
    if attr == "set" and isinstance(call.func.value, ast.Call):
        # registry.gauge("name").set(...) — the only .set that counts.
        factory = dotted_name(call.func.value.func).rsplit(".", 1)[-1]
        return factory == "gauge"
    return False


def _is_loud(nodes: Iterable[ast.AST]) -> bool:
    """True when the statements re-raise, log, warn, or bump a metric."""
    for stmt in nodes:
        for child in [stmt, *_shallow_walk(stmt)]:
            if isinstance(child, ast.Raise):
                return True
            if isinstance(child, ast.Call) and _is_loud_call(child):
                return True
    return False


class MutableDefaultRule(Rule):
    """No mutable default argument values."""

    rule_id = "rob-mutable-default"
    summary = (
        "a list/dict/set default argument is shared across calls and "
        "mutates under the caller's feet; default to None and materialise "
        "inside the function"
    )

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if self._is_mutable(default):
                self.report(
                    default,
                    f"mutable default argument in `{node.name}()`; use "
                    "None and build the value inside the function",
                )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and dotted_name(node.func).rsplit(".", 1)[-1] in self._MUTABLE_CALLS
        )


class FloatEqualityRule(Rule):
    """No float-literal equality in split/cost comparisons."""

    rule_id = "rob-float-eq"
    summary = (
        "== / != against a float literal in gbdt/flow split or cost "
        "comparisons flips with rounding; compare with a tolerance or "
        "restructure around an integer/None sentinel"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_FLOAT_EQ_SCOPES)

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant)
                and isinstance(o.value, float)
                # Infinities are exact sentinels, not rounding hazards.
                and o.value == o.value  # not NaN
                and abs(o.value) != float("inf")
                for o in operands
            ):
                self.report(
                    node,
                    "float literal equality comparison; use a tolerance "
                    "(abs(a - b) < eps) or an exact sentinel",
                )
        self.generic_visit(node)


class SilentDegradeRule(Rule):
    """Degradation paths in core/opt/trace must log or bump a metric.

    Three shapes of silent degradation are rejected:

    1. *any* exception handler (not just broad ones) that neither
       re-raises nor logs/warns/bumps a metric — a quiet ``except`` is a
       fallback nobody will ever see engage;
    2. an ``if`` branch gated on a bare degradation-mode name (one
       containing ``degraded``/``fallback``/``tolerant``/...) with no
       raise/log/metric in its body — mode switches must be observable
       where they take effect (attribute tests like ``self._degraded``
       are exempt: they guard the per-request hot path, which is counted
       once at the flip site instead);
    3. setting a degradation flag (``pool_broken = True``,
       ``self._degraded = True``) inside a function that never logs or
       bumps a metric — the flip itself is the incident signal.
    """

    rule_id = "rob-silent-degrade"
    summary = (
        "except-driven or flag-driven fallback paths in repro.core/opt/"
        "trace must be observable: re-raise, log/warn, or bump a metric "
        "where the degradation engages"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*_DEGRADE_SCOPES)

    # -- shape 1: quiet except handlers --------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if not _is_loud(node.body):
            caught = (
                dotted_name(node.type) if node.type is not None else "all"
            )
            self.report(
                node,
                f"exception handler (catches {caught}) degrades silently; "
                "re-raise, log, or bump a resilience metric in the handler",
            )
        self.generic_visit(node)

    # -- shape 2: quiet degradation-mode branches ----------------------------

    def visit_If(self, node: ast.If) -> None:
        name = self._degrade_name(node.test)
        if name is not None and not _is_loud(node.body):
            self.report(
                node,
                f"branch on degradation mode `{name}` has no raise/log/"
                "metric; count or log the fallback where it engages",
            )
        self.generic_visit(node)

    @staticmethod
    def _degrade_name(test: ast.AST) -> str | None:
        """The first bare degradation-flag Name loaded by ``test``, if any.

        Flags are snake_case variables (``tolerant``, ``pool_broken``);
        CamelCase names are classes (``BrokenExecutor``), not flags.
        """
        for child in ast.walk(test):
            if (
                isinstance(child, ast.Name)
                and child.id == child.id.lower()
                and any(f in child.id for f in _DEGRADE_FRAGMENTS)
            ):
                return child.id
        return None

    # -- shape 3: quiet flag flips -------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        loud = _is_loud(node.body)
        for child in _shallow_walk(node):
            if (
                isinstance(child, ast.Assign)
                and isinstance(child.value, ast.Constant)
                and child.value.value is True
            ):
                for target in child.targets:
                    flag = self._flag_name(target)
                    if flag is not None and not loud:
                        self.report(
                            child,
                            f"`{flag} = True` flips a degradation flag in "
                            f"`{node.name}()`, which never logs or bumps a "
                            "metric; make the flip observable",
                        )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    @staticmethod
    def _flag_name(target: ast.AST) -> str | None:
        terminal = (
            target.attr
            if isinstance(target, ast.Attribute)
            else target.id
            if isinstance(target, ast.Name)
            else ""
        )
        if any(f in terminal.lower() for f in _DEGRADE_FRAGMENTS):
            return terminal
        return None
