"""Determinism rules.

The paper's robustness story rests on OPT labels and trained models being
reproducible: rerunning a window must yield bit-identical decisions.  Any
ambient randomness (process-global RNGs) or wall-clock reads inside the
labeling/training/simulation substrate silently breaks that, so those
modules may only use explicitly seeded ``np.random.Generator`` objects and
injected logical clocks.  Monotonic timers (``time.perf_counter``) are
fine: they feed observability, not decisions.
"""

from __future__ import annotations

import ast

from ..base import FileContext, Rule, dotted_name

__all__ = ["DeterminismRngRule", "DeterminismWallClockRule"]

#: Modules whose outputs must be reproducible run-to-run.  ``repro.core``
#: joined when sampled eviction landed: the eviction sampler's candidate
#: draws decide victim sequences, so its RNG must be a seeded Generator.
DETERMINISTIC_SCOPES = (
    "repro.sim",
    "repro.opt",
    "repro.gbdt",
    "repro.features",
    "repro.core",
    "repro.trace.synthetic",
    # Telemetry windows must replay bit-identically under seeded runs:
    # the wall-interval mode takes an injectable clock and the default is
    # the monotonic perf_counter, never the wall clock.
    "repro.obs",
    # The serving harness replays traces deterministically: arrival
    # processes draw from seeded generators, latency uses perf_counter.
    "repro.serve",
    # The cluster must route identically on every host and restart: ring
    # points and key mixing come from blake2b/splitmix64, slab tokens
    # from pid + counter, timings from perf_counter/process_time.
    "repro.cluster",
    "benchmarks",
)

#: ``np.random.<attr>`` accesses that do NOT touch the process-global
#: legacy RNG: constructors/types for explicitly seeded generators.
_SEEDABLE_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)


class _ScopedRule(Rule):
    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*DETERMINISTIC_SCOPES)


class DeterminismRngRule(_ScopedRule):
    """No process-global RNG state in deterministic modules."""

    rule_id = "det-rng"
    summary = (
        "sim/opt/gbdt/features/core/trace.synthetic and benchmarks must draw randomness "
        "from an explicitly seeded np.random.Generator, never the stdlib "
        "`random` module, the np.random legacy singleton, or an unseeded "
        "default_rng()"
    )

    def __init__(self) -> None:
        super().__init__()
        self._default_rng_aliases: set[str] = set()

    def check(self, ctx: FileContext) -> list:
        self._default_rng_aliases = {"default_rng"}
        return super().check(ctx)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "stdlib `random` is process-global state; use a seeded "
                    "np.random.Generator threaded through the call",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "stdlib `random` is process-global state; use a seeded "
                "np.random.Generator threaded through the call",
            )
        if node.module in ("numpy.random", "np.random"):
            for alias in node.names:
                if alias.name == "default_rng":
                    self._default_rng_aliases.add(alias.asname or alias.name)
                elif alias.name not in _SEEDABLE_ATTRS:
                    self.report(
                        node,
                        f"`from numpy.random import {alias.name}` pulls in the "
                        "unseeded legacy RNG; import and seed default_rng "
                        "instead",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        tail = name.rsplit(".", 1)[-1] if name else ""
        # np.random.<dist>() on the legacy module-level singleton.
        if (".random." in name or name.startswith("random.")) and name.split(
            "."
        )[-2] == "random":
            if tail not in _SEEDABLE_ATTRS:
                self.report(
                    node,
                    f"`{name}()` uses the process-global legacy RNG; draw "
                    "from a seeded np.random.Generator instead",
                )
        if tail in self._default_rng_aliases and self._is_unseeded(node):
            self.report(
                node,
                "default_rng() without a seed is entropy-seeded and "
                "irreproducible; pass an explicit seed",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_unseeded(node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        return not any(kw.arg == "seed" for kw in node.keywords)


class DeterminismWallClockRule(_ScopedRule):
    """No wall-clock reads in deterministic modules."""

    rule_id = "det-wallclock"
    summary = (
        "sim/opt/gbdt/features/core/trace.synthetic and benchmarks must not read the wall "
        "clock (time.time, datetime.now, ...); use the trace's logical "
        "timestamps or an injected clock (monotonic perf_counter timing for "
        "observability is fine)"
    )

    def __init__(self) -> None:
        super().__init__()
        self._from_imports: set[str] = set()

    def check(self, ctx: FileContext) -> list:
        self._from_imports = set()
        return super().check(ctx)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in ("time", "time_ns"):
                    self._from_imports.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in _WALLCLOCK_CALLS or name in self._from_imports:
            self.report(
                node,
                f"wall-clock read `{name}()` makes reruns diverge; use the "
                "trace's logical time or an injected clock",
            )
        self.generic_visit(node)
