"""Observability hygiene rules.

The metrics registry keys instruments by name at call sites spread across
the tree, so two classes of mistakes are cheap to make and expensive to
debug: dynamic names (an f-string interpolating an object id turns one
counter into a million — the classic cardinality bomb) and one name used
as two different instrument kinds in different files.  Names are therefore
required to be literal, dotted snake_case, and kind-unique repo-wide.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..base import FileContext, Rule, Violation, dotted_name

__all__ = ["ObsLiteralNameRule", "ObsNameStyleRule", "ObsNameUniqueRule"]

#: Instrument/span/event factory methods on registries and tracers.
_FACTORY_ATTRS = frozenset({"counter", "gauge", "histogram", "span", "event"})

#: Dotted snake_case: ``online.skipped_retrains``, ``sim.hits`` ...
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")


def _receiver_is_registry(func: ast.Attribute) -> bool:
    """Heuristic: the call target reads like a registry/tracer object."""
    receiver = func.value
    text = dotted_name(receiver).lower()
    if "registry" in text or "tracer" in text:
        return True
    if isinstance(receiver, ast.Call):
        return dotted_name(receiver.func).rsplit(".", 1)[-1] in (
            "get_registry",
        )
    return False


#: Functions allowed to forward a ``name`` parameter into a factory call:
#: the registry/tracer wrapper layer itself.
_FORWARDER_NAMES = _FACTORY_ATTRS | {"traced"}


def _iter_factory_calls(
    tree: ast.Module,
) -> "Iterator[tuple[str, ast.Call, list[ast.FunctionDef | ast.AsyncFunctionDef]]]":
    """Yield ``(kind, call, enclosing_functions)`` for every
    registry.counter/gauge/histogram/span call in ``tree``."""

    def walk(node: ast.AST, stack: list) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _FACTORY_ATTRS
                and _receiver_is_registry(child.func)
            ):
                yield child.func.attr, child, stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, stack + [child])
            else:
                yield from walk(child, stack)

    yield from walk(tree, [])


def _is_forwarded_param(name_arg: ast.AST, stack: list) -> bool:
    """True when the name argument is a parameter the enclosing wrapper
    (itself named counter/gauge/histogram/span/traced) forwards verbatim —
    the registry implementation layer, not an instrumentation call site."""
    if not isinstance(name_arg, ast.Name):
        return False
    for fn in stack:
        if fn.name not in _FORWARDER_NAMES:
            continue
        params = fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        if any(p.arg == name_arg.id for p in params):
            return True
    return False


class ObsLiteralNameRule(Rule):
    """Metric/span names must be string literals."""

    rule_id = "obs-literal-name"
    summary = (
        "registry.counter/gauge/histogram/span names must be literal "
        "strings — an f-string or variable name interpolates per-object "
        "values into the instrument key and explodes cardinality"
    )

    def check(self, ctx: FileContext) -> list[Violation]:
        self._ctx = ctx
        self._violations = []
        for kind, call, stack in _iter_factory_calls(ctx.tree):
            name_arg = call.args[0] if call.args else None
            if name_arg is None or _is_forwarded_param(name_arg, stack):
                continue
            if isinstance(name_arg, ast.JoinedStr):
                self.report(
                    name_arg,
                    f"f-string {kind} name is a cardinality bomb; use a "
                    "literal name and put the varying part in the value",
                )
            elif not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                self.report(
                    name_arg,
                    f"{kind} name must be a literal string, not a computed "
                    "expression",
                )
        self._ctx = None
        return self._violations


class ObsNameStyleRule(Rule):
    """Literal metric/span names must be dotted snake_case."""

    rule_id = "obs-name-style"
    summary = (
        "metric/span names are dotted snake_case "
        "(`component.metric_name`) so exporters can prefix and group them"
    )

    def check(self, ctx: FileContext) -> list[Violation]:
        self._ctx = ctx
        self._violations = []
        for kind, call, _stack in _iter_factory_calls(ctx.tree):
            name_arg = call.args[0] if call.args else None
            if (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
                and not _NAME_RE.match(name_arg.value)
            ):
                self.report(
                    name_arg,
                    f"{kind} name {name_arg.value!r} is not dotted "
                    "snake_case (expected e.g. 'online.failed_retrains')",
                )
        self._ctx = None
        return self._violations


class ObsNameUniqueRule(Rule):
    """One instrument name maps to exactly one instrument kind repo-wide."""

    rule_id = "obs-name-unique"
    summary = (
        "a metric name registered as two different instrument kinds "
        "(counter vs gauge vs histogram) aliases state in the registry; "
        "every name must have a single kind across the tree"
    )

    def __init__(self) -> None:
        super().__init__()
        # name -> {kind -> first (path, line, col)}
        self._seen: dict[str, dict[str, tuple[str, int, int]]] = {}
        self._suppressed_files: dict[str, frozenset[str]] = {}

    def check(self, ctx: FileContext) -> list[Violation]:
        self._suppressed_files[ctx.path] = ctx.suppressed
        for kind, call, _stack in _iter_factory_calls(ctx.tree):
            if kind in ("span", "event"):  # spans/events: own namespace
                continue
            name_arg = call.args[0] if call.args else None
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                kinds = self._seen.setdefault(name_arg.value, {})
                kinds.setdefault(
                    kind,
                    (ctx.path, name_arg.lineno, name_arg.col_offset + 1),
                )
        return []

    def finish(self) -> list[Violation]:
        violations = []
        for name, kinds in sorted(self._seen.items()):
            if len(kinds) < 2:
                continue
            sites = ", ".join(
                f"{kind} at {path}:{line}"
                for kind, (path, line, _col) in sorted(kinds.items())
            )
            for _kind, (path, line, col) in sorted(kinds.items()):
                if self.rule_id in self._suppressed_files.get(
                    path, frozenset()
                ):
                    continue
                violations.append(
                    Violation(
                        rule_id=self.rule_id,
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"metric name {name!r} is registered as "
                            f"multiple instrument kinds ({sites})"
                        ),
                    )
                )
        return violations
