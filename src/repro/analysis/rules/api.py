"""Public-API surface rules.

Everything re-exported through ``repro/__init__`` is the contract other
code programs against; those modules carry full type annotations so mypy
has something to check and callers have something to read.  The analysis
package holds itself to the same bar.
"""

from __future__ import annotations

import ast

from ..base import FileContext, Rule

__all__ = ["PublicApiAnnotationRule"]

#: Packages re-exported by ``repro/__init__`` (plus the linter itself).
PUBLIC_API_SCOPES = (
    "repro.core",
    "repro.obs",
    "repro.opt",
    "repro.serve",
    "repro.sim",
    "repro.trace",
    "repro.analysis",
    "repro.resilience",
    "repro.cluster",
)


class PublicApiAnnotationRule(Rule):
    """Public functions in API modules must be fully annotated."""

    rule_id = "api-annotations"
    summary = (
        "public functions and methods in repro.__init__-exported packages "
        "must annotate every parameter and the return type"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(*PUBLIC_API_SCOPES)

    def visit_Module(self, node: ast.Module) -> None:
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(child, owner=None)
            elif isinstance(child, ast.ClassDef) and not child.name.startswith(
                "_"
            ):
                for item in child.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._check_function(item, owner=child.name)
        # Deliberately no generic_visit: nested/local functions are
        # implementation detail, not API surface.

    def _check_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        owner: str | None,
    ) -> None:
        name = node.name
        if name.startswith("_") and name != "__init__":
            return
        qualname = f"{owner}.{name}" if owner else name
        args = node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        if owner is not None and params and params[0].arg in ("self", "cls"):
            params = params[1:]
        missing = [p.arg for p in params if p.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            self.report(
                node,
                f"public function `{qualname}` is missing parameter "
                f"annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            self.report(
                node,
                f"public function `{qualname}` is missing a return "
                "annotation",
            )
