"""The built-in rule suite.

Adding a rule is three steps: subclass :class:`repro.analysis.Rule` in one
of the modules here (or a new one), give it a stable ``rule_id``, and list
the class in :data:`ALL_RULES`.
"""

from __future__ import annotations

from ..base import Rule
from .api import PublicApiAnnotationRule
from .concurrency import ExecutorSharedStateRule, RequestPathLockRule
from .determinism import DeterminismRngRule, DeterminismWallClockRule
from .obs import ObsLiteralNameRule, ObsNameStyleRule, ObsNameUniqueRule
from .robustness import (
    BroadExceptRule,
    FloatEqualityRule,
    MutableDefaultRule,
    SilentDegradeRule,
)

__all__ = ["ALL_RULES", "all_rules", "rule_ids"]

ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRngRule,
    DeterminismWallClockRule,
    ExecutorSharedStateRule,
    RequestPathLockRule,
    ObsLiteralNameRule,
    ObsNameStyleRule,
    ObsNameUniqueRule,
    BroadExceptRule,
    MutableDefaultRule,
    FloatEqualityRule,
    SilentDegradeRule,
    PublicApiAnnotationRule,
)


def all_rules(select: list[str] | None = None) -> list[Rule]:
    """Fresh instances of every rule, optionally narrowed to ``select`` ids."""
    if select is not None:
        known = {cls.rule_id for cls in ALL_RULES}
        unknown = sorted(set(select) - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return [cls() for cls in ALL_RULES if cls.rule_id in select]
    return [cls() for cls in ALL_RULES]


def rule_ids() -> list[str]:
    """Stable ids of every built-in rule."""
    return [cls.rule_id for cls in ALL_RULES]
