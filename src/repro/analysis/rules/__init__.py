"""The built-in rule suite.

Adding a per-file rule is three steps: subclass
:class:`repro.analysis.Rule` in one of the modules here (or a new one),
give it a stable ``rule_id``, and list the class in :data:`ALL_RULES`.
Whole-program rules subclass :class:`repro.analysis.ProjectRule` instead
and go in :data:`PROJECT_RULES`; they only run under ``lfo lint --deep``.
"""

from __future__ import annotations

from ..base import ProjectRule, Rule
from .api import PublicApiAnnotationRule
from .concurrency import ExecutorSharedStateRule, RequestPathLockRule
from .crossfile import (
    DetectorPurityRule,
    MetricSurfaceRule,
    PolicyContractRule,
    RngTaintRule,
)
from .determinism import DeterminismRngRule, DeterminismWallClockRule
from .obs import ObsLiteralNameRule, ObsNameStyleRule, ObsNameUniqueRule
from .robustness import (
    BroadExceptRule,
    FloatEqualityRule,
    MutableDefaultRule,
    SilentDegradeRule,
)

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "all_project_rules",
    "all_rules",
    "project_rule_ids",
    "rule_ids",
]

ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRngRule,
    DeterminismWallClockRule,
    ExecutorSharedStateRule,
    RequestPathLockRule,
    ObsLiteralNameRule,
    ObsNameStyleRule,
    ObsNameUniqueRule,
    BroadExceptRule,
    MutableDefaultRule,
    FloatEqualityRule,
    SilentDegradeRule,
    PublicApiAnnotationRule,
)

#: Whole-program rules (the ``--deep`` tier); never part of the per-file
#: pass because each needs a built :class:`~repro.analysis.project.ProjectModel`.
PROJECT_RULES: tuple[type[ProjectRule], ...] = (
    RngTaintRule,
    PolicyContractRule,
    DetectorPurityRule,
    MetricSurfaceRule,
)


def all_rules(select: list[str] | None = None) -> list[Rule]:
    """Fresh instances of every per-file rule, narrowed to ``select`` ids."""
    if select is not None:
        known = {cls.rule_id for cls in ALL_RULES}
        unknown = sorted(set(select) - known)
        deep_only = sorted(set(unknown) & set(project_rule_ids()))
        if deep_only:
            raise ValueError(
                f"rule id(s) {', '.join(deep_only)} are whole-program "
                f"rules; run them with `lfo lint --deep`"
            )
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return [cls() for cls in ALL_RULES if cls.rule_id in select]
    return [cls() for cls in ALL_RULES]


def all_project_rules(
    select: list[str] | None = None,
) -> list[ProjectRule]:
    """Fresh instances of every project rule, narrowed to ``select`` ids."""
    if select is not None:
        return [cls() for cls in PROJECT_RULES if cls.rule_id in select]
    return [cls() for cls in PROJECT_RULES]


def rule_ids() -> list[str]:
    """Stable ids of every built-in per-file rule."""
    return [cls.rule_id for cls in ALL_RULES]


def project_rule_ids() -> list[str]:
    """Stable ids of every whole-program (``--deep``) rule."""
    return [cls.rule_id for cls in PROJECT_RULES]
