"""Whole-program rules: the ``lfo lint --deep`` tier.

Each rule here consumes one :class:`repro.analysis.project.ProjectModel`
instead of a single file, which is what lets it see the defect classes
the per-file tier structurally cannot:

* ``xf-rng-taint`` — a deterministic-scope function calling out into a
  helper module that (transitively) reads the wall clock or draws from a
  process-global RNG.  The per-file determinism rules only see direct
  uses; this rule walks the call graph with the dataflow summaries and
  reports at the boundary-crossing call site with the full chain.
* ``xf-policy-contract`` — ``CachePolicy`` subclasses breaking the
  eviction/admission protocol: request-path overrides that never reach
  ``_on_miss_observed`` (the exact shape of the mixture-policy
  regression), ``_select_victims`` overrides returning a bare victim or
  None instead of a plan list, request-path overrides silently
  inheriting a maybe-True ``supports_batched_scoring``, and ``_restore``
  overrides that drop the victim's true retrieval cost.
* ``xf-detector-purity`` — ``HealthMonitor`` ``_check_*`` detectors must
  be replay-pure (fold window state, append findings, nothing else);
  transitive I/O, registry mutation, global writes, or nondeterminism
  make replayed verdicts diverge from live ones.
* ``xf-metric-surface`` — the registered metric surface, the generated
  reference table in ``docs/architecture.md``, and the Prometheus
  exposition names must reconcile exactly (no undocumented instruments,
  no stale rows, no kind drift, no post-sanitisation collisions).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..base import ProjectRule, Violation, dotted_name, references_name
from ..dataflow import EffectIndex
from ..metrics import (
    MARKER_END,
    MARKER_START,
    collect_metric_surface,
    parse_doc_table,
)
from .determinism import DETERMINISTIC_SCOPES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..project import ProjectModel

__all__ = [
    "DetectorPurityRule",
    "MetricSurfaceRule",
    "PolicyContractRule",
    "RngTaintRule",
]

#: Effect kinds that poison reproducibility when reached from a
#: deterministic scope.
_TAINT_KINDS = frozenset({"wallclock", "rng"})

#: Effect kinds a health detector may not reach (state folds on
#: ``self._state`` and ``out.append`` are invisible to the summaries by
#: construction, which is exactly the allowed remainder).
_IMPURE_KINDS = frozenset({"io", "registry", "global", "wallclock", "rng"})

#: CachePolicy methods on the per-request path whose overrides must keep
#: the miss-observation hook reachable.
_REQUEST_METHODS = ("on_request", "apply_scored")


def _module_in(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


def _own_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


class RngTaintRule(ProjectRule):
    rule_id = "xf-rng-taint"
    summary = (
        "Deterministic-scope code reaches wall-clock or process-global "
        "RNG through a cross-module call"
    )

    def check_project(self, model: "ProjectModel") -> list[Violation]:
        index = EffectIndex(model)
        out: list[Violation] = []
        for info in model.functions_in(*DETERMINISTIC_SCOPES):
            for site in model.calls.get(info.qualname, []):
                callee = site.callee
                if callee is None:
                    continue
                target = model.functions.get(callee)
                if target is None or _module_in(
                    target.module, DETERMINISTIC_SCOPES
                ):
                    # In-scope callees are the per-file rules' territory
                    # (and recursion reports at *their* boundary sites).
                    continue
                for chain in index.reachable(callee, _TAINT_KINDS):
                    effect = chain.effect
                    out.append(
                        self.report_at(
                            path=info.path,
                            line=site.lineno,
                            col=site.col,
                            message=(
                                f"`{info.qualname}` is in a deterministic "
                                f"scope but this call reaches "
                                f"{effect.detail} at "
                                f"{effect.path}:{effect.line} "
                                f"(via {chain.render_chain()}); thread a "
                                f"seeded Generator / injected clock "
                                f"through instead"
                            ),
                        )
                    )
        return out


class PolicyContractRule(ProjectRule):
    rule_id = "xf-policy-contract"
    summary = (
        "CachePolicy subclass breaks the eviction/admission protocol "
        "(miss hook, victim-plan shape, batched-scoring flag, or "
        "cost-true restore)"
    )

    def check_project(self, model: "ProjectModel") -> list[Violation]:
        out: list[Violation] = []
        for cls in model.subclasses_of("CachePolicy"):
            out.extend(self._check_miss_hook(model, cls))
            out.extend(self._check_plan_shape(cls))
            out.extend(self._check_batched_flag(model, cls))
            out.extend(self._check_restore_cost(cls))
        return out

    # -- miss-observation hook ----------------------------------------------

    def _check_miss_hook(self, model, cls) -> list[Violation]:
        out = []
        for name in _REQUEST_METHODS:
            method = cls.methods.get(name)
            if method is None:
                continue
            if not self._reaches_hook(model, method.qualname):
                out.append(
                    self.report_at(
                        path=method.path,
                        line=method.lineno,
                        col=method.node.col_offset + 1,
                        message=(
                            f"`{cls.name}.{name}` overrides the request "
                            f"path but never reaches "
                            f"`self._on_miss_observed(...)` (directly or "
                            f"via `super().{name}(...)`); misses handled "
                            f"here are invisible to admission training "
                            f"and the health monitor"
                        ),
                    )
                )
        return out

    def _reaches_hook(self, model, start: str) -> bool:
        seen: set[str] = set()
        stack = [start]
        while stack:
            qualname = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            for site in model.calls.get(qualname, []):
                if site.attr == "_on_miss_observed":
                    return True
                if site.raw.startswith("super().") and site.attr in (
                    _REQUEST_METHODS
                ):
                    if site.callee is None:
                        # Base outside the model: delegation is assumed
                        # conformant (the base owns the hook).
                        return True
                    stack.append(site.callee)
                elif site.callee is not None:
                    stack.append(site.callee)
        return False

    # -- victim-plan shape ---------------------------------------------------

    def _check_plan_shape(self, cls) -> list[Violation]:
        method = cls.methods.get("_select_victims")
        if method is None:
            return []
        out = []

        def flag(node: ast.AST, why: str) -> None:
            out.append(
                self.report_at(
                    path=method.path,
                    line=getattr(node, "lineno", method.lineno),
                    col=getattr(node, "col_offset", 0) + 1,
                    message=(
                        f"`{cls.name}._select_victims` {why}; the "
                        f"eviction loop consumes a (possibly empty) "
                        f"victim-plan *list* and treats anything else "
                        f"as no progress"
                    ),
                )
            )

        for node in _own_body(method.node):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                flag(node, "is a generator")
            elif isinstance(node, ast.Return):
                value = node.value
                if value is None or (
                    isinstance(value, ast.Constant) and value.value is None
                ):
                    flag(node, "returns None")
                elif (
                    isinstance(value, ast.Call)
                    and dotted_name(value.func).rsplit(".", 1)[-1]
                    == "_select_victim"
                ):
                    flag(
                        node,
                        "returns a single `_select_victim(...)` result "
                        "unwrapped",
                    )
        return out

    # -- batched-scoring flag ------------------------------------------------

    def _check_batched_flag(self, model, cls) -> list[Violation]:
        overrides_request = any(
            name in cls.methods for name in _REQUEST_METHODS
        )
        if not overrides_request or "supports_batched_scoring" in cls.methods:
            return []
        inherited = model.resolve_method(
            cls.qualname, "supports_batched_scoring", skip_self=True
        )
        if inherited is None or not _may_return_true(inherited.node):
            return []
        return [
            self.report_at(
                path=cls.path,
                line=cls.node.lineno,
                col=cls.node.col_offset + 1,
                message=(
                    f"`{cls.name}` overrides the per-request path but "
                    f"inherits `supports_batched_scoring` from "
                    f"`{inherited.cls or inherited.module}`, which can "
                    f"return True — the batched simulator would bypass "
                    f"this class's request logic; override the property "
                    f"explicitly"
                ),
            )
        ]

    # -- cost-true restore ---------------------------------------------------

    def _check_restore_cost(self, cls) -> list[Violation]:
        method = cls.methods.get("_restore")
        if method is None:
            return []
        args = method.node.args
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        if "cost" not in names:
            why = "does not accept a `cost` parameter"
        elif not references_name(method.node, "cost"):
            why = "accepts `cost` but never uses it"
        else:
            return []
        return [
            self.report_at(
                path=method.path,
                line=method.lineno,
                col=method.node.col_offset + 1,
                message=(
                    f"`{cls.name}._restore` {why}; restored victims "
                    f"must be reinstated with their true retrieval "
                    f"cost or rollback silently cheapens them"
                ),
            )
        ]


def _may_return_true(node: ast.AST) -> bool:
    """Whether any return of ``node`` could be truthy (not `return False`)."""
    for child in _own_body(node):
        if isinstance(child, ast.Return) and child.value is not None:
            value = child.value
            if not (
                isinstance(value, ast.Constant) and value.value is False
            ):
                return True
    return False


class DetectorPurityRule(ProjectRule):
    rule_id = "xf-detector-purity"
    summary = (
        "HealthMonitor window detector has externally visible side "
        "effects (must stay replay-pure)"
    )

    def check_project(self, model: "ProjectModel") -> list[Violation]:
        index = EffectIndex(model)
        out: list[Violation] = []
        for qualname in sorted(model.classes):
            cls = model.classes[qualname]
            if not (
                cls.name == "HealthMonitor"
                or model.is_subclass_of(qualname, "HealthMonitor")
            ):
                continue
            for name in sorted(cls.methods):
                if not name.startswith("_check_"):
                    continue
                method = cls.methods[name]
                for chain in index.reachable(
                    method.qualname, _IMPURE_KINDS
                ):
                    effect = chain.effect
                    out.append(
                        self.report_at(
                            path=method.path,
                            line=method.lineno,
                            col=method.node.col_offset + 1,
                            message=(
                                f"detector `{cls.name}.{name}` must be "
                                f"replay-pure (fold `self._state`, "
                                f"append findings) but reaches "
                                f"{effect.detail} at "
                                f"{effect.path}:{effect.line} "
                                f"(via {chain.render_chain()}); emit "
                                f"through the monitor's `_emit` path "
                                f"instead"
                            ),
                        )
                    )
        return out


class MetricSurfaceRule(ProjectRule):
    rule_id = "xf-metric-surface"
    summary = (
        "Metric registrations, the docs reference table, and Prometheus "
        "exposition names disagree"
    )

    #: The docs artifact carrying the generated reference table.
    doc_path = "docs/architecture.md"

    def check_project(self, model: "ProjectModel") -> list[Violation]:
        out: list[Violation] = []
        infos = collect_metric_surface(model)

        # Post-sanitisation exposition collisions (code-only check).
        by_prom: dict[str, object] = {}
        for info in infos:
            other = by_prom.get(info.prom)
            if other is not None and other.name != info.name:
                out.append(
                    self.report_at(
                        path=info.path,
                        line=info.line,
                        col=1,
                        message=(
                            f"metric `{info.name}` and `{other.name}` "
                            f"({other.path}:{other.line}) both expose "
                            f"Prometheus series `{info.prom}`; dotted "
                            f"names must stay distinct after "
                            f"sanitisation"
                        ),
                    )
                )
            else:
                by_prom.setdefault(info.prom, info)

        text = model.read_text(self.doc_path)
        if text is None:
            out.append(
                self.report_at(
                    path=self.doc_path,
                    line=1,
                    col=1,
                    message=(
                        f"metric reference missing: `{self.doc_path}` "
                        f"not found, so the registered surface cannot "
                        f"be reconciled against documentation"
                    ),
                )
            )
            return out
        rows = parse_doc_table(text)
        if rows is None:
            out.append(
                self.report_at(
                    path=self.doc_path,
                    line=1,
                    col=1,
                    message=(
                        f"metric reference table not found in "
                        f"`{self.doc_path}`: expected a generated table "
                        f"between `{MARKER_START}` and `{MARKER_END}` "
                        f"(regenerate with tools/update_metrics_doc.py)"
                    ),
                )
            )
            return out

        doc_by_name: dict[str, tuple[str, str]] = {}
        for name, kind, prom in rows:
            doc_by_name.setdefault(name, (kind, prom))
        code_by_name: dict[str, object] = {}
        for info in infos:
            code_by_name.setdefault(info.name, info)

        for name in sorted(code_by_name):
            info = code_by_name[name]
            doc = doc_by_name.get(name)
            if doc is None:
                out.append(
                    self.report_at(
                        path=info.path,
                        line=info.line,
                        col=1,
                        message=(
                            f"metric `{name}` is registered here but "
                            f"missing from the `{self.doc_path}` metric "
                            f"reference (regenerate with "
                            f"tools/update_metrics_doc.py)"
                        ),
                    )
                )
                continue
            doc_kind, doc_prom = doc
            if doc_kind != info.kind:
                out.append(
                    self.report_at(
                        path=info.path,
                        line=info.line,
                        col=1,
                        message=(
                            f"metric `{name}` is a {info.kind} in code "
                            f"but documented as a {doc_kind}"
                        ),
                    )
                )
            if doc_prom != info.prom:
                out.append(
                    self.report_at(
                        path=self.doc_path,
                        line=_row_line(text, name),
                        col=1,
                        message=(
                            f"metric `{name}` documents Prometheus "
                            f"series `{doc_prom}` but the exporter "
                            f"emits `{info.prom}`"
                        ),
                    )
                )
        for name in sorted(doc_by_name):
            if name not in code_by_name:
                out.append(
                    self.report_at(
                        path=self.doc_path,
                        line=_row_line(text, name),
                        col=1,
                        message=(
                            f"documented metric `{name}` is not "
                            f"registered anywhere in code (stale row; "
                            f"regenerate the table)"
                        ),
                    )
                )
        return out


def _row_line(text: str, name: str) -> int:
    """Line number of the docs-table row mentioning ``name`` (1 if absent)."""
    needle = f"`{name}`"
    for lineno, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return lineno
    return 1
