"""Concurrency rules.

Background retraining (PR 1) put a trainer thread and a process pool next
to the request path.  The safe pattern the codebase standardised on is
*snapshot + atomic swap*: a window boundary snapshots plain data, submits a
module-level pure function of that data to the executor, and the request
thread later installs the result with a single attribute assignment.  These
rules reject the two ways that pattern usually erodes: worker callables
that share ``self`` with the request thread, and lock acquisitions on the
request path itself.
"""

from __future__ import annotations

import ast

from ..base import Rule, dotted_name

__all__ = ["ExecutorSharedStateRule", "RequestPathLockRule"]


class ExecutorSharedStateRule(Rule):
    """Work submitted to an executor must not capture ``self``."""

    rule_id = "conc-submit-shared"
    summary = (
        "callables handed to Executor.submit must be module-level functions "
        "of snapshotted arguments — a bound method, lambda, or partial that "
        "captures `self` mutates request-path state from the trainer thread; "
        "publish results back via an atomic attribute swap on the consuming "
        "thread instead"
    )

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            self._check_submitted(node.args[0])
            for arg in list(node.args[1:]) + [kw.value for kw in node.keywords]:
                if self._mentions_self(arg):
                    self.report(
                        arg,
                        "argument to Executor.submit passes `self` (or a "
                        "view of it) into the worker; snapshot plain data "
                        "instead",
                    )
        self.generic_visit(node)

    def _check_submitted(self, fn: ast.AST) -> None:
        if isinstance(fn, ast.Attribute) and self._mentions_self(fn):
            self.report(
                fn,
                f"submitting bound method `{dotted_name(fn)}` shares `self` "
                "between the request thread and the worker; submit a "
                "module-level function of snapshotted data and install the "
                "result via an atomic swap",
            )
        elif isinstance(fn, ast.Lambda) and self._mentions_self(fn):
            self.report(
                fn,
                "submitting a lambda that closes over `self` shares mutable "
                "state with the worker; submit a module-level function of "
                "snapshotted data",
            )
        elif (
            isinstance(fn, ast.Call)
            and dotted_name(fn.func).rsplit(".", 1)[-1] == "partial"
            and any(self._mentions_self(a) for a in fn.args)
        ):
            self.report(
                fn,
                "partial() over `self` still shares mutable state with the "
                "worker; submit a module-level function of snapshotted data",
            )

    @staticmethod
    def _mentions_self(node: ast.AST) -> bool:
        return any(
            isinstance(child, ast.Name) and child.id == "self"
            for child in ast.walk(node)
        )


class RequestPathLockRule(Rule):
    """No lock acquisition inside ``on_request``."""

    rule_id = "conc-lock-request-path"
    summary = (
        "on_request is the per-request hot path: no lock may be acquired in "
        "it (no `with <lock>:`, no .acquire()); cross-thread hand-over "
        "belongs in atomic reference swaps, locks belong at window/stage "
        "granularity"
    )

    _LOCKY = ("lock", "mutex", "semaphore", "condition")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name == "on_request":
            for child in ast.walk(node):
                if isinstance(child, ast.With):
                    for item in child.items:
                        if self._looks_like_lock(item.context_expr):
                            self.report(
                                item.context_expr,
                                "lock acquired on the request path "
                                f"(`with {dotted_name(item.context_expr)}`); "
                                "swap a reference atomically instead",
                            )
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "acquire"
                ):
                    self.report(
                        child,
                        "lock acquired on the request path (.acquire()); "
                        "swap a reference atomically instead",
                    )
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _looks_like_lock(self, expr: ast.AST) -> bool:
        name = dotted_name(expr).lower()
        return any(marker in name for marker in self._LOCKY)
