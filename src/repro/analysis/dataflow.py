"""Intraprocedural effect summaries with call-graph propagation.

The deep-lint rules need two whole-program facts that per-file visitors
cannot establish: *does this function (transitively) touch a
non-reproducible source* (wall clock, process-global RNG), and *is this
function free of externally visible side effects* (I/O, metrics-registry
mutation, module-global writes).  Both reduce to the same shape:

1. an **intraprocedural summary** — one AST walk per function recording
   its direct effects (:func:`function_effects`), classified by kind:

   ========== =====================================================
   kind       direct effect
   ========== =====================================================
   wallclock  ``time.time()``, ``datetime.now()``, ... reads
   rng        stdlib ``random``, legacy ``np.random`` singleton, or
              an unseeded ``default_rng()``
   io         ``open``/``print``/``input`` or file-write methods
   registry   metrics-registry instrument/span/event calls
   global     ``global``/``nonlocal`` declarations (writes by intent)
   ========== =====================================================

2. **propagation over the call graph** — :func:`reachable_effects`
   unions a function's own effects with those of every resolved callee,
   memoised, cycle-safe, with the call chain retained so a finding can
   say *how* the effect is reached.

Summaries are conservative in the lint direction: dynamic calls that
cannot be resolved contribute no transitive effects (per-file rules
still cover direct uses), while the effect *sources* themselves are
matched syntactically and so cannot be hidden behind aliasing tricks
the per-file tier already rejects (literal-name rules).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .base import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import FunctionInfo, ProjectModel

__all__ = ["Effect", "EffectChain", "function_effects", "reachable_effects"]

#: Method names that write to a file-like receiver.
_IO_WRITE_ATTRS = frozenset(
    {"write", "writelines", "write_text", "write_bytes"}
)

#: Builtins that perform I/O outright.
_IO_CALLS = frozenset({"open", "print", "input"})

#: Instrument/span/event factory methods on registries and tracers
#: (mirrors the per-file obs rules) plus the instrument mutators.
_REGISTRY_ATTRS = frozenset(
    {"counter", "gauge", "histogram", "span", "event"}
)


@dataclass(frozen=True)
class Effect:
    """One direct effect inside one function."""

    kind: str  # 'wallclock' | 'rng' | 'io' | 'registry' | 'global'
    detail: str
    qualname: str
    path: str
    line: int


@dataclass(frozen=True)
class EffectChain:
    """An effect plus the call chain that reaches it (origin last)."""

    effect: Effect
    chain: tuple[str, ...]

    def render_chain(self) -> str:
        return " -> ".join(self.chain)


def _receiver_text(node: ast.AST) -> str:
    return dotted_name(node).lower()


def function_effects(
    info: "FunctionInfo", model: "ProjectModel"
) -> list[Effect]:
    """Direct (non-transitive) effects of one function body.

    ``info`` is a :class:`repro.analysis.project.FunctionInfo`; ``model``
    supplies the module import table so from-imported wall-clock names
    (``from time import time``) are recognised.
    """
    # Imported lazily: the rules package imports this module (via
    # ``rules.crossfile``), so a top-level import here would be circular.
    from .rules.determinism import _SEEDABLE_ATTRS, _WALLCLOCK_CALLS

    effects: list[Effect] = []
    aliases = model.imports.get(info.module, {})
    wallclock_names = {
        bound
        for bound, target in aliases.items()
        if target in ("time.time", "time.time_ns")
    }
    default_rng_names = {"default_rng"} | {
        bound
        for bound, target in aliases.items()
        if target == "numpy.random.default_rng"
    }

    def add(kind: str, detail: str, node: ast.AST) -> None:
        effects.append(
            Effect(
                kind=kind,
                detail=detail,
                qualname=info.qualname,
                path=info.path,
                line=getattr(node, "lineno", info.lineno),
            )
        )

    for node in ast.walk(info.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            add(
                "global",
                f"declares {' '.join(node.names)} "
                f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}",
                node,
            )
            continue
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        tail = name.rsplit(".", 1)[-1] if name else ""
        # Wall clock -------------------------------------------------------
        if name in _WALLCLOCK_CALLS or name in wallclock_names:
            add("wallclock", f"wall-clock read `{name}()`", node)
        # RNG --------------------------------------------------------------
        parts = name.split(".")
        if len(parts) >= 2 and parts[-2] == "random":
            if tail not in _SEEDABLE_ATTRS:
                add(
                    "rng",
                    f"process-global RNG draw `{name}()`",
                    node,
                )
        if tail in default_rng_names and _is_unseeded(node):
            add("rng", "unseeded `default_rng()`", node)
        # I/O --------------------------------------------------------------
        if name in _IO_CALLS:
            add("io", f"I/O call `{name}()`", node)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _IO_WRITE_ATTRS
        ):
            add("io", f"file write `.{node.func.attr}()`", node)
        # Metrics registry --------------------------------------------------
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = _receiver_text(node.func.value)
            if attr in _REGISTRY_ATTRS and (
                "registry" in receiver or "tracer" in receiver
            ):
                add("registry", f"registry mutation `.{attr}(...)`", node)
        if tail == "get_registry":
            add("registry", "resolves the process metrics registry", node)
    return effects


def _is_unseeded(node: ast.Call) -> bool:
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return not any(kw.arg == "seed" for kw in node.keywords)


class EffectIndex:
    """Memoised own-effect and transitive-effect queries over a model."""

    def __init__(self, model: "ProjectModel") -> None:
        self.model = model
        self._own: dict[str, list[Effect]] = {}
        self._reach: dict[tuple[str, frozenset[str]], list[EffectChain]] = {}

    def own(self, qualname: str) -> list[Effect]:
        if qualname not in self._own:
            info = self.model.functions.get(qualname)
            self._own[qualname] = (
                function_effects(info, self.model) if info is not None else []
            )
        return self._own[qualname]

    def reachable(
        self, qualname: str, kinds: frozenset[str]
    ) -> list[EffectChain]:
        """Effects of ``kinds`` reachable from ``qualname`` (inclusive)."""
        key = (qualname, kinds)
        cached = self._reach.get(key)
        if cached is not None:
            return cached
        out, _complete = self._walk(qualname, kinds, stack=())
        self._reach[key] = out
        return out

    def _walk(
        self, qualname: str, kinds: frozenset[str], stack: tuple[str, ...]
    ) -> tuple[list[EffectChain], bool]:
        """DFS returning ``(chains, complete)``.

        ``complete`` is False when the walk was cut by a back-edge, in
        which case the result is not memoised — a recursion cycle's
        members otherwise cache a view missing effects that only surface
        once the whole cycle is explored.
        """
        if qualname in stack:
            return [], False
        key = (qualname, kinds)
        cached = self._reach.get(key)
        if cached is not None:
            return cached, True
        stack = stack + (qualname,)
        complete = True
        found: list[EffectChain] = [
            EffectChain(effect=e, chain=(qualname,))
            for e in self.own(qualname)
            if e.kind in kinds
        ]
        for site in self.model.calls.get(qualname, []):
            if site.callee is None or site.callee == qualname:
                continue
            sub, sub_complete = self._walk(site.callee, kinds, stack)
            complete = complete and sub_complete
            for chain in sub:
                found.append(
                    EffectChain(
                        effect=chain.effect,
                        chain=(qualname,) + chain.chain,
                    )
                )
        # Deduplicate by origin effect, keeping the shortest chain.
        best: dict[Effect, EffectChain] = {}
        for chain in found:
            existing = best.get(chain.effect)
            if existing is None or len(chain.chain) < len(existing.chain):
                best[chain.effect] = chain
        out = sorted(
            best.values(), key=lambda c: (c.effect.path, c.effect.line)
        )
        if complete:
            self._reach[key] = out
        return out, complete


def reachable_effects(
    model: "ProjectModel", qualname: str, kinds: frozenset[str]
) -> list[EffectChain]:
    """One-shot convenience wrapper over :class:`EffectIndex`."""
    return EffectIndex(model).reachable(qualname, kinds)
