"""Reporters: render an :class:`AnalysisReport` as text, JSON, or SARIF."""

from __future__ import annotations

import json

from .base import Violation
from .engine import AnalysisReport

__all__ = ["render_json", "render_sarif", "render_text"]

#: SARIF 2.1.0 is the interchange format CI code-scanning UIs ingest.
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_SARIF_VERSION = "2.1.0"


def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.render() for v in report.parse_errors + report.violations]
    total = len(report.violations) + len(report.parse_errors)
    tier = " (deep)" if report.deep else ""
    if total:
        counts = report.counts_by_rule()
        breakdown = ", ".join(
            f"{rule}={n}" for rule, n in sorted(counts.items())
        )
        lines.append("")
        lines.append(
            f"{total} violation(s) in {report.files_checked} file(s){tier}"
            + (f" ({breakdown})" if breakdown else "")
        )
    else:
        lines.append(
            f"ok: {report.files_checked} file(s) clean "
            f"({len(report.rule_ids)} rules){tier}"
        )
    if report.suppressed:
        lines.append(
            f"{len(report.suppressed)} finding(s) suppressed by baseline"
        )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (the shape CI archives as an artifact)."""
    document = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules": report.rule_ids,
        "counts": report.counts_by_rule(),
        "violations": [v.as_dict() for v in report.violations],
        "parse_errors": [v.as_dict() for v in report.parse_errors],
        "suppressed": [v.as_dict() for v in report.suppressed],
        "deep": report.deep,
        "model_cached": report.model_cached,
        "duration_seconds": round(report.duration_seconds, 3),
    }
    return json.dumps(document, indent=2)


def render_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0 document (what CI uploads for code-scanning ingestion).

    Baseline-suppressed findings are *included* with an external
    suppression marker — scanners show them as reviewed, not hidden —
    and parse errors surface under the synthetic ``parse-error`` rule.
    """
    rule_meta = dict(report.rule_meta)
    if report.parse_errors:
        rule_meta.setdefault("parse-error", "File could not be parsed")
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": summary or rule_id},
        }
        for rule_id, summary in sorted(rule_meta.items())
    ]
    results = [_sarif_result(v) for v in report.violations]
    for violation in report.suppressed:
        result = _sarif_result(violation)
        result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    results.extend(_sarif_result(v) for v in report.parse_errors)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "lfo-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)


def _sarif_result(violation: Violation) -> dict:
    return {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/")
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": max(violation.col, 1),
                    },
                }
            }
        ],
    }
