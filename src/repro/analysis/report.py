"""Reporters: render an :class:`AnalysisReport` as text or JSON."""

from __future__ import annotations

import json

from .engine import AnalysisReport

__all__ = ["render_json", "render_text"]


def render_text(report: AnalysisReport) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.render() for v in report.parse_errors + report.violations]
    total = len(report.violations) + len(report.parse_errors)
    if total:
        counts = report.counts_by_rule()
        breakdown = ", ".join(
            f"{rule}={n}" for rule, n in sorted(counts.items())
        )
        lines.append("")
        lines.append(
            f"{total} violation(s) in {report.files_checked} file(s)"
            + (f" ({breakdown})" if breakdown else "")
        )
    else:
        lines.append(
            f"ok: {report.files_checked} file(s) clean "
            f"({len(report.rule_ids)} rules)"
        )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Machine-readable report (the shape CI archives as an artifact)."""
    document = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules": report.rule_ids,
        "counts": report.counts_by_rule(),
        "violations": [v.as_dict() for v in report.violations],
        "parse_errors": [v.as_dict() for v in report.parse_errors],
    }
    return json.dumps(document, indent=2)
