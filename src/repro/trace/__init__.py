"""Trace model, serialisation, synthetic workloads and statistics."""

from .calibration import (
    SizeFit,
    ZipfFit,
    calibration_report,
    fit_sizes,
    fit_zipf,
)
from .record import CostModel, Request, Trace
from .transform import (
    concat,
    interleave,
    modulate_rate,
    sample_objects,
    sample_requests,
)
from .readers import (
    iter_text_requests,
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)
from .stats import TraceStats, compute_stats, popularity_histogram, reuse_distances
from .synthetic import (
    PHOTO_CLASS,
    SOFTWARE_CLASS,
    VIDEO_CLASS,
    WEB_CLASS,
    ContentClass,
    SyntheticConfig,
    generate_adversarial_scan,
    generate_mix_shift_trace,
    generate_mixed_trace,
    generate_trace,
    sample_sizes,
    zipf_weights,
)

__all__ = [
    "SizeFit",
    "ZipfFit",
    "calibration_report",
    "fit_sizes",
    "fit_zipf",
    "concat",
    "interleave",
    "modulate_rate",
    "sample_objects",
    "sample_requests",
    "CostModel",
    "Request",
    "Trace",
    "iter_text_requests",
    "read_binary_trace",
    "read_text_trace",
    "write_binary_trace",
    "write_text_trace",
    "TraceStats",
    "compute_stats",
    "popularity_histogram",
    "reuse_distances",
    "ContentClass",
    "SyntheticConfig",
    "WEB_CLASS",
    "PHOTO_CLASS",
    "VIDEO_CLASS",
    "SOFTWARE_CLASS",
    "generate_adversarial_scan",
    "generate_mix_shift_trace",
    "generate_mixed_trace",
    "generate_trace",
    "sample_sizes",
    "zipf_weights",
]
