"""Synthetic CDN workload generation.

The paper evaluates on a week-long production trace from a top-ten US
website, which is not publicly redistributable.  This module substitutes a
parameterised generator that reproduces the trace characteristics the paper
relies on (see DESIGN.md, "Substitutions"):

* Zipf-like object popularity with a long tail of one-hit wonders
  ("a large fraction of CDN objects receives fewer than 5 requests", §2.2).
* Highly variable object sizes — the paper's free-bytes feature matters
  because "evictions can temporarily free up lots of space (e.g., evicting a
  GB-large object)".
* A *mix* of content classes (web, photos, video segments, software
  downloads) whose proportions can shift over time, modelling the
  load-balancer-induced content-mix changes of §1.
* Temporal locality: requests to an object cluster in time, which is what
  makes inter-request gaps informative features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .record import Request, Trace

__all__ = [
    "ContentClass",
    "WEB_CLASS",
    "PHOTO_CLASS",
    "VIDEO_CLASS",
    "SOFTWARE_CLASS",
    "SyntheticConfig",
    "generate_trace",
    "generate_mixed_trace",
    "generate_mix_shift_trace",
    "generate_adversarial_scan",
    "zipf_weights",
    "sample_sizes",
]


def zipf_weights(n_objects: int, alpha: float) -> np.ndarray:
    """Normalised Zipf popularity weights for ranks 1..n (rank 1 hottest)."""
    if n_objects <= 0:
        raise ValueError("n_objects must be positive")
    ranks = np.arange(1, n_objects + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def sample_sizes(
    rng: np.random.Generator,
    n_objects: int,
    median: float,
    sigma: float,
    max_size: int,
    min_size: int = 1,
) -> np.ndarray:
    """Lognormal object sizes clipped to ``[min_size, max_size]``.

    A lognormal body with a wide ``sigma`` reproduces the heavy-tailed CDN
    size distributions reported in [12, 33, 51].
    """
    raw = rng.lognormal(mean=np.log(median), sigma=sigma, size=n_objects)
    return np.clip(raw, min_size, max_size).astype(np.int64)


@dataclass(frozen=True)
class ContentClass:
    """One content type in the CDN mix (e.g. web, video, software).

    Attributes:
        name: human-readable label.
        n_objects: catalogue size for this class.
        alpha: Zipf skew of object popularity within the class.
        size_median: median object size in bytes.
        size_sigma: lognormal sigma of the size distribution.
        size_max: hard upper bound on object size in bytes.
        cost_median: when set, per-object retrieval costs are drawn
            lognormally around this median (modelling origin latency, §2.1
            of the paper); when None, cost defaults to the object size
            (the BHR objective).
        cost_sigma: lognormal sigma of the cost distribution.
    """

    name: str
    n_objects: int
    alpha: float
    size_median: float
    size_sigma: float
    size_max: int
    cost_median: float | None = None
    cost_sigma: float = 0.5


# Calibrated loosely to the content types the paper's introduction names.
WEB_CLASS = ContentClass("web", 4000, 0.9, 12_000, 1.2, 2_000_000)
PHOTO_CLASS = ContentClass("photo", 8000, 0.7, 40_000, 0.9, 4_000_000)
VIDEO_CLASS = ContentClass("video", 1500, 1.1, 1_500_000, 0.8, 50_000_000)
SOFTWARE_CLASS = ContentClass("software", 200, 1.3, 20_000_000, 1.0, 1_000_000_000)


@dataclass
class SyntheticConfig:
    """Configuration of a single-class synthetic trace."""

    n_requests: int = 100_000
    n_objects: int = 10_000
    alpha: float = 0.8
    size_median: float = 32_000.0
    size_sigma: float = 1.4
    size_max: int = 1_000_000_000
    #: Mean logical time between requests (Poisson arrivals when > 0).
    mean_interarrival: float = 1.0
    #: Temporal-locality knob: probability that the next request re-draws
    #: from the recent working set instead of the global catalogue.
    locality: float = 0.0
    #: Size of the recent working set used by the locality re-draw.
    locality_window: int = 256
    seed: int = 42


def _emit_requests(
    rng: np.random.Generator,
    object_ids: np.ndarray,
    weights: np.ndarray,
    sizes_by_id: dict[int, int],
    n_requests: int,
    mean_interarrival: float,
    locality: float,
    locality_window: int,
    start_time: float = 0.0,
) -> list[Request]:
    """Draw ``n_requests`` requests from a weighted catalogue."""
    draws = rng.choice(object_ids, size=n_requests, p=weights)
    if mean_interarrival > 0:
        gaps = rng.exponential(mean_interarrival, size=n_requests)
    else:
        gaps = np.ones(n_requests)
    times = start_time + np.cumsum(gaps)

    requests: list[Request] = []
    recent: list[int] = []
    use_locality = locality > 0.0
    local_flags = rng.random(n_requests) < locality if use_locality else None
    local_picks = (
        rng.integers(0, locality_window, size=n_requests) if use_locality else None
    )
    for i in range(n_requests):
        obj = int(draws[i])
        if use_locality and recent and local_flags[i]:
            obj = recent[local_picks[i] % len(recent)]
        requests.append(Request(float(times[i]), obj, sizes_by_id[obj]))
        if use_locality:
            recent.append(obj)
            if len(recent) > locality_window:
                recent.pop(0)
    return requests


def generate_trace(config: SyntheticConfig) -> Trace:
    """Generate a single-class Zipf trace per ``config``."""
    rng = np.random.default_rng(config.seed)
    weights = zipf_weights(config.n_objects, config.alpha)
    sizes = sample_sizes(
        rng, config.n_objects, config.size_median, config.size_sigma,
        config.size_max,
    )
    object_ids = np.arange(config.n_objects, dtype=np.int64)
    sizes_by_id = {int(o): int(s) for o, s in zip(object_ids, sizes)}
    requests = _emit_requests(
        rng, object_ids, weights, sizes_by_id, config.n_requests,
        config.mean_interarrival, config.locality, config.locality_window,
    )
    return Trace(requests, name=f"zipf(a={config.alpha},n={config.n_objects})")


def generate_mixed_trace(
    classes: Sequence[ContentClass],
    class_shares: Sequence[float],
    n_requests: int,
    seed: int = 42,
    mean_interarrival: float = 1.0,
) -> Trace:
    """Generate a trace mixing several content classes.

    ``class_shares`` gives the fraction of requests drawn from each class;
    shares are normalised if they do not sum to one.  Object-id spaces of the
    classes are disjoint.
    """
    if len(classes) != len(class_shares):
        raise ValueError("classes and class_shares must have the same length")
    shares = np.asarray(class_shares, dtype=np.float64)
    if (shares < 0).any() or shares.sum() <= 0:
        raise ValueError("class_shares must be non-negative and sum > 0")
    shares = shares / shares.sum()

    rng = np.random.default_rng(seed)
    catalogues = _build_catalogues(rng, classes)

    class_draw = rng.choice(len(classes), size=n_requests, p=shares)
    gaps = rng.exponential(mean_interarrival, size=n_requests)
    times = np.cumsum(gaps)

    requests: list[Request] = []
    for i in range(n_requests):
        ids, weights, sizes_by_id, costs_by_id = catalogues[class_draw[i]]
        obj = int(rng.choice(ids, p=weights))
        requests.append(
            Request(
                float(times[i]), obj, sizes_by_id[obj],
                costs_by_id.get(obj, -1.0),
            )
        )
    return Trace(requests, name="mixed")


def _build_catalogues(
    rng: np.random.Generator, classes: Sequence[ContentClass]
) -> list[tuple]:
    """Per-class (ids, weights, sizes, costs) with disjoint id spaces."""
    catalogues = []
    base = 0
    for cls in classes:
        ids = np.arange(base, base + cls.n_objects, dtype=np.int64)
        weights = zipf_weights(cls.n_objects, cls.alpha)
        sizes = sample_sizes(
            rng, cls.n_objects, cls.size_median, cls.size_sigma, cls.size_max
        )
        costs_by_id: dict[int, float] = {}
        if cls.cost_median is not None:
            costs = rng.lognormal(
                mean=np.log(cls.cost_median), sigma=cls.cost_sigma,
                size=cls.n_objects,
            )
            costs_by_id = {int(o): float(c) for o, c in zip(ids, costs)}
        catalogues.append(
            (ids, weights, {int(o): int(s) for o, s in zip(ids, sizes)},
             costs_by_id)
        )
        base += cls.n_objects
    return catalogues


def generate_mix_shift_trace(
    classes: Sequence[ContentClass],
    phase_shares: Sequence[Sequence[float]],
    requests_per_phase: int,
    seed: int = 42,
) -> Trace:
    """Generate a trace whose content mix shifts between phases.

    Models the §1 scenario where load balancing redirects a different content
    mix to a server "within minutes": each phase draws ``requests_per_phase``
    requests with its own class shares, over a shared catalogue so object
    history carries across phases.
    """
    rng = np.random.default_rng(seed)
    catalogues = _build_catalogues(rng, classes)

    requests: list[Request] = []
    time = 0.0
    for shares_raw in phase_shares:
        shares = np.asarray(shares_raw, dtype=np.float64)
        shares = shares / shares.sum()
        class_draw = rng.choice(len(classes), size=requests_per_phase, p=shares)
        gaps = rng.exponential(1.0, size=requests_per_phase)
        for i in range(requests_per_phase):
            time += float(gaps[i])
            ids, weights, sizes_by_id, costs_by_id = catalogues[class_draw[i]]
            obj = int(rng.choice(ids, p=weights))
            requests.append(
                Request(time, obj, sizes_by_id[obj], costs_by_id.get(obj, -1.0))
            )
    return Trace(requests, name="mix-shift")


def generate_adversarial_scan(
    n_requests: int,
    object_size: int = 64_000,
    seed: int = 0,
    start_obj: int = 10_000_000,
    start_time: float = 0.0,
) -> Trace:
    """A one-touch scan: every request hits a brand-new object.

    Scans are the classic adversarial pattern for admission policies — an
    LRU cache pollutes completely, while OPT admits nothing.  Useful for
    robustness tests (§1: "unexpected (or even adversarial) traffic").
    """
    del seed  # deterministic by construction; kept for API symmetry
    requests = [
        Request(start_time + i, start_obj + i, object_size)
        for i in range(n_requests)
    ]
    return Trace(requests, name="scan")
