"""Trace transformations: sampling, interleaving, rate modulation.

CDN measurement practice (and the webcachesim line of tools the paper's
evaluation methodology descends from) routinely needs to reshape traces:

* :func:`sample_objects` — consistent per-object sampling ("sharding"), the
  standard way to scale a trace down without destroying per-object request
  sequences;
* :func:`sample_requests` — i.i.d. request thinning (kept for comparison;
  note it *does* bias reuse distances, which :func:`sample_objects` avoids);
* :func:`interleave` — merge several traces by timestamp (multi-tenant
  servers, or mixing a synthetic attack into a base load);
* :func:`modulate_rate` — re-time a trace with a diurnal-style rate
  profile;
* :func:`concat` — play traces back-to-back with shifted timestamps.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import numpy as np

from .record import Request, Trace

__all__ = [
    "sample_objects",
    "sample_requests",
    "interleave",
    "modulate_rate",
    "concat",
]


def sample_objects(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Keep all requests of a ``fraction`` of objects (consistent shard).

    Hash-based object selection keeps every request of a kept object, so
    reuse distances *within* an object are preserved — the property cache
    experiments need.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    unique = np.unique(trace.objs)
    keep_count = max(1, int(round(fraction * len(unique))))
    kept = set(
        int(o) for o in rng.choice(unique, size=keep_count, replace=False)
    )
    return Trace(
        [r for r in trace if r.obj in kept],
        name=f"{trace.name}|shard({fraction:g})",
    )


def sample_requests(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Keep each request independently with probability ``fraction``.

    Biases reuse distances (they stretch by ~1/fraction); prefer
    :func:`sample_objects` for hit-ratio experiments.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(trace)) < fraction
    return Trace(
        [r for r, k in zip(trace, keep) if k],
        name=f"{trace.name}|thin({fraction:g})",
    )


def interleave(traces: Sequence[Trace], name: str = "interleaved") -> Trace:
    """Merge traces by timestamp.

    Object-id spaces must already be disjoint if the tenants are meant to
    be distinct objects (the function does not remap ids).
    """
    if not traces:
        raise ValueError("need at least one trace")
    streams = [iter(t.requests) for t in traces]
    merged = heapq.merge(*streams, key=lambda r: r.time)
    return Trace(list(merged), name=name)


def modulate_rate(
    trace: Trace,
    rate_fn: Callable[[float], float],
    name: str | None = None,
) -> Trace:
    """Re-time a trace according to a positive, time-varying rate profile.

    ``rate_fn(t)`` gives the *speed-up factor* at original time ``t``: new
    inter-arrival gaps are the original gaps divided by the rate.  A
    diurnal profile is e.g. ``lambda t: 1.5 + sin(2 pi t / 86400)``.
    Request order, objects and sizes are unchanged — only timestamps move,
    which is exactly what gap-based features observe.
    """
    if len(trace) == 0:
        return Trace([], name=name or trace.name)
    times = trace.times
    new_times = np.empty(len(trace))
    new_times[0] = times[0]
    for i in range(1, len(times)):
        rate = rate_fn(float(times[i]))
        if rate <= 0:
            raise ValueError(f"rate_fn must be positive, got {rate} at t={times[i]}")
        gap = (times[i] - times[i - 1]) / rate
        new_times[i] = new_times[i - 1] + gap
    requests = [
        Request(float(new_times[i]), r.obj, r.size, r.cost)
        for i, r in enumerate(trace)
    ]
    return Trace(requests, name=name or f"{trace.name}|modulated")


def concat(traces: Sequence[Trace], gap: float = 1.0, name: str = "concat") -> Trace:
    """Play traces back-to-back, shifting timestamps to stay monotone."""
    if not traces:
        raise ValueError("need at least one trace")
    requests: list[Request] = []
    offset = 0.0
    for t in traces:
        if len(t) == 0:
            continue
        base = float(t.times[0])
        for r in t:
            requests.append(Request(offset + (r.time - base), r.obj, r.size, r.cost))
        offset = requests[-1].time + gap if requests else offset
    return Trace(requests, name=name)
