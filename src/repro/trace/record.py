"""Request and trace containers.

A *trace* is an ordered sequence of requests, each identified by an object id,
a size in bytes, and an optional retrieval cost.  This mirrors the anonymised
CDN trace format used in the paper (sequence number, object id, object size),
extended with the per-object cost that the OPT formulation needs (Section 2.1
of the paper: cost = size to optimise byte hit ratio, cost = 1 to optimise
object hit ratio, or an arbitrary retrieval latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Request", "Trace", "CostModel"]


@dataclass(frozen=True, slots=True)
class Request:
    """One cache request.

    Attributes:
        time: logical timestamp (monotonically non-decreasing sequence number
            or wall-clock seconds).
        obj: object identifier.
        size: object size in bytes (must be positive).
        cost: retrieval cost of a miss for this object.  Defaults to the
            object size, which makes the OPT objective the byte hit ratio.
    """

    time: float
    obj: int
    size: int
    cost: float = -1.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.cost < 0:
            object.__setattr__(self, "cost", float(self.size))


class CostModel:
    """Named cost assignments from the paper (Section 2.1)."""

    #: Optimise the byte hit ratio: cost equals object size.
    BHR = "bhr"
    #: Optimise the object hit ratio: every miss costs 1.
    OHR = "ohr"
    #: Keep whatever per-request costs the trace carries.
    TRACE = "trace"

    @staticmethod
    def apply(requests: Iterable[Request], model: str) -> list[Request]:
        """Return a new request list with costs set per ``model``."""
        if model == CostModel.BHR:
            return [
                Request(r.time, r.obj, r.size, float(r.size)) for r in requests
            ]
        if model == CostModel.OHR:
            return [Request(r.time, r.obj, r.size, 1.0) for r in requests]
        if model == CostModel.TRACE:
            return list(requests)
        raise ValueError(f"unknown cost model: {model!r}")


@dataclass
class Trace:
    """An ordered sequence of requests with columnar accessors.

    The columnar views (`times`, `objs`, `sizes`, `costs`) are materialised
    lazily as numpy arrays and cached; they are invalidated whenever requests
    are appended.
    """

    requests: list[Request] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        self._columns: dict[str, np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.requests[index], name=self.name)
        return self.requests[index]

    def append(self, request: Request) -> None:
        """Append one request, invalidating cached columnar views."""
        self.requests.append(request)
        self._columns = None

    def extend(self, requests: Iterable[Request]) -> None:
        """Append many requests, invalidating cached columnar views."""
        self.requests.extend(requests)
        self._columns = None

    # -- columnar views ----------------------------------------------------

    def _materialise(self) -> dict[str, np.ndarray]:
        if self._columns is None:
            n = len(self.requests)
            times = np.empty(n, dtype=np.float64)
            objs = np.empty(n, dtype=np.int64)
            sizes = np.empty(n, dtype=np.int64)
            costs = np.empty(n, dtype=np.float64)
            for i, r in enumerate(self.requests):
                times[i] = r.time
                objs[i] = r.obj
                sizes[i] = r.size
                costs[i] = r.cost
            self._columns = {
                "times": times,
                "objs": objs,
                "sizes": sizes,
                "costs": costs,
            }
        return self._columns

    @property
    def times(self) -> np.ndarray:
        """Timestamps as a float64 array."""
        return self._materialise()["times"]

    @property
    def objs(self) -> np.ndarray:
        """Object ids as an int64 array."""
        return self._materialise()["objs"]

    @property
    def sizes(self) -> np.ndarray:
        """Object sizes as an int64 array."""
        return self._materialise()["sizes"]

    @property
    def costs(self) -> np.ndarray:
        """Retrieval costs as a float64 array."""
        return self._materialise()["costs"]

    # -- derived structure ---------------------------------------------------

    def next_occurrence(self) -> np.ndarray:
        """Index of the next request to the same object, or -1 if none.

        This is the `L_i` building block of the paper's ranking-axis pruning
        (Section 2.1) and of the OPT min-cost-flow graph (bypass edges connect
        consecutive requests to the same object).
        """
        objs = self.objs
        nxt = np.full(len(objs), -1, dtype=np.int64)
        last_seen: dict[int, int] = {}
        for i in range(len(objs) - 1, -1, -1):
            o = int(objs[i])
            nxt[i] = last_seen.get(o, -1)
            last_seen[o] = i
        return nxt

    def prev_occurrence(self) -> np.ndarray:
        """Index of the previous request to the same object, or -1 if none."""
        objs = self.objs
        prv = np.full(len(objs), -1, dtype=np.int64)
        last_seen: dict[int, int] = {}
        for i in range(len(objs)):
            o = int(objs[i])
            prv[i] = last_seen.get(o, -1)
            last_seen[o] = i
        return prv

    def unique_objects(self) -> np.ndarray:
        """Sorted array of distinct object ids."""
        return np.unique(self.objs)

    def total_bytes(self) -> int:
        """Sum of request sizes (bytes moved if nothing were cached)."""
        return int(self.sizes.sum())

    def footprint(self) -> int:
        """Sum of distinct object sizes (working-set size in bytes)."""
        objs = self.objs
        sizes = self.sizes
        seen: dict[int, int] = {}
        for o, s in zip(objs.tolist(), sizes.tolist()):
            seen[o] = s
        return int(sum(seen.values()))

    def windows(self, window: int) -> Iterator["Trace"]:
        """Yield consecutive fixed-size windows ``W[t]`` (the paper's Fig. 2).

        The final partial window is yielded as well if non-empty.
        """
        if window <= 0:
            raise ValueError("window size must be positive")
        for start in range(0, len(self.requests), window):
            chunk = self.requests[start : start + window]
            if chunk:
                yield Trace(chunk, name=f"{self.name}[{start}:{start + len(chunk)}]")

    def validate(self) -> None:
        """Raise ``ValueError`` on malformed traces (time going backwards,
        inconsistent sizes for the same object id)."""
        last_time = float("-inf")
        sizes: dict[int, int] = {}
        for i, r in enumerate(self.requests):
            if r.time < last_time:
                raise ValueError(
                    f"request {i}: time {r.time} precedes {last_time}"
                )
            last_time = r.time
            known = sizes.get(r.obj)
            if known is not None and known != r.size:
                raise ValueError(
                    f"request {i}: object {r.obj} size changed "
                    f"{known} -> {r.size}"
                )
            sizes[r.obj] = r.size
