"""Trace statistics used to sanity-check workloads against CDN lore.

These summarise the properties the paper's arguments depend on: popularity
skew (long tail of barely-requested objects, §2.2), size variability (§2.2
free-bytes discussion), and reuse distances (what makes gap features
informative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .record import Trace

__all__ = ["TraceStats", "compute_stats", "popularity_histogram", "reuse_distances"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace."""

    n_requests: int
    n_objects: int
    total_bytes: int
    footprint_bytes: int
    one_hit_wonder_ratio: float
    under_five_requests_ratio: float
    mean_size: float
    median_size: float
    p99_size: float
    max_size: int
    compulsory_miss_ratio: float

    def as_dict(self) -> dict:
        """Plain-dict view for table printing."""
        return {
            "n_requests": self.n_requests,
            "n_objects": self.n_objects,
            "total_bytes": self.total_bytes,
            "footprint_bytes": self.footprint_bytes,
            "one_hit_wonder_ratio": self.one_hit_wonder_ratio,
            "under_five_requests_ratio": self.under_five_requests_ratio,
            "mean_size": self.mean_size,
            "median_size": self.median_size,
            "p99_size": self.p99_size,
            "max_size": self.max_size,
            "compulsory_miss_ratio": self.compulsory_miss_ratio,
        }


def compute_stats(trace: Trace) -> TraceStats:
    """Compute :class:`TraceStats` for a trace."""
    if len(trace) == 0:
        raise ValueError("cannot compute statistics of an empty trace")
    objs = trace.objs
    sizes = trace.sizes
    unique, counts = np.unique(objs, return_counts=True)
    n_objects = len(unique)
    one_hit = float((counts == 1).sum()) / n_objects
    under_five = float((counts < 5).sum()) / n_objects
    # Per-object size: first occurrence wins.
    seen = set()
    footprint = 0
    for o, s in zip(objs.tolist(), sizes.tolist()):
        if o not in seen:
            seen.add(o)
            footprint += s
    return TraceStats(
        n_requests=len(trace),
        n_objects=n_objects,
        total_bytes=int(sizes.sum()),
        footprint_bytes=footprint,
        one_hit_wonder_ratio=one_hit,
        under_five_requests_ratio=under_five,
        mean_size=float(sizes.mean()),
        median_size=float(np.median(sizes)),
        p99_size=float(np.percentile(sizes, 99)),
        max_size=int(sizes.max()),
        compulsory_miss_ratio=n_objects / len(trace),
    )


def popularity_histogram(trace: Trace, buckets: int = 20) -> np.ndarray:
    """Histogram of per-object request counts (log2 buckets).

    Bucket ``b`` counts objects with request count in ``[2**b, 2**(b+1))``.
    """
    _, counts = np.unique(trace.objs, return_counts=True)
    logs = np.floor(np.log2(counts)).astype(np.int64)
    logs = np.clip(logs, 0, buckets - 1)
    hist = np.bincount(logs, minlength=buckets)
    return hist


def reuse_distances(trace: Trace) -> np.ndarray:
    """Inter-request distance (in requests) to each request's next use.

    Returns -1 where an object is never requested again.  This is the
    ``L_i`` quantity in the paper's ranking function ``C_i / (S_i * L_i)``.
    """
    nxt = trace.next_occurrence()
    idx = np.arange(len(nxt))
    out = np.where(nxt >= 0, nxt - idx, -1)
    return out
