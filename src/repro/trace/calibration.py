"""Workload calibration: fit popularity/size models to a trace.

These estimators close the loop between measured traces and the synthetic
generator: fit a Zipf exponent and a lognormal size model to any trace
(e.g. an open CDN trace), then feed the estimates into
:class:`repro.trace.synthetic.SyntheticConfig` to generate look-alike
workloads.  They also back the realism checks in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from .record import Trace

__all__ = ["ZipfFit", "fit_zipf", "SizeFit", "fit_sizes", "calibration_report"]


@dataclass(frozen=True)
class ZipfFit:
    """Maximum-likelihood Zipf exponent over object popularity ranks.

    Attributes:
        alpha: fitted exponent of ``p(rank) ~ rank**-alpha``.
        n_objects: number of distinct objects.
        log_likelihood: attained log-likelihood.
    """

    alpha: float
    n_objects: int
    log_likelihood: float


def fit_zipf(trace: Trace) -> ZipfFit:
    """Fit a Zipf exponent to a trace's empirical popularity ranks.

    The likelihood of observing counts ``c_r`` at ranks ``r`` under
    ``p(r) = r**-a / H(a)`` is maximised over ``a`` by 1-D optimisation.
    """
    if len(trace) == 0:
        raise ValueError("cannot fit an empty trace")
    _, counts = np.unique(trace.objs, return_counts=True)
    counts = np.sort(counts)[::-1].astype(np.float64)
    ranks = np.arange(1, len(counts) + 1, dtype=np.float64)
    log_ranks = np.log(ranks)

    def neg_log_likelihood(alpha: float) -> float:
        log_weights = -alpha * log_ranks
        log_norm = np.log(np.exp(log_weights - log_weights.max()).sum())
        log_norm += log_weights.max()
        return -float((counts * (log_weights - log_norm)).sum())

    result = optimize.minimize_scalar(
        neg_log_likelihood, bounds=(0.0, 5.0), method="bounded"
    )
    return ZipfFit(
        alpha=float(result.x),
        n_objects=len(counts),
        log_likelihood=-float(result.fun),
    )


@dataclass(frozen=True)
class SizeFit:
    """Lognormal fit of per-object sizes.

    Attributes:
        median: fitted size median (bytes).
        sigma: fitted lognormal sigma.
        max_size: observed maximum (bytes).
    """

    median: float
    sigma: float
    max_size: int


def fit_sizes(trace: Trace) -> SizeFit:
    """Fit a lognormal to the distinct-object size distribution."""
    if len(trace) == 0:
        raise ValueError("cannot fit an empty trace")
    seen: dict[int, int] = {}
    for obj, size in zip(trace.objs.tolist(), trace.sizes.tolist()):
        seen.setdefault(obj, size)
    sizes = np.array(list(seen.values()), dtype=np.float64)
    logs = np.log(sizes)
    return SizeFit(
        median=float(np.exp(np.median(logs))),
        sigma=float(logs.std()),
        max_size=int(sizes.max()),
    )


def calibration_report(trace: Trace) -> dict:
    """One-stop summary used to seed :class:`SyntheticConfig` fields."""
    zipf = fit_zipf(trace)
    sizes = fit_sizes(trace)
    return {
        "n_requests": len(trace),
        "n_objects": zipf.n_objects,
        "alpha": zipf.alpha,
        "size_median": sizes.median,
        "size_sigma": sizes.sigma,
        "size_max": sizes.max_size,
    }
