"""Trace serialisation: text (CSV/TSV) and a compact binary format.

The text format mirrors the anonymised format of the paper's production
trace: one request per line, ``time obj size [cost]``, whitespace- or
comma-separated.  The binary format is a little-endian numpy container for
fast round-trips of large synthetic traces.
"""

from __future__ import annotations

import io
import logging
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

import numpy as np

from ..obs import get_registry
from ..resilience.faults import get_fault_plan
from .record import Request, Trace

logger = logging.getLogger("repro.trace")

__all__ = [
    "read_text_trace",
    "write_text_trace",
    "read_binary_trace",
    "write_binary_trace",
    "iter_text_requests",
]

_MAGIC = b"LFOTRACE"
_VERSION = 1

PathOrIO = Union[str, Path, IO]


def _open(path_or_file: PathOrIO, mode: str) -> tuple[IO, bool]:
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def _describe(path_or_file: PathOrIO) -> str:
    """The source name error messages and skip logs refer to."""
    if isinstance(path_or_file, (str, Path)):
        return str(path_or_file)
    return str(getattr(path_or_file, "name", "<stream>"))


def _parse_line(line: str) -> Request:
    """Parse one data line; raises ``ValueError`` on any malformation."""
    parts = line.replace(",", " ").split()
    if len(parts) not in (3, 4):
        raise ValueError(f"expected 3 or 4 fields, got {len(parts)}")
    try:
        time = float(parts[0])
        obj = int(parts[1])
        size = int(parts[2])
        cost = float(parts[3]) if len(parts) == 4 else -1.0
    except ValueError:
        raise ValueError("non-numeric field") from None
    return Request(time, obj, size, cost)


def iter_text_requests(
    path_or_file: PathOrIO, tolerant: bool = False
) -> Iterator[Request]:
    """Stream requests from a text trace without materialising it.

    Lines starting with ``#`` and blank lines are skipped.  Fields may be
    separated by commas or arbitrary whitespace: a 3-field line is
    ``time obj size``, a 4-field line appends an explicit per-request
    retrieval cost.  An omitted cost is read as the ``-1.0`` sentinel,
    which :class:`repro.trace.Request` resolves to ``cost = size`` on
    construction (the byte-hit-ratio objective).

    Strict vs tolerant: by default (``tolerant=False``) the first
    malformed line aborts the stream with a :class:`ValueError` naming the
    source, the line number, and the offending content (truncated).  With
    ``tolerant=True`` malformed lines are skipped instead: each skip bumps
    the ``resilience.trace_lines_skipped`` counter on the active
    :mod:`repro.obs` registry and is logged (the first at WARNING, the
    rest at DEBUG), and parsing continues with the next line.

    An installed :class:`repro.resilience.FaultPlan` with a
    ``trace.read_line`` fault corrupts matching data lines before parsing
    — the deterministic way to drill the tolerant path.
    """
    source = _describe(path_or_file)
    handle, should_close = _open(path_or_file, "r")
    plan = get_fault_plan()
    registry = get_registry()
    skipped = 0
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if plan is not None:
                line = plan.corrupt_line(line)
            try:
                yield _parse_line(line)
            except ValueError as exc:
                if not tolerant:
                    raise ValueError(
                        f"{source}: line {lineno}: {exc} "
                        f"(offending line: {line[:80]!r})"
                    ) from None
                skipped += 1
                registry.counter("resilience.trace_lines_skipped").inc()
                log = logger.warning if skipped == 1 else logger.debug
                log(
                    "%s: line %d skipped in tolerant mode (%s): %r",
                    source, lineno, exc, line[:80],
                )
    finally:
        if should_close:
            handle.close()


def read_text_trace(
    path_or_file: PathOrIO, name: str = "trace", tolerant: bool = False
) -> Trace:
    """Read a whole text trace into memory.

    ``tolerant`` forwards to :func:`iter_text_requests`: skip-and-count
    malformed lines instead of raising on the first one.
    """
    return Trace(
        list(iter_text_requests(path_or_file, tolerant=tolerant)), name=name
    )


def write_text_trace(
    trace_or_requests: Union[Trace, Iterable[Request]],
    path_or_file: PathOrIO,
    include_cost: bool = True,
) -> None:
    """Write a trace as whitespace-separated text."""
    handle, should_close = _open(path_or_file, "w")
    try:
        handle.write("# time obj size" + (" cost" if include_cost else "") + "\n")
        for r in trace_or_requests:
            if include_cost:
                handle.write(f"{r.time:g} {r.obj} {r.size} {r.cost:g}\n")
            else:
                handle.write(f"{r.time:g} {r.obj} {r.size}\n")
    finally:
        if should_close:
            handle.close()


def write_binary_trace(trace: Trace, path_or_file: PathOrIO) -> None:
    """Write a trace in the compact binary container format.

    Layout: 8-byte magic, uint32 version, uint64 count, then four contiguous
    arrays (times f8, objs i8, sizes i8, costs f8), all little-endian.
    """
    handle, should_close = _open(path_or_file, "wb")
    try:
        handle.write(_MAGIC)
        handle.write(struct.pack("<IQ", _VERSION, len(trace)))
        handle.write(trace.times.astype("<f8").tobytes())
        handle.write(trace.objs.astype("<i8").tobytes())
        handle.write(trace.sizes.astype("<i8").tobytes())
        handle.write(trace.costs.astype("<f8").tobytes())
    finally:
        if should_close:
            handle.close()


def read_binary_trace(path_or_file: PathOrIO, name: str = "trace") -> Trace:
    """Read a trace written by :func:`write_binary_trace`.

    All format errors raise :class:`ValueError` naming the source file, so
    an operator can tell *which* trace of a batch is bad.
    """
    source = _describe(path_or_file)
    handle, should_close = _open(path_or_file, "rb")
    try:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{source}: not an LFO binary trace (bad magic)")
        header = handle.read(12)
        if len(header) != 12:
            raise ValueError(f"{source}: truncated binary trace header")
        version, count = struct.unpack("<IQ", header)
        if version != _VERSION:
            raise ValueError(f"{source}: unsupported trace version {version}")
        times = np.frombuffer(handle.read(8 * count), dtype="<f8")
        objs = np.frombuffer(handle.read(8 * count), dtype="<i8")
        sizes = np.frombuffer(handle.read(8 * count), dtype="<i8")
        costs = np.frombuffer(handle.read(8 * count), dtype="<f8")
        if len(costs) != count:
            raise ValueError(
                f"{source}: truncated binary trace "
                f"(expected {count} requests, read {len(costs)} cost entries)"
            )
        requests = [
            Request(float(t), int(o), int(s), float(c))
            for t, o, s, c in zip(times, objs, sizes, costs)
        ]
        return Trace(requests, name=name)
    finally:
        if should_close:
            handle.close()
