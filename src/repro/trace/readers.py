"""Trace serialisation: text (CSV/TSV) and a compact binary format.

The text format mirrors the anonymised format of the paper's production
trace: one request per line, ``time obj size [cost]``, whitespace- or
comma-separated.  The binary format is a little-endian numpy container for
fast round-trips of large synthetic traces.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

import numpy as np

from .record import Request, Trace

__all__ = [
    "read_text_trace",
    "write_text_trace",
    "read_binary_trace",
    "write_binary_trace",
    "iter_text_requests",
]

_MAGIC = b"LFOTRACE"
_VERSION = 1

PathOrIO = Union[str, Path, IO]


def _open(path_or_file: PathOrIO, mode: str) -> tuple[IO, bool]:
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def iter_text_requests(path_or_file: PathOrIO) -> Iterator[Request]:
    """Stream requests from a text trace without materialising it.

    Lines starting with ``#`` and blank lines are skipped.  Fields may be
    separated by commas or arbitrary whitespace.
    """
    handle, should_close = _open(path_or_file, "r")
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"line {lineno}: expected 3 or 4 fields, got {len(parts)}"
                )
            time = float(parts[0])
            obj = int(parts[1])
            size = int(parts[2])
            cost = float(parts[3]) if len(parts) == 4 else -1.0
            yield Request(time, obj, size, cost)
    finally:
        if should_close:
            handle.close()


def read_text_trace(path_or_file: PathOrIO, name: str = "trace") -> Trace:
    """Read a whole text trace into memory."""
    return Trace(list(iter_text_requests(path_or_file)), name=name)


def write_text_trace(
    trace_or_requests: Union[Trace, Iterable[Request]],
    path_or_file: PathOrIO,
    include_cost: bool = True,
) -> None:
    """Write a trace as whitespace-separated text."""
    handle, should_close = _open(path_or_file, "w")
    try:
        handle.write("# time obj size" + (" cost" if include_cost else "") + "\n")
        for r in trace_or_requests:
            if include_cost:
                handle.write(f"{r.time:g} {r.obj} {r.size} {r.cost:g}\n")
            else:
                handle.write(f"{r.time:g} {r.obj} {r.size}\n")
    finally:
        if should_close:
            handle.close()


def write_binary_trace(trace: Trace, path_or_file: PathOrIO) -> None:
    """Write a trace in the compact binary container format.

    Layout: 8-byte magic, uint32 version, uint64 count, then four contiguous
    arrays (times f8, objs i8, sizes i8, costs f8), all little-endian.
    """
    handle, should_close = _open(path_or_file, "wb")
    try:
        handle.write(_MAGIC)
        handle.write(struct.pack("<IQ", _VERSION, len(trace)))
        handle.write(trace.times.astype("<f8").tobytes())
        handle.write(trace.objs.astype("<i8").tobytes())
        handle.write(trace.sizes.astype("<i8").tobytes())
        handle.write(trace.costs.astype("<f8").tobytes())
    finally:
        if should_close:
            handle.close()


def read_binary_trace(path_or_file: PathOrIO, name: str = "trace") -> Trace:
    """Read a trace written by :func:`write_binary_trace`."""
    handle, should_close = _open(path_or_file, "rb")
    try:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError("not an LFO binary trace (bad magic)")
        version, count = struct.unpack("<IQ", handle.read(12))
        if version != _VERSION:
            raise ValueError(f"unsupported trace version {version}")
        times = np.frombuffer(handle.read(8 * count), dtype="<f8")
        objs = np.frombuffer(handle.read(8 * count), dtype="<i8")
        sizes = np.frombuffer(handle.read(8 * count), dtype="<i8")
        costs = np.frombuffer(handle.read(8 * count), dtype="<f8")
        if len(costs) != count:
            raise ValueError("truncated binary trace")
        requests = [
            Request(float(t), int(o), int(s), float(c))
            for t, o, s, c in zip(times, objs, sizes, costs)
        ]
        return Trace(requests, name=name)
    finally:
        if should_close:
            handle.close()
