"""Min-cost flow substrate (graph model, exact solver, verification)."""

from .graph import FlowNetwork
from .ssp import InfeasibleFlowError, MinCostFlowResult, solve_min_cost_flow
from .verify import check_flow, flow_cost, solve_with_networkx

__all__ = [
    "FlowNetwork",
    "InfeasibleFlowError",
    "MinCostFlowResult",
    "solve_min_cost_flow",
    "check_flow",
    "flow_cost",
    "solve_with_networkx",
]
