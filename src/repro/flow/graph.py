"""Flow network representation used by the min-cost flow solver.

Arcs are stored in a flat residual representation: every arc added via
:meth:`FlowNetwork.add_arc` creates a forward arc at an even index and its
reverse (zero-capacity, negated cost) at the following odd index, so that
``arc ^ 1`` is always the residual partner.  This keeps the solver free of
object overhead, which matters because the OPT graphs have one node per
request.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """A directed graph with arc capacities, costs, and node supplies.

    Supplies follow the usual min-cost-flow convention: positive supply means
    the node is a source of flow, negative means it demands flow.  The total
    supply over all nodes must be zero for a feasible instance.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("a flow network needs at least one node")
        self.n_nodes = n_nodes
        self.supply = [0] * n_nodes
        # Flat arc arrays; arc i and arc i^1 are residual partners.
        self.arc_to: list[int] = []
        self.arc_cap: list[int] = []
        self.arc_cost: list[float] = []
        self.adjacency: list[list[int]] = [[] for _ in range(n_nodes)]
        self._arc_tail: list[int] = []

    def add_arc(self, tail: int, head: int, capacity: int, cost: float) -> int:
        """Add a forward arc and its residual partner; return the arc index."""
        if not (0 <= tail < self.n_nodes and 0 <= head < self.n_nodes):
            raise IndexError("arc endpoint out of range")
        if capacity < 0:
            raise ValueError("arc capacity must be non-negative")
        index = len(self.arc_to)
        # forward arc
        self.arc_to.append(head)
        self.arc_cap.append(capacity)
        self.arc_cost.append(cost)
        self.adjacency[tail].append(index)
        self._arc_tail.append(tail)
        # residual arc
        self.arc_to.append(tail)
        self.arc_cap.append(0)
        self.arc_cost.append(-cost)
        self.adjacency[head].append(index + 1)
        self._arc_tail.append(head)
        return index

    def add_supply(self, node: int, amount: int) -> None:
        """Add flow supply (positive) or demand (negative) at a node."""
        self.supply[node] += amount

    def arc_flow(self, arc: int) -> int:
        """Flow currently routed on a forward arc (its residual capacity)."""
        if arc % 2 != 0:
            raise ValueError("arc_flow expects a forward (even) arc index")
        return self.arc_cap[arc ^ 1]

    def arc_tail(self, arc: int) -> int:
        """Tail node of an arc."""
        return self._arc_tail[arc]

    @property
    def n_arcs(self) -> int:
        """Number of forward arcs."""
        return len(self.arc_to) // 2

    def forward_arcs(self) -> Iterator[int]:
        """Iterate over forward (even) arc indices."""
        return iter(range(0, len(self.arc_to), 2))

    def total_supply(self) -> int:
        """Sum of positive supplies (the amount of flow to be routed)."""
        return sum(s for s in self.supply if s > 0)

    def is_balanced(self) -> bool:
        """True when supplies and demands cancel out."""
        return sum(self.supply) == 0
