"""Exact min-cost flow via successive shortest paths with potentials.

The solver repeatedly finds a cheapest residual path from a super-source
(connected to all remaining supplies) to a super-sink (connected from all
remaining demands) using Dijkstra on *reduced* costs, then augments by the
path bottleneck.  Node potentials keep reduced costs non-negative, so
Dijkstra stays valid after augmentation; with all-non-negative input costs
(true for the OPT caching graphs) the initial potentials are zero.

This is the same optimum as LEMON's network simplex used by the paper, just
a different exact algorithm that is short enough to implement and verify in
pure Python.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .graph import FlowNetwork

__all__ = ["MinCostFlowResult", "solve_min_cost_flow", "InfeasibleFlowError"]


class InfeasibleFlowError(ValueError):
    """Raised when supplies cannot be routed to demands."""


@dataclass(frozen=True)
class MinCostFlowResult:
    """Outcome of a min-cost flow solve.

    Attributes:
        total_cost: objective value of the optimal flow.
        flow: flow on each forward arc, indexed by forward arc id.
        augmentations: number of augmenting-path iterations (diagnostic).
    """

    total_cost: float
    flow: dict[int, int]
    augmentations: int


def _initial_potentials(network: FlowNetwork, n_total: int) -> list[float]:
    """Bellman-Ford potentials; trivial when all costs are non-negative."""
    if all(c >= 0 for c in network.arc_cost):
        return [0.0] * n_total
    # Bellman-Ford from a virtual node connected to everything at cost 0.
    dist = [0.0] * n_total
    for _ in range(n_total - 1):
        changed = False
        for arc in range(len(network.arc_to)):
            if network.arc_cap[arc] <= 0:
                continue
            tail = network.arc_tail(arc)
            head = network.arc_to[arc]
            candidate = dist[tail] + network.arc_cost[arc]
            if candidate < dist[head] - 1e-12:
                dist[head] = candidate
                changed = True
        if not changed:
            break
    return dist


def solve_min_cost_flow(network: FlowNetwork) -> MinCostFlowResult:
    """Route all supplies to demands at minimum cost.

    The ``network`` is modified in place (residual capacities encode the
    flow); call :meth:`FlowNetwork.arc_flow` or read the returned ``flow``
    mapping for per-arc flow values.

    Raises:
        InfeasibleFlowError: if supplies and demands are unbalanced or
            cannot be routed under the capacities.
    """
    if not network.is_balanced():
        raise InfeasibleFlowError(
            f"total supply {sum(network.supply)} != 0; instance unbalanced"
        )

    n = network.n_nodes
    source = n
    sink = n + 1
    n_total = n + 2
    first_virtual_arc = len(network.arc_to)
    supply_nodes: list[int] = []

    # Extend adjacency for the two virtual nodes without copying arc arrays.
    network.adjacency.append([])  # source
    network.adjacency.append([])  # sink
    network.n_nodes = n_total
    try:
        remaining = 0
        for node, supply in enumerate(network.supply):
            if supply > 0:
                network.add_arc(source, node, supply, 0.0)
                supply_nodes.append(node)
                remaining += supply
            elif supply < 0:
                network.add_arc(node, sink, -supply, 0.0)
                supply_nodes.append(node)

        arc_to = network.arc_to
        arc_cap = network.arc_cap
        arc_cost = network.arc_cost
        adjacency = network.adjacency

        potential = _initial_potentials(network, n_total)
        total_cost = 0.0
        augmentations = 0
        INF = float("inf")

        while remaining > 0:
            # Dijkstra with reduced costs from the super-source.
            dist = [INF] * n_total
            parent_arc = [-1] * n_total
            dist[source] = 0.0
            heap = [(0.0, source)]
            visited = [False] * n_total
            while heap:
                d, u = heapq.heappop(heap)
                if visited[u]:
                    continue
                visited[u] = True
                pot_u = potential[u]
                for arc in adjacency[u]:
                    if arc_cap[arc] <= 0:
                        continue
                    v = arc_to[arc]
                    if visited[v]:
                        continue
                    nd = d + arc_cost[arc] + pot_u - potential[v]
                    if nd < dist[v] - 1e-12:
                        dist[v] = nd
                        parent_arc[v] = arc
                        heapq.heappush(heap, (nd, v))
            if dist[sink] == INF:
                raise InfeasibleFlowError(
                    f"{remaining} unit(s) of supply cannot reach a demand"
                )

            # Update potentials with *final* distances.  Dijkstra ran to
            # completion, so every reachable node holds its true shortest
            # distance; unreachable nodes stay unreachable in later residual
            # graphs (augmentation only adds reverse arcs inside the
            # reachable set), so their potentials never matter.
            for v in range(n_total):
                if visited[v]:
                    potential[v] += dist[v]

            # Bottleneck along the path.
            bottleneck = remaining
            v = sink
            while v != source:
                arc = parent_arc[v]
                if arc_cap[arc] < bottleneck:
                    bottleneck = arc_cap[arc]
                v = network.arc_tail(arc)

            # Augment.
            v = sink
            while v != source:
                arc = parent_arc[v]
                arc_cap[arc] -= bottleneck
                arc_cap[arc ^ 1] += bottleneck
                total_cost += bottleneck * arc_cost[arc]
                v = network.arc_tail(arc)
            remaining -= bottleneck
            augmentations += 1

        flow = {
            arc: network.arc_flow(arc)
            for arc in network.forward_arcs()
            if network.arc_tail(arc) < n and arc_to[arc] < n
        }
        return MinCostFlowResult(
            total_cost=total_cost, flow=flow, augmentations=augmentations
        )
    finally:
        # Strip the virtual source/sink arcs entirely, not just their
        # adjacency lists: their residual partners live in *real* nodes'
        # adjacency, and leaving them in ``arc_to``/``arc_cap``/``arc_cost``
        # with mutated capacities would feed stale, out-of-range arcs to a
        # later solve or ``_initial_potentials`` on the same network.  Each
        # real endpoint gained at most one virtual arc, appended after all
        # real arcs, so popping tails restores the exact input arc set
        # (with residual capacities on real arcs encoding the flow).
        for node in supply_nodes:
            adjacency = network.adjacency[node]
            while adjacency and adjacency[-1] >= first_virtual_arc:
                adjacency.pop()
        del network.arc_to[first_virtual_arc:]
        del network.arc_cap[first_virtual_arc:]
        del network.arc_cost[first_virtual_arc:]
        del network._arc_tail[first_virtual_arc:]
        network.adjacency = network.adjacency[:n]
        network.n_nodes = n
