"""Validation helpers for min-cost flow solutions.

Used heavily by the test suite: :func:`check_flow` asserts capacity and
conservation constraints on a solved instance, and
:func:`solve_with_networkx` provides an independent exact optimum (networkx
network simplex) to cross-check our solver on small instances.
"""

from __future__ import annotations

import networkx as nx

from .graph import FlowNetwork
from .ssp import MinCostFlowResult

__all__ = ["check_flow", "flow_cost", "solve_with_networkx"]


def flow_cost(network: FlowNetwork, flow: dict[int, int]) -> float:
    """Objective value of a given per-arc flow assignment."""
    return sum(network.arc_cost[arc] * units for arc, units in flow.items())


def check_flow(
    network: FlowNetwork,
    result: MinCostFlowResult,
    original_capacity: dict[int, int],
) -> None:
    """Assert that ``result.flow`` is feasible for the original instance.

    Args:
        network: the (solved, mutated) network.
        result: solver output.
        original_capacity: forward-arc capacities captured *before* solving,
            as ``{arc_index: capacity}``.

    Raises:
        AssertionError: on any capacity or conservation violation, or if the
            recomputed cost disagrees with the reported one.
    """
    balance = [0] * network.n_nodes
    for arc, units in result.flow.items():
        assert units >= 0, f"negative flow {units} on arc {arc}"
        cap = original_capacity[arc]
        assert units <= cap, f"arc {arc}: flow {units} exceeds capacity {cap}"
        tail = network.arc_tail(arc)
        head = network.arc_to[arc]
        balance[tail] -= units
        balance[head] += units
    for node in range(network.n_nodes):
        expected = -network.supply[node]
        assert balance[node] == expected, (
            f"node {node}: net inflow {balance[node]} != {expected} "
            "(conservation violated)"
        )
    recomputed = flow_cost(network, result.flow)
    assert abs(recomputed - result.total_cost) < 1e-6 * max(
        1.0, abs(result.total_cost)
    ), f"cost mismatch: reported {result.total_cost}, recomputed {recomputed}"


def solve_with_networkx(
    supplies: list[int],
    arcs: list[tuple[int, int, int, float]],
    cost_scale: int = 1_000_000,
) -> float:
    """Exact optimum via networkx network simplex, for cross-validation.

    Args:
        supplies: per-node supply (positive = source).
        arcs: ``(tail, head, capacity, cost)`` tuples.
        cost_scale: networkx requires integer costs; floats are scaled by
            this factor and the result scaled back.

    Returns:
        The minimum total cost.
    """
    graph = nx.DiGraph()
    for node, supply in enumerate(supplies):
        # networkx uses "demand" = -supply.
        graph.add_node(node, demand=-supply)
    for tail, head, capacity, cost in arcs:
        scaled = int(round(cost * cost_scale))
        if graph.has_edge(tail, head):
            # networkx DiGraph cannot hold parallel edges; merge by adding a
            # relay node with the same capacity/cost split.
            relay = graph.number_of_nodes()
            graph.add_node(relay, demand=0)
            graph.add_edge(tail, relay, capacity=capacity, weight=scaled)
            graph.add_edge(relay, head, capacity=capacity, weight=0)
        else:
            graph.add_edge(tail, head, capacity=capacity, weight=scaled)
    cost, _ = nx.network_simplex(graph)
    return cost / cost_scale
