"""Command-line interface: generate traces, inspect them, run comparisons.

Installed as the ``lfo`` console script::

    lfo generate --requests 20000 --out trace.bin
    lfo stats trace.bin
    lfo opt trace.bin --cache-mb 1 --segment 1000
    lfo compare trace.bin --cache-fraction 10 --policies LRU,GDSF,S4LRU
    lfo simulate trace.bin --cache-fraction 10 --window 5000
    lfo simulate trace.bin --window 5000 --metrics-out metrics.json
    lfo health trace.bin --check
    lfo health trace.bin --follow --serve-metrics 9100
    lfo serve trace.bin --serve-metrics 9100 --follow
    lfo serve --synthetic 20000 --slo slo.json --check
    lfo lint --deep --format sarif
    lfo lint --metrics-dump md

Results go to stdout; progress and diagnostics go to stderr, so output
stays pipeable.  ``--metrics-out PATH`` (on ``simulate``, ``compare`` and
``experiment``) installs a :class:`repro.obs.MetricsRegistry` for the run
and writes its snapshot — request counters, per-stage histograms, and the
retraining span tree — plus the run's result as one JSON document.
``simulate`` additionally takes the eviction-engine knobs ``--eviction
sampled --evict-sample-k K`` (minimal-overhead sampled-candidate
eviction, see docs/architecture.md "Eviction at scale") and the
resilience knobs ``--fault-plan``, ``--staleness-limit`` and
``--retry-backoff``, and every trace-reading subcommand accepts
``--tolerant-trace`` (skip-and-count malformed lines); see
docs/robustness.md for the operations runbook.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from typing import Sequence

from .core import LFOOnline, OptLabelConfig, SampledEvictionConfig
from .obs import MetricsRegistry, get_registry, use_registry
from .opt import opt_bhr_bounds, solve_segmented
from .resilience import FaultPlan, use_fault_plan
from .sim import (
    compare_policies,
    format_table,
    load_spec,
    policy_factories,
    run_experiment,
    simulate,
)
from .trace import (
    SyntheticConfig,
    Trace,
    compute_stats,
    generate_trace,
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)

__all__ = ["main", "build_parser"]


def _diag(message: str) -> None:
    """Progress/diagnostic output: stderr, so results stay pipeable."""
    print(message, file=sys.stderr)


def _load_trace(path: str, tolerant: bool = False) -> Trace:
    if path.endswith(".bin"):
        return read_binary_trace(path)
    return read_text_trace(path, tolerant=tolerant)


def _trace_from_args(args: argparse.Namespace) -> Trace:
    """Load the positional trace, honouring ``--tolerant-trace``."""
    return _load_trace(args.trace, tolerant=getattr(args, "tolerant_trace", False))


def _fault_plan_scope(args: argparse.Namespace):
    """A ``use_fault_plan`` context for ``--fault-plan PATH`` (else a no-op)."""
    path = getattr(args, "fault_plan", None)
    if not path:
        return nullcontext(None)
    plan = FaultPlan.from_json(path)
    _diag(
        f"fault plan {path}: {len(plan.faults)} spec(s), seed {plan.seed}"
    )
    return use_fault_plan(plan)


def _make_registry(args: argparse.Namespace):
    """A fresh metrics registry when ``--metrics-out`` asks for one,
    otherwise whatever is already installed (``NullRegistry`` by default)."""
    if getattr(args, "metrics_out", None):
        return MetricsRegistry()
    return get_registry()


def _write_metrics(path: str, registry, result) -> None:
    """Dump the run's registry snapshot plus the result as one JSON doc."""
    document = {"metrics": registry.to_dict(), "result": result}
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _diag(f"metrics written to {path}")


def _resolve_cache(args: argparse.Namespace, trace: Trace) -> int:
    if getattr(args, "cache_bytes", None):
        return int(args.cache_bytes)
    if getattr(args, "cache_mb", None):
        return int(args.cache_mb * 1_000_000)
    stats = compute_stats(trace)
    return max(1, stats.footprint_bytes // args.cache_fraction)


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        n_requests=args.requests,
        n_objects=args.objects,
        alpha=args.alpha,
        size_median=args.size_median,
        size_sigma=args.size_sigma,
        size_max=args.size_max,
        locality=args.locality,
        seed=args.seed,
    )
    trace = generate_trace(config)
    if args.out.endswith(".bin"):
        write_binary_trace(trace, args.out)
    else:
        write_text_trace(trace, args.out)
    print(f"wrote {len(trace)} requests to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    stats = compute_stats(trace)
    for key, value in stats.as_dict().items():
        if isinstance(value, float):
            print(f"{key:<28} {value:.4f}")
        else:
            print(f"{key:<28} {value}")
    return 0


def _cmd_opt(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    cache_size = _resolve_cache(args, trace)
    _diag(f"solving {len(trace)} requests, cache {cache_size} bytes")
    result = solve_segmented(trace, cache_size, args.segment)
    total_bytes = float(trace.sizes.sum())
    print(f"cache size        {cache_size}")
    print(f"segments solved   {result.n_segments}")
    print(f"OPT admits        {result.decisions.mean():.2%} of requests")
    print(f"OPT miss cost     {result.miss_cost:.0f}")
    if (trace.costs == trace.sizes).all():
        lo, hi = opt_bhr_bounds(trace, cache_size, args.segment)
        print(f"OPT BHR bounds    [{lo:.4f}, {hi:.4f}]")
        print(f"implied BHR       {1 - result.miss_cost / total_bytes:.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = _trace_from_args(args)
    cache_size = _resolve_cache(args, trace)
    subset = args.policies.split(",") if args.policies else None
    _diag(
        f"comparing {len(policy_factories(subset))} policies over "
        f"{len(trace)} requests, cache {cache_size} bytes"
    )
    registry = _make_registry(args)
    with use_registry(registry):
        results = compare_policies(
            trace, cache_size, factories=policy_factories(subset),
            warmup_fraction=args.warmup,
        )
    print(format_table(results, sort_by=args.sort_by))
    if args.metrics_out:
        # Per-policy snapshots are cumulative views of the same registry;
        # the top-level "metrics" key already carries the final one.
        rows = {}
        for name, result in results.items():
            rows[name] = {**result.to_dict(), "metrics": None}
        _write_metrics(args.metrics_out, registry, rows)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    registry = _make_registry(args)
    # Trace loading happens inside both scopes so a --fault-plan with
    # trace.read_line faults corrupts lines and --tolerant-trace skips land
    # on the run's registry.
    with use_registry(registry), _fault_plan_scope(args):
        trace = _trace_from_args(args)
        cache_size = _resolve_cache(args, trace)
        _diag(
            f"simulating online LFO over {len(trace)} requests, "
            f"cache {cache_size} bytes, window {args.window}"
        )
        lfo = LFOOnline(
            cache_size,
            window=args.window,
            cutoff=args.cutoff,
            label_config=OptLabelConfig(
                mode=args.label_mode, segment_length=args.segment
            ),
            eviction=args.eviction,
            sampled=SampledEvictionConfig(
                k=args.evict_sample_k, seed=args.evict_sample_seed
            ),
            staleness_limit=args.staleness_limit,
            retry_backoff=args.retry_backoff,
        )
        result = simulate(trace, lfo, warmup_fraction=args.warmup)
    print(f"policy     {result.policy}")
    print(f"requests   {result.n_requests}")
    print(f"retrains   {lfo.n_retrains}")
    print(f"BHR        {result.bhr:.4f}")
    print(f"OHR        {result.ohr:.4f}")
    if result.resilience:
        engaged = {k: v for k, v in result.resilience.items() if v}
        if engaged:
            _diag(f"resilience: {engaged}")
    if args.metrics_out:
        _write_metrics(args.metrics_out, registry, result.to_dict())
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from .obs import (
        HealthConfig,
        HealthMonitor,
        MetricsServer,
        SloEngine,
        SloSpec,
        WindowedRegistry,
    )

    spec = SloSpec.from_json(args.slo) if args.slo else SloSpec.default()
    registry = WindowedRegistry(every_requests=args.every, ring=args.ring)
    monitor = HealthMonitor(
        HealthConfig(
            bhr_ph_lambda=args.bhr_lambda,
            score_psi_threshold=args.psi_threshold,
            staleness_windows=args.staleness_alert,
        )
    ).attach(registry)
    engine = SloEngine(spec).attach(registry)
    if args.follow:
        registry.on_close(_render_window)
    server = None
    if args.serve_metrics is not None:
        server = MetricsServer(
            registry, port=args.serve_metrics, health=monitor, slo=engine
        ).start()
        _diag(
            "serving /metrics /health /windows on "
            f"http://127.0.0.1:{server.port}"
        )
    try:
        with use_registry(registry), _fault_plan_scope(args):
            trace = _trace_from_args(args)
            cache_size = _resolve_cache(args, trace)
            _diag(
                f"health run over {len(trace)} requests, cache "
                f"{cache_size} bytes, telemetry window {args.every} requests"
            )
            lfo = LFOOnline(
                cache_size,
                window=args.window,
                cutoff=args.cutoff,
                label_config=OptLabelConfig(
                    mode=args.label_mode, segment_length=args.segment
                ),
                staleness_limit=args.staleness_limit,
            )
            result = simulate(trace, lfo, warmup_fraction=args.warmup)
            registry.flush()  # close the partial tail window, if any
    finally:
        if server is not None:
            server.stop()
    verdict = {
        "ok": engine.ok and monitor.ok,
        "slo": engine.verdict(),
        "health": monitor.status(),
        "result": {"bhr": result.bhr, "ohr": result.ohr},
    }
    if args.windows_out:
        with open(args.windows_out, "w") as handle:
            json.dump(registry.to_windows_dict(), handle, indent=2)
            handle.write("\n")
        _diag(f"window ring written to {args.windows_out}")
    if args.check:
        print(json.dumps(verdict, indent=2))
        return 0 if verdict["ok"] else 1
    print(f"verdict    {'HEALTHY' if verdict['ok'] else 'UNHEALTHY'}")
    print(f"BHR        {result.bhr:.4f}")
    print(f"windows    {monitor.windows_observed}")
    print(f"alerts     {len(monitor.alerts)}")
    for alert in monitor.alerts:
        print(f"  [{alert.kind}] window {alert.window_index}: "
              f"{alert.message}")
    for name, objective in engine.verdict()["objectives"].items():
        state = "ok" if objective["ok"] else "BREACHED"
        print(
            f"slo {name:<24} {state:<9} "
            f"burn {objective['burn_rate']:.2f} "
            f"last {objective['last_value']:.6g}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import (
        HealthConfig,
        HealthMonitor,
        JsonlSink,
        MetricsServer,
        SloEngine,
        SloSpec,
        WindowedRegistry,
    )
    from .resilience import SimulatedTrainerExecutor
    from .serve import (
        ServeConfig,
        ServingLoop,
        SyntheticArrivalDriver,
        TraceReplayDriver,
        default_serving_slo,
    )

    if args.slo:
        try:
            spec = SloSpec.from_json(args.slo)
        except (OSError, ValueError, KeyError) as exc:
            _diag(f"invalid SLO spec {args.slo}: {exc}")
            return 2
    else:
        spec = default_serving_slo()
    registry = WindowedRegistry(
        every_requests=args.every, ring=args.ring,
        request_counter="serve.requests",
    )
    monitor = HealthMonitor(HealthConfig()).attach(registry)
    engine = SloEngine(spec).attach(registry)
    if args.follow:
        registry.on_close(_render_serve_window)
    if args.jsonl:
        JsonlSink(args.jsonl).attach(registry)
        _diag(f"streaming closed windows to {args.jsonl}")
    server = None
    if args.serve_metrics is not None:
        server = MetricsServer(
            registry, port=args.serve_metrics, health=monitor, slo=engine
        ).start()
        _diag(
            "serving /metrics /health /windows on "
            f"http://127.0.0.1:{server.port}"
        )
    interrupted = False
    try:
        with use_registry(registry), _fault_plan_scope(args):
            if args.synthetic:
                trace = generate_trace(
                    SyntheticConfig(n_requests=args.synthetic, seed=args.seed)
                )
                _diag(f"serving a synthetic trace of {len(trace)} requests")
            elif args.trace:
                trace = _trace_from_args(args)
            else:
                _diag("serve needs a trace path or --synthetic N")
                return 2
            cache_size = _resolve_cache(args, trace)
            if args.shards < 1:
                _diag("--shards must be at least 1")
                return 2
            _diag(
                f"serving {len(trace)} requests, cache {cache_size} bytes, "
                f"training window {args.window}, queue {args.queue_depth}, "
                f"batch {args.max_batch}"
                + (f", {args.shards} shard processes"
                   if args.shards > 1 else "")
            )
            executor = (
                SimulatedTrainerExecutor()
                if args.trainer == "inline"
                else None  # LFOOnline owns a background thread trainer
            )
            cluster = None
            scorer = None
            if args.shards > 1:
                from .cluster import CacheCluster, ClusterScorer

                cluster = CacheCluster(
                    cache_size, args.shards,
                    vnodes=args.vnodes, seed=args.seed,
                    ship_features=True,
                ).start()
            lfo = LFOOnline(
                # The cluster trainer labels against one shard's capacity
                # — the cache each OPT decision actually lands in.
                cluster.shard_size if cluster is not None else cache_size,
                window=args.window,
                cutoff=args.cutoff,
                label_config=OptLabelConfig(
                    mode=args.label_mode, segment_length=args.segment
                ),
                background=True,
                executor=executor,
                train_deadline=args.train_deadline,
                staleness_limit=args.staleness_limit,
                retry_backoff=args.retry_backoff,
            )
            if cluster is not None:
                # Installs the slab publish hook on the trainer and takes
                # over the cluster's access tap.
                scorer = ClusterScorer(lfo, cluster)
            requests = list(trace)
            if args.arrival_rate > 0:
                driver = SyntheticArrivalDriver(
                    requests, rate=args.arrival_rate, seed=args.seed
                )
            else:
                driver = TraceReplayDriver(requests)
            loop = ServingLoop(
                lfo, driver,
                ServeConfig(
                    queue_depth=args.queue_depth, max_batch=args.max_batch
                ),
                scorer=scorer,
            )
            try:
                report = asyncio.run(loop.run())
            except KeyboardInterrupt:
                interrupted = True
                report = loop.report
                _diag(
                    "interrupted: queue drained through the scorer, "
                    "telemetry flushed"
                )
            finally:
                if executor is not None:
                    # End of drill: un-park any fault-plan-hung training
                    # job so close() can drain it instead of waiting on a
                    # future that will never complete.
                    executor.release_hung()
                lfo.close()
                if cluster is not None:
                    # Drain-then-flush: stop the shards, fold their final
                    # buffered telemetry, then unlink the slab segments
                    # exactly once (also the SIGINT path).
                    cluster.close()
                if executor is not None:
                    executor.shutdown(cancel_futures=True)
    finally:
        if server is not None:
            server.stop()
    verdict = {
        "ok": engine.ok and monitor.ok and report.dropped == 0,
        "interrupted": interrupted,
        "slo": engine.verdict(),
        "health": monitor.status(),
        "serve": report.as_dict(),
    }
    if args.windows_out:
        with open(args.windows_out, "w") as handle:
            json.dump(registry.to_windows_dict(), handle, indent=2)
            handle.write("\n")
        _diag(f"window ring written to {args.windows_out}")
    if args.check:
        print(json.dumps(verdict, indent=2))
        return 0 if verdict["ok"] else 1
    bhr = report.bhr
    print(f"verdict    {'HEALTHY' if verdict['ok'] else 'UNHEALTHY'}")
    print(f"requests   {report.requests}"
          f"{' (interrupted, drained)' if interrupted else ''}")
    print(f"BHR        {'  --  ' if bhr is None else format(bhr, '.4f')}")
    print(f"handoffs   {report.model_handoffs}")
    print(f"dropped    {report.dropped}")
    print(f"waits      {report.backpressure_waits} (backpressure)")
    print(f"alerts     {len(monitor.alerts)}")
    for alert in monitor.alerts:
        print(f"  [{alert.kind}] window {alert.window_index}: "
              f"{alert.message}")
    for name, objective in engine.verdict()["objectives"].items():
        state = "ok" if objective["ok"] else "BREACHED"
        print(
            f"slo {name:<24} {state:<9} "
            f"burn {objective['burn_rate']:.2f} "
            f"last {objective['last_value']:.6g}"
        )
    return 0 if verdict["ok"] else 1


def _render_serve_window(snapshot) -> None:
    """One ``--follow`` line per closed serving window (stderr)."""
    bhr = snapshot.bhr
    p99 = snapshot.quantile("serve.decision_latency_seconds", 0.99)
    _diag(
        f"window {snapshot.index:>4}  requests {snapshot.requests:>7}  "
        f"bhr {'  --  ' if bhr is None else format(bhr, '.4f')}  "
        f"p99 {p99 * 1e6:9.1f}us  "
        f"queue {int(snapshot.gauges.get('serve.queue_depth', 0)):>5}  "
        f"handoffs {int(snapshot.delta('serve.model_handoffs')):>3}"
    )


def _render_window(snapshot) -> None:
    """One ``--follow`` line per closed telemetry window (stderr)."""
    bhr = snapshot.bhr
    p99 = snapshot.quantile("sim.decision_latency_seconds", 0.99)
    _diag(
        f"window {snapshot.index:>4}  requests {snapshot.requests:>7}  "
        f"bhr {'  --  ' if bhr is None else format(bhr, '.4f')}  "
        f"p99 {p99 * 1e6:9.1f}us  "
        f"evictions {int(snapshot.delta('sim.evictions')):>6}"
    )


def _cmd_hrc(args: argparse.Namespace) -> int:
    from .sim import lru_hit_ratio_curve
    from .viz import sparkline

    trace = _trace_from_args(args)
    curve = lru_hit_ratio_curve(trace, n_points=args.points)
    print("LRU byte hit-ratio curve")
    print(f"sizes  {int(curve.sizes[0])} .. {int(curve.sizes[-1])} bytes")
    print(f"curve  {sparkline(curve.bhr)}")
    print(f"max    {curve.bhr[-1]:.4f} (compulsory-miss limit)")
    for fraction in (0.01, 0.05, 0.1, 0.25, 0.5):
        size = fraction * curve.sizes[-1]
        print(f"BHR at {fraction:>5.0%} of max working set: {curve.at(size):.4f}")
    return 0


def _model_cache_path(args: argparse.Namespace):
    """Where the deep tier caches its project model (None = disabled)."""
    from pathlib import Path

    if getattr(args, "no_model_cache", False):
        return None
    return Path(".lint-cache") / "project-model.pkl"


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        Baseline,
        render_json,
        render_sarif,
        render_text,
        run_analysis,
        run_deep_analysis,
    )

    if args.metrics_dump:
        from .analysis import (
            ProjectModel,
            collect_metric_surface,
            render_metrics_json,
            render_metrics_markdown,
        )

        model = ProjectModel.load_or_build(
            args.paths or None, cache_path=_model_cache_path(args)
        )
        infos = collect_metric_surface(model)
        renderer = (
            render_metrics_json
            if args.metrics_dump == "json"
            else render_metrics_markdown
        )
        print(renderer(infos))
        return 0

    select = args.select.split(",") if args.select else None
    deep = args.deep or args.write_baseline
    try:
        if deep:
            baseline = (
                None if args.write_baseline else Baseline.load(args.baseline)
            )
            report = run_deep_analysis(
                args.paths or None,
                select=select,
                baseline=baseline,
                model_cache=_model_cache_path(args),
            )
        else:
            report = run_analysis(args.paths or None, select=select)
    except ValueError as exc:  # unknown --select rule id
        _diag(str(exc))
        return 2
    if deep:
        _diag(
            f"deep lint: {report.files_checked} file(s) in "
            f"{report.duration_seconds:.2f}s (model "
            f"{'cached' if report.model_cached else 'rebuilt'})"
        )
    if args.write_baseline:
        with open(args.baseline, "w") as handle:
            handle.write(Baseline.render(report.violations))
        _diag(
            f"baseline written to {args.baseline} "
            f"({len(report.violations)} finding(s) accepted)"
        )
        return 0
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    _diag(f"running experiment spec {args.spec}")
    registry = _make_registry(args)
    with use_registry(registry):
        outcome = run_experiment(spec)
    if args.metrics_out:
        _write_metrics(args.metrics_out, registry, outcome)
    if args.json:
        print(json.dumps(outcome, indent=2))
    else:
        print(f"trace      {outcome['trace']['name']} "
              f"({outcome['trace']['n_requests']} requests)")
        print(f"cache      {outcome['cache_size']} bytes")
        for name, metrics in sorted(
            outcome["results"].items(), key=lambda kv: -kv[1]["bhr"]
        ):
            extra = (
                f"  retrains={metrics['retrains']}"
                if "retrains" in metrics
                else ""
            )
            print(
                f"{name:<12} BHR={metrics['bhr']:.4f} "
                f"OHR={metrics['ohr']:.4f}{extra}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``lfo`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="lfo",
        description="LFO: Learning From OPT for CDN caching (HotNets'18).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic trace")
    p_gen.add_argument("--requests", type=int, default=20_000)
    p_gen.add_argument("--objects", type=int, default=4_000)
    p_gen.add_argument("--alpha", type=float, default=0.9)
    p_gen.add_argument("--size-median", type=float, default=50.0)
    p_gen.add_argument("--size-sigma", type=float, default=1.3)
    p_gen.add_argument("--size-max", type=int, default=1_000_000)
    p_gen.add_argument("--locality", type=float, default=0.2)
    p_gen.add_argument("--seed", type=int, default=42)
    p_gen.add_argument("--out", required=True,
                       help="output path (.bin = binary, else text)")
    p_gen.set_defaults(func=_cmd_generate)

    def add_trace_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("trace", help="trace path (.bin or text)")
        p.add_argument("--tolerant-trace", action="store_true",
                       help="skip-and-count malformed text-trace lines "
                            "(resilience.trace_lines_skipped) instead of "
                            "aborting on the first one")

    def add_cache_args(p: argparse.ArgumentParser) -> None:
        add_trace_arg(p)
        p.add_argument("--cache-fraction", type=int, default=10,
                       help="cache = footprint / fraction (default 10)")
        p.add_argument("--cache-mb", type=float,
                       help="cache size in MB (overrides fraction)")
        p.add_argument("--cache-bytes", type=int,
                       help="cache size in bytes (overrides everything)")

    def add_metrics_out(p: argparse.ArgumentParser) -> None:
        p.add_argument("--metrics-out", metavar="PATH", default=None,
                       help="collect repro.obs metrics during the run and "
                            "write them (plus the result) as JSON to PATH")

    p_stats = sub.add_parser("stats", help="print trace statistics")
    add_trace_arg(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_opt = sub.add_parser("opt", help="compute OPT decisions and bounds")
    add_cache_args(p_opt)
    p_opt.add_argument("--segment", type=int, default=1_000)
    p_opt.set_defaults(func=_cmd_opt)

    p_cmp = sub.add_parser("compare", help="compare caching policies")
    add_cache_args(p_cmp)
    p_cmp.add_argument("--policies", default=None,
                       help="comma-separated subset, e.g. LRU,GDSF,S4LRU")
    p_cmp.add_argument("--warmup", type=float, default=0.25)
    p_cmp.add_argument("--sort-by", choices=("bhr", "ohr"), default="bhr")
    add_metrics_out(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_sim = sub.add_parser("simulate", help="run online LFO over a trace")
    add_cache_args(p_sim)
    p_sim.add_argument("--window", type=int, default=5_000)
    p_sim.add_argument("--cutoff", type=float, default=0.5)
    p_sim.add_argument("--segment", type=int, default=1_000)
    p_sim.add_argument("--label-mode", default="segmented",
                       choices=("exact", "segmented", "pruned"))
    p_sim.add_argument("--warmup", type=float, default=0.25)
    p_sim.add_argument("--eviction", default="likelihood",
                       choices=("likelihood", "lru", "sampled"),
                       help="eviction rule: likelihood (paper), lru "
                            "(admission-only LFO), or sampled (score only "
                            "K random candidates per eviction — the "
                            "minimal-overhead engine for large caches)")
    p_sim.add_argument("--evict-sample-k", type=int, default=64,
                       help="candidates sampled per eviction plan when "
                            "--eviction sampled (default 64)")
    p_sim.add_argument("--evict-sample-seed", type=int, default=0,
                       help="seed for the eviction candidate sampler")
    p_sim.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="JSON fault plan (repro.resilience.FaultPlan) "
                            "installed for the run — deterministic fault "
                            "injection drills, see docs/robustness.md")
    p_sim.add_argument("--staleness-limit", type=int, default=None,
                       help="degrade admission to the LRU fallback after "
                            "this many windows without a fresh model")
    p_sim.add_argument("--retry-backoff", type=int, default=0,
                       help="windows to skip after a training failure "
                            "(doubles per consecutive failure)")
    add_metrics_out(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_health = sub.add_parser(
        "health",
        help="run online LFO with windowed telemetry, drift detection "
             "and SLO evaluation",
    )
    add_cache_args(p_health)
    p_health.add_argument("--window", type=int, default=5_000,
                          help="training window (requests)")
    p_health.add_argument("--every", type=int, default=2_000,
                          help="telemetry window (requests per snapshot)")
    p_health.add_argument("--ring", type=int, default=120,
                          help="telemetry windows retained in the ring")
    p_health.add_argument("--cutoff", type=float, default=0.5)
    p_health.add_argument("--segment", type=int, default=1_000)
    p_health.add_argument("--label-mode", default="segmented",
                          choices=("exact", "segmented", "pruned"))
    p_health.add_argument("--warmup", type=float, default=0.25)
    p_health.add_argument("--slo", metavar="PATH", default=None,
                          help="SLO spec JSON (SloSpec.as_dict shape); "
                               "default: built-in objectives")
    p_health.add_argument("--check", action="store_true",
                          help="one-shot mode: print the verdict JSON and "
                               "exit 1 when any SLO is breached or any "
                               "health alert fired")
    p_health.add_argument("--follow", action="store_true",
                          help="render each telemetry window live to "
                               "stderr as it closes")
    p_health.add_argument("--serve-metrics", type=int, metavar="PORT",
                          default=None,
                          help="serve /metrics, /health and /windows over "
                               "HTTP on PORT for the duration of the run "
                               "(0 = ephemeral port, printed to stderr)")
    p_health.add_argument("--windows-out", metavar="PATH", default=None,
                          help="write the final window-ring dump as JSON")
    p_health.add_argument("--bhr-lambda", type=float, default=0.10,
                          help="Page-Hinkley budget for BHR-drop alerts")
    p_health.add_argument("--psi-threshold", type=float, default=0.25,
                          help="admission-score PSI alert threshold")
    p_health.add_argument("--staleness-alert", type=int, default=0,
                          help="alert after this many training windows "
                               "without a model install (0 = off)")
    p_health.add_argument("--staleness-limit", type=int, default=None,
                          help="degrade admission to the LRU fallback "
                               "after this many stale windows")
    p_health.add_argument("--fault-plan", metavar="PATH", default=None,
                          help="JSON fault plan installed for the run")
    p_health.set_defaults(func=_cmd_health)

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on serving loop: bounded queue, batched "
             "scoring, background retraining with warm handoff, live SLOs",
    )
    p_serve.add_argument("trace", nargs="?", default=None,
                         help="trace path (.bin or text); omit with "
                              "--synthetic")
    p_serve.add_argument("--tolerant-trace", action="store_true",
                         help="skip-and-count malformed text-trace lines "
                              "instead of aborting on the first one")
    p_serve.add_argument("--synthetic", type=int, metavar="N", default=None,
                         help="serve a generated synthetic trace of N "
                              "requests instead of a trace file")
    p_serve.add_argument("--seed", type=int, default=42,
                         help="seed for --synthetic generation and the "
                              "--arrival-rate process")
    p_serve.add_argument("--cache-fraction", type=int, default=10,
                         help="cache = footprint / fraction (default 10)")
    p_serve.add_argument("--cache-mb", type=float,
                         help="cache size in MB (overrides fraction)")
    p_serve.add_argument("--cache-bytes", type=int,
                         help="cache size in bytes (overrides everything)")
    p_serve.add_argument("--window", type=int, default=5_000,
                         help="training window (requests)")
    p_serve.add_argument("--segment", type=int, default=1_000)
    p_serve.add_argument("--label-mode", default="segmented",
                         choices=("exact", "segmented", "pruned"))
    p_serve.add_argument("--cutoff", type=float, default=0.5)
    p_serve.add_argument("--every", type=int, default=2_000,
                         help="telemetry window (requests per snapshot)")
    p_serve.add_argument("--ring", type=int, default=120,
                         help="telemetry windows retained in the ring")
    p_serve.add_argument("--queue-depth", type=int, default=1024,
                         help="ingestion queue bound: a full queue waits "
                              "the driver (backpressure), never drops")
    p_serve.add_argument("--max-batch", type=int, default=256,
                         help="max requests scored per speculative batch")
    p_serve.add_argument("--arrival-rate", type=float, default=0.0,
                         help="requests/second for the Poisson arrival "
                              "driver (0 = replay at queue speed)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="shard worker processes: >1 routes batches "
                              "across a consistent-hash cache cluster with "
                              "the trainer publishing models through a "
                              "shared-memory slab (default 1 = in-process)")
    p_serve.add_argument("--vnodes", type=int, default=64,
                         help="virtual nodes per shard on the routing ring "
                              "(more = flatter load, longer ring)")
    p_serve.add_argument("--slo", metavar="PATH", default=None,
                         help="SLO spec JSON (SloSpec.as_dict shape); "
                              "default: serving objectives (p50/p99/p999 "
                              "decision latency, BHR, staleness)")
    p_serve.add_argument("--trainer", choices=("thread", "inline"),
                         default="thread",
                         help="background trainer: a worker thread "
                              "(production shape) or the deterministic "
                              "inline harness used for fault drills")
    p_serve.add_argument("--train-deadline", type=int, default=None,
                         help="watchdog: cancel a training job still in "
                              "flight after this many requests")
    p_serve.add_argument("--staleness-limit", type=int, default=None,
                         help="degrade admission to the LRU fallback after "
                              "this many windows without a fresh model")
    p_serve.add_argument("--retry-backoff", type=int, default=0,
                         help="windows to skip after a training failure "
                              "(doubles per consecutive failure)")
    p_serve.add_argument("--fault-plan", metavar="PATH", default=None,
                         help="JSON fault plan installed for the run")
    p_serve.add_argument("--serve-metrics", type=int, metavar="PORT",
                         default=None,
                         help="serve /metrics, /health and /windows over "
                              "HTTP on PORT for the duration of the run "
                              "(0 = ephemeral port, printed to stderr)")
    p_serve.add_argument("--jsonl", metavar="PATH", default=None,
                         help="append each closed telemetry window to PATH "
                              "as one JSON line")
    p_serve.add_argument("--windows-out", metavar="PATH", default=None,
                         help="write the final window-ring dump as JSON")
    p_serve.add_argument("--check", action="store_true",
                         help="print the verdict JSON and exit 1 when any "
                              "SLO is breached, any health alert fired, or "
                              "any request was dropped")
    p_serve.add_argument("--follow", action="store_true",
                         help="render each telemetry window live to stderr")
    p_serve.set_defaults(func=_cmd_serve)

    p_hrc = sub.add_parser(
        "hrc", help="print the trace's LRU hit-ratio curve"
    )
    add_trace_arg(p_hrc)
    p_hrc.add_argument("--points", type=int, default=64)
    p_hrc.set_defaults(func=_cmd_hrc)

    p_lint = sub.add_parser(
        "lint",
        help="check repo invariants (determinism, concurrency, obs hygiene)",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files/dirs to check (default: src, benchmarks, examples)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text"
    )
    p_lint.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--deep", action="store_true",
        help="also run the whole-program tier (call-graph, dataflow and "
             "cross-file contract rules; builds a cached project model)",
    )
    p_lint.add_argument(
        "--baseline", default=".lint-baseline.json", metavar="PATH",
        help="accepted-findings file applied under --deep "
             "(default: .lint-baseline.json; missing file = empty)",
    )
    p_lint.add_argument(
        "--write-baseline", action="store_true",
        help="run the deep tier and rewrite --baseline from the current "
             "findings instead of reporting them",
    )
    p_lint.add_argument(
        "--metrics-dump", choices=("json", "md"), default=None,
        help="print the reconciled metric surface (name, kind, Prometheus "
             "series) and exit; 'md' is the docs/architecture.md table",
    )
    p_lint.add_argument(
        "--no-model-cache", action="store_true",
        help="always rebuild the project model (skip .lint-cache/)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_exp = sub.add_parser(
        "experiment", help="run a declarative experiment spec (JSON)"
    )
    p_exp.add_argument("spec", help="path to a JSON experiment spec")
    p_exp.add_argument("--json", action="store_true",
                       help="emit the full result as JSON")
    add_metrics_out(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
