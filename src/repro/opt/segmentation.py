"""Scaling OPT to long traces: segmentation and ranking-axis pruning.

The paper (Section 2.1) notes that solving the min-cost flow over millions
of requests takes hours, and that [8] splits the trace along the *time*
axis.  Its own contribution is to instead split the requests along a
*ranking* axis — solve the flow problem only for highly ranked requests,
where rank is ``C_i / (S_i * L_i)`` (cost over size times distance to next
request).  This keeps about the top 10% of requests and "saves 90% of the
calculation time" while barely moving the decisions that matter.

Both approximations are implemented here, each returning labels aligned
with the original trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace import Trace
from .mincost import OptResult, solve_opt

__all__ = [
    "SegmentedOptResult",
    "solve_segmented",
    "rank_requests",
    "solve_pruned",
]


@dataclass(frozen=True)
class SegmentedOptResult:
    """OPT decisions assembled from independent sub-solves.

    Attributes:
        decisions: per-request admission labels aligned with the input trace.
        miss_cost: summed miss cost of the sub-solves (an *upper bound* on
            the true OPT miss cost: cutting the trace forbids caching across
            segment boundaries).
        n_segments: how many sub-problems were solved.
        solved_requests: how many requests participated in a flow solve,
            counting lookahead overlap once per segment that solves it (so
            with ``lookahead > 0`` this exceeds the trace length — it is the
            work actually done, the denominator of "calculation saved").
    """

    decisions: np.ndarray
    miss_cost: float
    n_segments: int
    solved_requests: int


def decisions_to_miss_cost(trace: Trace, decisions: np.ndarray) -> float:
    """Miss cost implied by a per-request admission-decision vector.

    Every first request is a compulsory miss; every recurring interval that
    is not cached makes the *next* request of the object a miss (costing the
    object's retrieval cost).  For exact OPT decisions this equals
    :attr:`repro.opt.mincost.OptResult.miss_cost` (modulo the rare
    fractional intervals of the flow relaxation).
    """
    if len(decisions) != len(trace):
        raise ValueError("decisions length must match trace length")
    nxt = trace.next_occurrence()
    prv = trace.prev_occurrence()
    costs = trace.costs
    total = float(costs[prv < 0].sum())  # compulsory misses
    recurring = nxt >= 0
    missed = recurring & ~np.asarray(decisions, dtype=bool)
    total += float(costs[missed].sum())
    return total


def solve_segmented(
    trace: Trace,
    cache_size: int,
    segment_length: int,
    lookahead: int | None = None,
) -> SegmentedOptResult:
    """Time-axis approximation: solve OPT independently per segment.

    This is the approximation of [8] that the paper's ranking-axis split
    improves upon; it is exposed both as a practical label generator and as
    the baseline of the ablation benchmark.

    Args:
        trace: the full window.
        cache_size: cache capacity in bytes.
        segment_length: requests per independently solved segment.
        lookahead: extra requests appended to each segment before solving
            (labels are only kept for the segment core).  This removes the
            boundary artefact where a request whose next occurrence falls
            just past the segment end is mislabelled "not cached".  Default:
            ``segment_length // 2``.  Pass 0 for the plain (hard-cut)
            approximation of [8].
    """
    if segment_length <= 0:
        raise ValueError("segment_length must be positive")
    if lookahead is None:
        lookahead = segment_length // 2
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    n = len(trace)
    decisions = np.zeros(n, dtype=bool)
    n_segments = 0
    solved_requests = 0
    for start in range(0, n, segment_length):
        core_end = min(start + segment_length, n)
        window = trace[start : min(core_end + lookahead, n)]
        if len(window) == 0:
            continue
        result = solve_opt(window, cache_size)
        decisions[start:core_end] = result.decisions[: core_end - start]
        n_segments += 1
        solved_requests += len(window)
    return SegmentedOptResult(
        decisions=decisions,
        miss_cost=decisions_to_miss_cost(trace, decisions),
        n_segments=n_segments,
        solved_requests=solved_requests,
    )


def rank_requests(trace: Trace) -> np.ndarray:
    """The paper's ranking function ``C_i / (S_i * L_i)`` per request.

    ``L_i`` is the distance (in requests) to the next request of the same
    object; requests whose object never recurs get rank 0 (they can never
    produce a hit, so OPT never caches them).
    """
    nxt = trace.next_occurrence()
    idx = np.arange(len(trace))
    distance = np.where(nxt >= 0, nxt - idx, 0).astype(np.float64)
    sizes = trace.sizes.astype(np.float64)
    costs = trace.costs
    with np.errstate(divide="ignore", invalid="ignore"):
        rank = np.where(distance > 0, costs / (sizes * distance), 0.0)
    return rank


def solve_pruned(
    trace: Trace,
    cache_size: int,
    keep_fraction: float = 0.1,
    segment_length: int | None = None,
) -> SegmentedOptResult:
    """Ranking-axis approximation (the paper's Section 2.1 contribution).

    Keeps the ``keep_fraction`` highest-ranked requests *plus* the next
    occurrence of each kept request (so every kept interval has both
    endpoints), solves OPT on that sub-trace, and labels all pruned requests
    as not cached.

    Args:
        trace: the full window.
        cache_size: cache capacity in bytes.
        keep_fraction: fraction of requests (by rank) to keep in the solve.
        segment_length: optionally further split the kept sub-trace along
            the time axis.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    n = len(trace)
    rank = rank_requests(trace)
    recurring = rank > 0
    n_recurring = int(recurring.sum())
    keep_count = max(1, int(round(keep_fraction * n)))
    keep_count = min(keep_count, n_recurring)
    if keep_count == 0:
        return SegmentedOptResult(
            decisions=np.zeros(n, dtype=bool),
            miss_cost=float(trace.costs.sum()),
            n_segments=0,
            solved_requests=0,
        )

    order = np.argsort(-rank, kind="stable")
    kept = set(int(i) for i in order[:keep_count])
    # Close intervals: include the next occurrence of each kept request so
    # the sub-trace preserves the (first, next) pairing of its intervals.
    nxt = trace.next_occurrence()
    for i in list(kept):
        j = int(nxt[i])
        if j >= 0:
            kept.add(j)

    kept_sorted = sorted(kept)
    sub = Trace([trace.requests[i] for i in kept_sorted], name=f"{trace.name}|pruned")

    if segment_length is None:
        result = solve_opt(sub, cache_size)
        sub_decisions = result.decisions
        miss_cost = result.miss_cost
        n_segments = 1
    else:
        seg = solve_segmented(sub, cache_size, segment_length)
        sub_decisions = seg.decisions
        miss_cost = seg.miss_cost
        n_segments = seg.n_segments

    decisions = np.zeros(n, dtype=bool)
    for local, original in enumerate(kept_sorted):
        decisions[original] = sub_decisions[local]
    # Pruned recurring requests are labelled "not cached"; their misses are
    # added to the cost bound.
    pruned_recurring = [
        i for i in range(n) if recurring[i] and i not in kept
    ]
    miss_cost += float(trace.costs[pruned_recurring].sum()) if pruned_recurring else 0.0
    return SegmentedOptResult(
        decisions=decisions,
        miss_cost=miss_cost,
        n_segments=n_segments,
        solved_requests=len(kept_sorted),
    )
