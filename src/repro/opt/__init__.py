"""Offline optimal caching (OPT): exact min-cost-flow solve, Belady
cross-check, and the paper's scaling approximations."""

from .belady import BeladyResult, belady_unit_size
from .bounds import OptBounds, opt_bhr_bounds, opt_miss_cost_bounds
from .greedy import GreedyOptResult, solve_greedy
from .mincost import OptResult, build_opt_network, opt_hit_ratios, solve_opt
from .parallel import solve_segmented_parallel
from .segmentation import (
    SegmentedOptResult,
    decisions_to_miss_cost,
    rank_requests,
    solve_pruned,
    solve_segmented,
)

__all__ = [
    "BeladyResult",
    "belady_unit_size",
    "OptBounds",
    "opt_bhr_bounds",
    "opt_miss_cost_bounds",
    "GreedyOptResult",
    "solve_greedy",
    "OptResult",
    "build_opt_network",
    "opt_hit_ratios",
    "solve_opt",
    "SegmentedOptResult",
    "decisions_to_miss_cost",
    "rank_requests",
    "solve_pruned",
    "solve_segmented",
    "solve_segmented_parallel",
]
