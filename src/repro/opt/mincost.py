"""Offline optimal caching (OPT) via min-cost flow.

This implements the encoding of Figure 4 of the paper (following Berger,
Beckmann, Harchol-Balter, SIGMETRICS 2018):

* one graph node per request, in trace order;
* *central* arcs between consecutive nodes with capacity equal to the cache
  size and zero cost — a unit of flow on a central arc is a byte stored in
  the cache over that time step;
* *bypass* arcs between consecutive requests to the same object with
  capacity equal to the object size and per-unit cost ``cost/size`` — a unit
  of flow on a bypass arc is a byte fetched from the origin (a miss);
* supply equal to the object size at its first request, matching demand at
  its last request.

The min-cost solution routes each object's bytes either through the cache
(central path) or around it (bypass); the bypass flow of the interval
starting at request *i* tells us whether OPT keeps the object cached until
its next request — exactly the label LFO trains on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..flow import FlowNetwork, solve_min_cost_flow
from ..trace import Trace

__all__ = ["OptResult", "build_opt_network", "solve_opt", "opt_hit_ratios"]


@dataclass(frozen=True)
class OptResult:
    """OPT's decisions and performance for one trace window.

    Attributes:
        decisions: per-request boolean, True when OPT keeps the requested
            object in cache until its next request (the admission label LFO
            learns).  Requests whose object never recurs are always False.
        cached_fraction: per-request fraction of the object's bytes that OPT
            routes through the cache for the upcoming interval; in theory
            the min-cost solution is all-or-nothing for nearly every
            interval (paper, footnote 2), so this is almost always 0 or 1.
        hit_bytes: per-request bytes served from cache (non-zero only when
            the *previous* interval of the object was cached).
        miss_cost: total retrieval cost paid by OPT, including compulsory
            first-request misses.
        flow_cost: objective value of the min-cost flow (miss cost over
            recurring intervals only).
        augmentations: solver iterations (diagnostic).
    """

    decisions: np.ndarray
    cached_fraction: np.ndarray
    hit_bytes: np.ndarray
    miss_cost: float
    flow_cost: float
    augmentations: int


def build_opt_network(
    trace: Trace, cache_size: int
) -> tuple[FlowNetwork, dict[int, int]]:
    """Build the min-cost flow instance for a trace window.

    Returns:
        The network and a mapping ``request index -> bypass arc index`` for
        every request that has a next occurrence.
    """
    if cache_size <= 0:
        raise ValueError("cache size must be positive")
    n = len(trace)
    if n == 0:
        raise ValueError("cannot build OPT network for an empty trace")

    sizes = trace.sizes
    costs = trace.costs
    nxt = trace.next_occurrence()
    prv = trace.prev_occurrence()

    network = FlowNetwork(n)
    for i in range(n - 1):
        network.add_arc(i, i + 1, cache_size, 0.0)

    bypass_arc: dict[int, int] = {}
    for i in range(n):
        j = int(nxt[i])
        if j >= 0:
            size = int(sizes[i])
            per_byte_cost = float(costs[i]) / size
            bypass_arc[i] = network.add_arc(i, j, size, per_byte_cost)

    for i in range(n):
        has_prev = prv[i] >= 0
        has_next = nxt[i] >= 0
        size = int(sizes[i])
        if not has_prev and has_next:
            network.add_supply(i, size)
        elif has_prev and not has_next:
            network.add_supply(i, -size)
        # single-occurrence objects and middle occurrences: no net supply
    return network, bypass_arc


def solve_opt(trace: Trace, cache_size: int) -> OptResult:
    """Compute OPT's decisions for a trace window.

    The window should be small enough for an exact solve (up to a few tens
    of thousands of requests); for longer traces use
    :func:`repro.opt.segmentation.solve_segmented` or the ranking-axis
    pruning of :func:`repro.opt.segmentation.solve_pruned`.
    """
    n = len(trace)
    network, bypass_arc = build_opt_network(trace, cache_size)
    result = solve_min_cost_flow(network)

    sizes = trace.sizes
    costs = trace.costs
    nxt = trace.next_occurrence()
    prv = trace.prev_occurrence()

    cached_fraction = np.zeros(n, dtype=np.float64)
    decisions = np.zeros(n, dtype=bool)
    hit_bytes = np.zeros(n, dtype=np.int64)

    bypass_flow: dict[int, int] = {}
    for i, arc in bypass_arc.items():
        bypass_flow[i] = result.flow.get(arc, 0)

    for i in range(n):
        if int(nxt[i]) >= 0:
            size = int(sizes[i])
            missed = bypass_flow[i]
            cached_fraction[i] = 1.0 - missed / size
            decisions[i] = missed == 0

    miss_cost = float(result.total_cost)
    for i in range(n):
        p = int(prv[i])
        size = int(sizes[i])
        if p < 0:
            # Compulsory miss: the first request is always fetched.
            miss_cost += float(costs[i])
        else:
            hit_bytes[i] = size - bypass_flow[p]

    return OptResult(
        decisions=decisions,
        cached_fraction=cached_fraction,
        hit_bytes=hit_bytes,
        miss_cost=miss_cost,
        flow_cost=float(result.total_cost),
        augmentations=result.augmentations,
    )


def opt_hit_ratios(trace: Trace, result: OptResult) -> tuple[float, float]:
    """(byte hit ratio, object hit ratio) achieved by OPT on the window.

    A request counts as an object hit when *all* of its bytes were cached
    over the preceding interval.
    """
    total_bytes = float(trace.sizes.sum())
    bhr = float(result.hit_bytes.sum()) / total_bytes if total_bytes else 0.0
    full_hits = int((result.hit_bytes == trace.sizes).sum())
    # First requests have hit_bytes == 0 and can never be full hits unless
    # size == 0, which Request forbids.
    ohr = full_hits / len(trace) if len(trace) else 0.0
    return bhr, ohr
