"""Parallel segmented OPT labeling over a process pool.

The time-axis split of :func:`repro.opt.segmentation.solve_segmented`
produces *independent* min-cost-flow sub-problems — segment ``k``'s labels
depend only on the requests in ``[start_k, core_end_k + lookahead)``.  The
serial path solves them one after another on the request thread; here the
same sub-problems fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
so a window boundary costs roughly ``serial_time / n_jobs`` wall-clock on a
multi-core box.

Because every segment is solved by the *same* :func:`repro.opt.mincost.solve_opt`
on the *same* sub-trace and reassembled in trace order, the returned labels
are bit-identical to the serial path; only wall-clock time changes.  When a
pool cannot be created (sandboxed containers without working semaphores,
restricted fork) the solve silently degrades to the serial path rather than
failing the retrain.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter

import numpy as np

from ..obs import get_registry
from ..trace import Request, Trace
from .mincost import solve_opt
from .segmentation import (
    SegmentedOptResult,
    decisions_to_miss_cost,
    solve_segmented,
)

__all__ = ["solve_segmented_parallel"]


def _solve_segment(
    payload: tuple[list[Request], int, int]
) -> tuple[np.ndarray, float]:
    """Worker: solve one segment, return its core (non-lookahead) labels
    plus the solve's wall-clock seconds.

    Module-level so it pickles for process pools; the payload is
    ``(segment requests incl. lookahead, cache_size, core length)``.  The
    duration is measured here (the parent's registry is unreachable from a
    worker process) and folded into the parent's per-segment histogram on
    return.
    """
    requests, cache_size, core_length = payload
    started = perf_counter()
    result = solve_opt(Trace(requests), cache_size)
    return result.decisions[:core_length], perf_counter() - started


def solve_segmented_parallel(
    trace: Trace,
    cache_size: int,
    segment_length: int,
    lookahead: int | None = None,
    n_jobs: int | None = None,
) -> SegmentedOptResult:
    """Time-axis OPT approximation with segments solved in parallel.

    Args:
        trace: the full window.
        cache_size: cache capacity in bytes.
        segment_length: requests per independently solved segment.
        lookahead: extra requests appended to each segment before solving
            (same semantics and same default — ``segment_length // 2`` — as
            :func:`repro.opt.segmentation.solve_segmented`).
        n_jobs: worker processes.  ``None`` uses ``os.cpu_count()``; ``1``
            (or a single-segment window) falls through to the serial solve.

    Returns:
        A :class:`SegmentedOptResult` bit-identical to the serial path.
    """
    if segment_length <= 0:
        raise ValueError("segment_length must be positive")
    if lookahead is None:
        lookahead = segment_length // 2
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError("n_jobs must be positive (or None for cpu_count)")

    n = len(trace)
    payloads: list[tuple[list[Request], int, int]] = []
    spans: list[tuple[int, int, int]] = []  # (start, core_end, solved count)
    for start in range(0, n, segment_length):
        core_end = min(start + segment_length, n)
        stop = min(core_end + lookahead, n)
        payloads.append((trace.requests[start:stop], cache_size, core_end - start))
        spans.append((start, core_end, stop - start))

    if n_jobs == 1 or len(payloads) <= 1:
        return solve_segmented(
            trace, cache_size, segment_length, lookahead=lookahead
        )

    registry = get_registry()
    try:
        with registry.span("opt.pool_setup"):
            pool = ProcessPoolExecutor(max_workers=min(n_jobs, len(payloads)))
        with pool, registry.span("opt.parallel_solve"):
            solved = list(pool.map(_solve_segment, payloads))
    except (OSError, PermissionError, ImportError) as exc:
        # No usable multiprocessing primitives in this environment (e.g. a
        # sandbox without /dev/shm): degrade to the serial solve, which
        # returns the identical labels.
        warnings.warn(
            f"process pool unavailable ({exc!r}); "
            "falling back to serial segmented solve",
            RuntimeWarning,
            stacklevel=2,
        )
        return solve_segmented(
            trace, cache_size, segment_length, lookahead=lookahead
        )

    segment_hist = registry.histogram("opt.segment_solve_seconds")
    decisions = np.zeros(n, dtype=bool)
    solved_requests = 0
    for (start, core_end, span), (core, seconds) in zip(spans, solved):
        segment_hist.observe(seconds)
        decisions[start:core_end] = core
        solved_requests += span
    return SegmentedOptResult(
        decisions=decisions,
        miss_cost=decisions_to_miss_cost(trace, decisions),
        n_segments=len(payloads),
        solved_requests=solved_requests,
    )
