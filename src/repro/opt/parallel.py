"""Parallel segmented OPT labeling over a process pool.

The time-axis split of :func:`repro.opt.segmentation.solve_segmented`
produces *independent* min-cost-flow sub-problems — segment ``k``'s labels
depend only on the requests in ``[start_k, core_end_k + lookahead)``.  The
serial path solves them one after another on the request thread; here the
same sub-problems fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
so a window boundary costs roughly ``serial_time / n_jobs`` wall-clock on a
multi-core box.

Because every segment is solved by the *same* :func:`repro.opt.mincost.solve_opt`
on the *same* sub-trace and reassembled in trace order, the returned labels
are bit-identical to the serial path; only wall-clock time changes.

Degradation ladder (each rung is counted and logged, never silent):

1. a failed segment solve is retried in the pool up to
   ``max_segment_retries`` times (``resilience.segment_retries``);
2. a segment that keeps failing — or any failure after the pool broke —
   is solved serially in the parent process
   (``resilience.segment_serial_fallbacks``), preserving bit-identical
   labels;
3. when no pool can be created at all (sandboxed containers without
   working semaphores, restricted fork) the whole solve degrades to the
   serial path (``resilience.pool_fallbacks``).

Deterministic drills: an installed :class:`repro.resilience.FaultPlan`
with ``opt.segment_solve`` crash specs fails chosen segments for a chosen
number of attempts (the fail flag travels in the payload, so workers never
need the plan).
"""

from __future__ import annotations

import logging
import os
import warnings
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from time import perf_counter

import numpy as np

from ..obs import get_registry
from ..resilience.faults import InjectedFaultError, get_fault_plan
from ..trace import Request, Trace
from .mincost import solve_opt
from .segmentation import (
    SegmentedOptResult,
    decisions_to_miss_cost,
    solve_segmented,
)

__all__ = ["solve_segmented_parallel"]

logger = logging.getLogger("repro.opt")

#: ``(segment requests incl. lookahead, cache_size, core length, fail flag)``
_Payload = tuple[list[Request], int, int, bool]


def _solve_segment(payload: _Payload) -> tuple[np.ndarray, float]:
    """Worker: solve one segment, return its core (non-lookahead) labels
    plus the solve's wall-clock seconds.

    Module-level so it pickles for process pools.  The duration is
    measured here (the parent's registry is unreachable from a worker
    process) and folded into the parent's per-segment histogram on return.
    The trailing fail flag carries fault injection across the process
    boundary: workers have no fault plan, so the parent decides per
    attempt whether this solve crashes.
    """
    requests, cache_size, core_length, fail = payload
    if fail:
        raise InjectedFaultError("opt.segment_solve")
    started = perf_counter()
    result = solve_opt(Trace(requests), cache_size)
    return result.decisions[:core_length], perf_counter() - started


def solve_segmented_parallel(
    trace: Trace,
    cache_size: int,
    segment_length: int,
    lookahead: int | None = None,
    n_jobs: int | None = None,
    max_segment_retries: int = 1,
) -> SegmentedOptResult:
    """Time-axis OPT approximation with segments solved in parallel.

    Args:
        trace: the full window.
        cache_size: cache capacity in bytes.
        segment_length: requests per independently solved segment.
        lookahead: extra requests appended to each segment before solving
            (same semantics and same default — ``segment_length // 2`` — as
            :func:`repro.opt.segmentation.solve_segmented`).
        n_jobs: worker processes.  ``None`` uses ``os.cpu_count()``; ``1``
            (or a single-segment window) falls through to the serial solve.
        max_segment_retries: in-pool retries per failing segment before it
            is solved serially in the parent (see the module docstring's
            degradation ladder).

    Returns:
        A :class:`SegmentedOptResult` bit-identical to the serial path.
    """
    if segment_length <= 0:
        raise ValueError("segment_length must be positive")
    if lookahead is None:
        lookahead = segment_length // 2
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError("n_jobs must be positive (or None for cpu_count)")
    if max_segment_retries < 0:
        raise ValueError("max_segment_retries must be non-negative")

    n = len(trace)
    payloads: list[tuple[list[Request], int, int]] = []
    spans: list[tuple[int, int, int]] = []  # (start, core_end, solved count)
    for start in range(0, n, segment_length):
        core_end = min(start + segment_length, n)
        stop = min(core_end + lookahead, n)
        payloads.append((trace.requests[start:stop], cache_size, core_end - start))
        spans.append((start, core_end, stop - start))

    if n_jobs == 1 or len(payloads) <= 1:
        return solve_segmented(
            trace, cache_size, segment_length, lookahead=lookahead
        )

    registry = get_registry()
    plan = get_fault_plan()
    # Consecutive failing attempts the plan injects per segment (all zeros
    # without a plan); decided up front so retries know when to stop failing.
    injected = [
        plan.segment_failures(i) if plan is not None else 0
        for i in range(len(payloads))
    ]

    try:
        with registry.span("opt.pool_setup"):
            pool = ProcessPoolExecutor(max_workers=min(n_jobs, len(payloads)))
    except (OSError, PermissionError, ImportError) as exc:
        # No usable multiprocessing primitives in this environment (e.g. a
        # sandbox without /dev/shm): degrade to the serial solve, which
        # returns the identical labels.
        registry.counter("resilience.pool_fallbacks").inc()
        logger.warning(
            "process pool unavailable (%s); "
            "falling back to serial segmented solve",
            type(exc).__name__, exc_info=exc,
        )
        warnings.warn(
            f"process pool unavailable ({exc!r}); "
            "falling back to serial segmented solve",
            RuntimeWarning,
            stacklevel=2,
        )
        return solve_segmented(
            trace, cache_size, segment_length, lookahead=lookahead
        )

    solved: list[tuple[np.ndarray, float]] = []
    pool_broken = False
    with pool, registry.span("opt.parallel_solve"):
        futures: list[Future] = [
            pool.submit(_solve_segment, (*p, injected[i] > 0))
            for i, p in enumerate(payloads)
        ]
        for index, payload in enumerate(payloads):
            future: Future | None = futures[index]
            failures = 0
            result: tuple[np.ndarray, float] | None = None
            while result is None:
                if future is not None:
                    try:
                        result = future.result()
                        break
                    except Exception as exc:
                        # Anything a worker can raise — injected crashes,
                        # genuine solver bugs, or a dead worker process
                        # (BrokenExecutor, which poisons every later
                        # future).  Each failure is counted and logged;
                        # recovery is retry-then-serial below.
                        failures += 1
                        if isinstance(exc, BrokenExecutor):
                            pool_broken = True
                        registry.counter(
                            "resilience.segment_solve_failures"
                        ).inc()
                        logger.warning(
                            "segment %d solve failed (%s), attempt %d",
                            index, type(exc).__name__, failures,
                        )
                future = None
                if not pool_broken and failures <= max_segment_retries:
                    try:
                        future = pool.submit(
                            _solve_segment,
                            (*payload, injected[index] > failures),
                        )
                        registry.counter("resilience.segment_retries").inc()
                    except BrokenExecutor:
                        pool_broken = True
                        logger.warning(
                            "process pool broke while resubmitting "
                            "segment %d; switching to serial solves",
                            index,
                        )
                if future is None:
                    registry.counter(
                        "resilience.segment_serial_fallbacks"
                    ).inc()
                    registry.event("resilience.segment_serial_fallback")
                    logger.warning(
                        "segment %d: solving serially in-process after "
                        "%d failed pool attempt(s)",
                        index, failures,
                    )
                    result = _solve_segment((*payload, False))
            solved.append(result)

    segment_hist = registry.histogram("opt.segment_solve_seconds")
    decisions = np.zeros(n, dtype=bool)
    solved_requests = 0
    for (start, core_end, span), (core, seconds) in zip(spans, solved):
        segment_hist.observe(seconds)
        decisions[start:core_end] = core
        solved_requests += span
    return SegmentedOptResult(
        decisions=decisions,
        miss_cost=decisions_to_miss_cost(trace, decisions),
        n_segments=len(payloads),
        solved_requests=solved_requests,
    )
