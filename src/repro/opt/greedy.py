"""Greedy interval-packing approximation of OPT.

Offline caching has an equivalent *interval* view: every pair of
consecutive requests to the same object is an interval that can be
"cached" — saving the object's retrieval cost but occupying its size in
bytes for the interval's whole span.  OPT picks the max-savings feasible
set; the min-cost flow solves this exactly, and the approximation
algorithms the paper cites ([3, 5, 35]) attack the same packing problem.

This module implements the natural greedy: consider intervals in order of
the paper's own ranking function ``C_i / (S_i * L_i)`` (savings per
byte-timestep) and accept an interval when capacity remains over its whole
span.  It is orders of magnitude faster than the flow solve, produces a
*feasible* decision vector (so its miss cost upper-bounds OPT's), and
serves both as a cross-check on the exact solver and as a cheap label
generator (``OptLabelConfig(mode="greedy")``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace import Trace
from .segmentation import decisions_to_miss_cost, rank_requests

__all__ = ["GreedyOptResult", "solve_greedy"]


@dataclass(frozen=True)
class GreedyOptResult:
    """Decisions of the greedy interval packing.

    Attributes:
        decisions: per-request admission labels (feasible by construction).
        miss_cost: implied miss cost (an upper bound on OPT's).
        accepted: number of intervals packed.
    """

    decisions: np.ndarray
    miss_cost: float
    accepted: int


def solve_greedy(trace: Trace, cache_size: int) -> GreedyOptResult:
    """Pack recurring intervals greedily by rank under the byte budget."""
    if cache_size <= 0:
        raise ValueError("cache size must be positive")
    n = len(trace)
    if n == 0:
        raise ValueError("cannot solve an empty trace")
    nxt = trace.next_occurrence()
    sizes = trace.sizes
    rank = rank_requests(trace)

    order = np.argsort(-rank, kind="stable")
    # Remaining capacity per time step (between request t and t+1).
    capacity = np.full(max(n - 1, 1), float(cache_size))
    decisions = np.zeros(n, dtype=bool)
    accepted = 0
    for i in order:
        i = int(i)
        j = int(nxt[i])
        if j < 0:
            break  # ranks are sorted: the rest never recur
        size = float(sizes[i])
        span = capacity[i:j]
        if span.min() >= size:
            span -= size
            decisions[i] = True
            accepted += 1
    return GreedyOptResult(
        decisions=decisions,
        miss_cost=decisions_to_miss_cost(trace, decisions),
        accepted=accepted,
    )
