"""Belady's MIN algorithm with optional admission (bypass).

For unit-size objects, offline optimal caching is achieved by the classic
farthest-in-future rule; allowing the incoming object itself to be the one
"evicted" (i.e. not admitted) extends optimality to the bypass setting that
the min-cost-flow OPT also assumes.  The test suite cross-checks the MCF
solver against this independent implementation on unit-size traces.
"""

from __future__ import annotations

from dataclasses import dataclass
import heapq

import numpy as np

from ..trace import Trace

__all__ = ["BeladyResult", "belady_unit_size"]


@dataclass(frozen=True)
class BeladyResult:
    """Outcome of a Belady simulation.

    Attributes:
        hits: per-request boolean hit flags.
        n_hits: total number of hits.
        ohr: object hit ratio over the whole trace.
    """

    hits: np.ndarray
    n_hits: int
    ohr: float


_NEVER = float("inf")


def belady_unit_size(trace: Trace, cache_slots: int) -> BeladyResult:
    """Simulate Belady's MIN with bypass on a unit-size trace.

    Args:
        trace: request trace; all sizes must be 1.
        cache_slots: number of unit-size slots in the cache.

    Raises:
        ValueError: if any request has size != 1.
    """
    sizes = trace.sizes
    if not (sizes == 1).all():
        raise ValueError("belady_unit_size requires all object sizes == 1")
    if cache_slots <= 0:
        raise ValueError("cache_slots must be positive")

    nxt = trace.next_occurrence()
    n = len(trace)
    objs = trace.objs

    hits = np.zeros(n, dtype=bool)
    # cache maps object -> next use index; a max-heap (negated) finds the
    # farthest-in-future victim lazily.
    cache: dict[int, float] = {}
    heap: list[tuple[float, int]] = []  # (-next_use, obj)

    for i in range(n):
        obj = int(objs[i])
        next_use = float(nxt[i]) if nxt[i] >= 0 else _NEVER
        if obj in cache:
            hits[i] = True
            cache[obj] = next_use
            heapq.heappush(heap, (-next_use, obj))
            continue
        if next_use == _NEVER:
            # Never used again: admitting it cannot produce a hit.
            continue
        if len(cache) < cache_slots:
            cache[obj] = next_use
            heapq.heappush(heap, (-next_use, obj))
            continue
        # Cache full: find the current farthest-in-future resident.
        while heap:
            neg_use, victim = heap[0]
            if victim in cache and cache[victim] == -neg_use:
                break
            heapq.heappop(heap)  # stale entry
        farthest_use = -heap[0][0] if heap else _NEVER
        if farthest_use > next_use:
            victim = heap[0][1]
            heapq.heappop(heap)
            del cache[victim]
            cache[obj] = next_use
            heapq.heappush(heap, (-next_use, obj))
        # else: bypass — the incoming object is the farthest in future.

    n_hits = int(hits.sum())
    return BeladyResult(hits=hits, n_hits=n_hits, ohr=n_hits / n if n else 0.0)
