"""Bounds on OPT's miss cost / byte hit ratio for long traces.

The exact min-cost flow is only tractable for short windows, but two
complementary approximations bracket the true offline optimum (this is the
structure of the FOO/PFOO bounds in [8], realised with our segmented
solver):

* **Lower bound on miss cost** (upper bound on BHR): the *fractional* flow
  cost of hard-cut segments.  Within a segment the true OPT's behaviour is
  feasible for the segment's flow problem, so the segment's fractional
  optimum can only be cheaper; intervals crossing segment boundaries are
  charged nothing.
* **Upper bound on miss cost** (lower bound on BHR): the cost implied by
  any *feasible* decision vector — here the decisions of the segmented
  solve with lookahead, which a real cache could execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace import Trace
from .mincost import solve_opt
from .segmentation import decisions_to_miss_cost, solve_segmented

__all__ = ["OptBounds", "opt_miss_cost_bounds", "opt_bhr_bounds"]


@dataclass(frozen=True)
class OptBounds:
    """A bracket around OPT's total miss cost.

    Attributes:
        miss_cost_lower: no offline policy can miss less than this.
        miss_cost_upper: a concrete decision vector achieves this.
    """

    miss_cost_lower: float
    miss_cost_upper: float

    def __post_init__(self) -> None:
        if self.miss_cost_lower > self.miss_cost_upper + 1e-6:
            raise ValueError(
                f"invalid bracket: lower {self.miss_cost_lower} > "
                f"upper {self.miss_cost_upper}"
            )


def opt_miss_cost_bounds(
    trace: Trace, cache_size: int, segment_length: int = 2_000
) -> OptBounds:
    """Bracket OPT's miss cost using segmented flow solves.

    Args:
        trace: the full trace.
        cache_size: cache capacity in bytes.
        segment_length: segment granularity (larger = tighter bounds,
            slower).
    """
    n = len(trace)
    if n == 0:
        raise ValueError("cannot bound OPT on an empty trace")

    # Lower bound: fractional per-segment flow costs + compulsory misses.
    prv = trace.prev_occurrence()
    compulsory = float(trace.costs[prv < 0].sum())
    fractional = 0.0
    for start in range(0, n, segment_length):
        window = trace[start : start + segment_length]
        if len(window) == 0:
            continue
        fractional += solve_opt(window, cache_size).flow_cost
    lower = compulsory + fractional

    # Upper bound: the cost a cache replaying segmented-with-lookahead
    # decisions would actually pay.
    seg = solve_segmented(
        trace, cache_size, segment_length, lookahead=segment_length // 2
    )
    upper = decisions_to_miss_cost(trace, seg.decisions)

    # The decision-based accounting can in rare corner cases dip below the
    # segmented fractional sum (both are approximations on different axes);
    # clamp to keep the bracket consistent.
    return OptBounds(
        miss_cost_lower=min(lower, upper), miss_cost_upper=upper
    )


def opt_bhr_bounds(
    trace: Trace, cache_size: int, segment_length: int = 2_000
) -> tuple[float, float]:
    """(lower, upper) bounds on OPT's byte hit ratio.

    Only meaningful when retrieval costs equal object sizes (the BHR
    objective), because then ``BHR = 1 - miss_cost / total_bytes``.
    """
    sizes = trace.sizes
    costs = trace.costs
    if not (costs == sizes).all():
        raise ValueError(
            "opt_bhr_bounds requires the BHR objective (cost == size)"
        )
    bounds = opt_miss_cost_bounds(trace, cache_size, segment_length)
    total = float(sizes.sum())
    return (
        1.0 - bounds.miss_cost_upper / total,
        1.0 - bounds.miss_cost_lower / total,
    )
