"""Inverse-reinforcement-learning extension (paper §4, future work).

The related-work section suggests that "our reduction may also enable the
design of better RL caching systems using techniques from inverse
reinforcement learning that learn optimal rewards from OPT [1, 57, 62]".
This module implements the simplest useful instantiation of that idea:

* treat OPT's per-request admit/bypass choices as expert demonstrations;
* learn a *linear reward function* over LFO's online features with a
  max-margin structured perceptron (Ratliff et al.'s max-margin planning,
  reduced to the two-action cache-admission MDP);
* act greedily against the learned reward: admit when the reward of
  admitting beats bypassing, evict the resident object with the lowest
  admission reward.

Because the reward is linear, this model is strictly weaker than the
boosted trees LFO uses — which is exactly the comparison the extension
benchmark draws: the reduction to supervised learning is what matters, and
given the reduction, nonlinear learners win.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..cache import CachePolicy
from ..features import Dataset, FeatureTracker, feature_names
from ..trace import Request, Trace
from .online import OptLabelConfig

__all__ = ["LinearRewardIRL", "IRLCache", "IRLOnline"]


@dataclass
class LinearRewardIRL:
    """Max-margin linear reward learned from OPT demonstrations.

    The reward of admitting in state ``x`` is ``w . x_std + b``; the reward
    of bypassing is fixed at 0.  Training enforces a margin: expert-admitted
    states must score above +margin, expert-bypassed states below -margin.

    Attributes:
        epochs: perceptron passes over the demonstrations.
        margin: hinge margin.
        learning_rate: perceptron step size.
        l2: weight decay applied once per epoch.
    """

    epochs: int = 5
    margin: float = 1.0
    learning_rate: float = 0.1
    l2: float = 1e-4
    seed: int = 0
    weights: np.ndarray | None = None
    bias: float = 0.0
    _mean: np.ndarray | None = field(default=None, repr=False)
    _std: np.ndarray | None = field(default=None, repr=False)
    _low: np.ndarray | None = field(default=None, repr=False)
    _high: np.ndarray | None = field(default=None, repr=False)

    def _standardise(self, X: np.ndarray) -> np.ndarray:
        # Clip to the training range first: a linear model has no mechanism
        # to saturate, so out-of-range sentinels (e.g. the MISSING_GAP
        # value on a cold object) would otherwise dominate every weight.
        Z = np.clip(X, self._low, self._high)
        return (Z - self._mean) / self._std

    def fit(self, X: np.ndarray, admitted: np.ndarray) -> "LinearRewardIRL":
        """Learn reward weights from (features, OPT admit decision) pairs."""
        X = np.asarray(X, dtype=np.float64)
        y = np.where(np.asarray(admitted, dtype=bool), 1.0, -1.0)
        if len(X) != len(y):
            raise ValueError("X and admitted length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty demonstration set")
        # Standardise features: sizes and gaps span many orders of magnitude.
        self._low = X.min(axis=0)
        self._high = X.max(axis=0)
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std == 0] = 1.0
        Z = self._standardise(X)

        rng = np.random.default_rng(self.seed)
        w = np.zeros(X.shape[1])
        b = 0.0
        n = len(Z)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in order:
                score = Z[i] @ w + b
                if y[i] * score < self.margin:
                    w += self.learning_rate * y[i] * Z[i]
                    b += self.learning_rate * y[i]
            w *= 1.0 - self.l2
        self.weights = w
        self.bias = b
        return self

    def reward(self, X: np.ndarray) -> np.ndarray:
        """Learned admission reward per feature row."""
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        Z = self._standardise(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        return Z @ self.weights + self.bias

    def admit(self, features: np.ndarray) -> bool:
        """Greedy action: admit iff the admission reward beats bypass (0)."""
        return bool(self.reward(features)[0] > 0.0)

    def agreement_with(self, X: np.ndarray, admitted: np.ndarray) -> float:
        """Fraction of demonstrations the greedy policy matches."""
        predictions = self.reward(X) > 0.0
        return float((predictions == np.asarray(admitted, dtype=bool)).mean())


class IRLCache(CachePolicy):
    """Cache policy acting greedily on a learned linear reward."""

    name = "IRL"

    def __init__(
        self,
        cache_size: int,
        model: LinearRewardIRL | None = None,
        n_gaps: int = 50,
    ) -> None:
        super().__init__(cache_size)
        self.model = model
        self._tracker = FeatureTracker(n_gaps=n_gaps)
        self._reward: dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._stamp: dict[int, int] = {}
        self._counter = 0
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.last_features: np.ndarray | None = None

    @property
    def tracker(self) -> FeatureTracker:
        """Shared online feature state."""
        return self._tracker

    def _rank(self, obj: int, reward: float) -> None:
        self._reward[obj] = reward
        self._counter += 1
        self._stamp[obj] = self._counter
        heapq.heappush(self._heap, (reward, self._counter, obj))

    def on_request(self, request: Request) -> bool:
        """Process one request under the learned-reward policy."""
        features = self._tracker.features(request, self.free_bytes)
        self.last_features = features
        reward = (
            float(self.model.reward(features)[0])
            if self.model is not None
            else 0.0
        )
        hit = request.obj in self._entries
        if hit:
            self._rank(request.obj, reward)
            self._lru.move_to_end(request.obj)
        else:
            self._on_miss_observed(request)
        if not hit and request.size <= self.cache_size and (
            self.model is None or reward > 0.0
        ):
            while self.used_bytes + request.size > self.cache_size:
                victim = self._select_victim(request)
                if victim is None:
                    break
                self._remove(victim)
            if self.used_bytes + request.size <= self.cache_size:
                self._insert(request)
                self._rank(request.obj, reward)
        self._tracker.update(request)
        return hit

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._reward.pop(obj, None)
        self._stamp.pop(obj, None)
        self._lru.pop(obj, None)

    def _select_victim(self, incoming: Request) -> int | None:
        if self.model is None:
            return next(iter(self._lru), None)
        while self._heap:
            _, stamp, obj = self._heap[0]
            if obj in self._entries and self._stamp.get(obj) == stamp:
                return obj
            heapq.heappop(self._heap)
        return None

    def _reset_policy_state(self) -> None:
        self._reward.clear()
        self._heap.clear()
        self._stamp.clear()
        self._lru.clear()
        self._counter = 0
        self.last_features = None


class IRLOnline(IRLCache):
    """Windowed online loop for the IRL policy (mirrors LFOOnline)."""

    name = "IRL-online"

    def __init__(
        self,
        cache_size: int,
        window: int = 10_000,
        irl_params: LinearRewardIRL | None = None,
        label_config: OptLabelConfig | None = None,
        n_gaps: int = 50,
        min_positive_labels: int = 10,
    ) -> None:
        super().__init__(cache_size, model=None, n_gaps=n_gaps)
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._irl_template = irl_params or LinearRewardIRL()
        self.label_config = label_config or OptLabelConfig()
        self.min_positive_labels = min_positive_labels
        self.n_retrains = 0
        self._buffer_requests: list[Request] = []
        self._buffer_features: list[np.ndarray] = []

    def on_request(self, request: Request) -> bool:
        """Process one request, retraining at window boundaries."""
        hit = super().on_request(request)
        self._buffer_requests.append(request)
        self._buffer_features.append(self.last_features)
        if len(self._buffer_requests) >= self.window:
            self._retrain()
        return hit

    def _retrain(self) -> None:
        window_trace = Trace(self._buffer_requests)
        self._buffer_requests = []
        X = np.vstack(self._buffer_features)
        self._buffer_features = []
        labels = self.label_config.compute(window_trace, self.cache_size)
        if labels.sum() < self.min_positive_labels:
            return
        model = LinearRewardIRL(
            epochs=self._irl_template.epochs,
            margin=self._irl_template.margin,
            learning_rate=self._irl_template.learning_rate,
            l2=self._irl_template.l2,
            seed=self._irl_template.seed,
        ).fit(X, labels)
        self.model = model
        self.n_retrains += 1
