"""LFO core: model, cache policy, online loop, and experiment pipeline."""

from .cutoff import CutoffSweep, cutoff_sweep, equal_error_cutoff
from .drift import AdaptiveLFOOnline, DriftDetector
from .hierarchy import TieredLFOCache, TieredLFOOnline, TierStats
from .irl import IRLCache, IRLOnline, LinearRewardIRL
from .lfo import LFOCache, LFOModel, SampledEvictionConfig
from .online import LFOOnline, OptLabelConfig
from .pipeline import (
    AccuracyReport,
    WindowData,
    error_rates,
    prepare_windows,
    train_and_evaluate,
)
from .throughput import ThroughputPoint, gbits_served, measure_throughput

__all__ = [
    "AdaptiveLFOOnline",
    "DriftDetector",
    "CutoffSweep",
    "cutoff_sweep",
    "equal_error_cutoff",
    "TieredLFOCache",
    "TieredLFOOnline",
    "TierStats",
    "IRLCache",
    "IRLOnline",
    "LinearRewardIRL",
    "LFOCache",
    "LFOModel",
    "LFOOnline",
    "SampledEvictionConfig",
    "OptLabelConfig",
    "AccuracyReport",
    "WindowData",
    "error_rates",
    "prepare_windows",
    "train_and_evaluate",
    "ThroughputPoint",
    "gbits_served",
    "measure_throughput",
]
