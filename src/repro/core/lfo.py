"""The LFO caching policy (Sections 2.3 and 2.4 of the paper).

``LFOModel`` wraps the boosted-tree predictor that maps online features to
OPT's admission likelihood.  ``LFOCache`` is the caching policy built on
top of it:

* on a miss, admit iff the predicted likelihood is >= the cutoff (0.5);
* rank cached objects by predicted likelihood and evict the minimum;
* re-evaluate an object's likelihood whenever it is requested again — which
  means a cache hit can be followed by the eviction of the hit object,
  matching OPT's occasional behaviour (Section 2.4).

Before a model is available (cold start), ``LFOCache`` degrades to
admit-all LRU.

Eviction at scale
-----------------

Likelihood scores are kept *lazily stale*: an object is re-scored only
when it is requested (the paper's rule) or when it becomes an eviction
candidate — never globally.  Two structures keep that cheap at millions
of resident objects:

* the likelihood heap is *bounded*: every re-rank pushes a superseded
  tuple, and once stale entries exceed ``stale_compact_ratio`` of the
  heap it is compacted in place down to the live entries (observable as
  ``evict.compactions`` / ``evict.heap_stale_ratio``), so heap memory
  stays O(resident objects) on hit-heavy traffic;
* ``eviction="sampled"`` (LRB-style, "Learned Cache Eviction Framework
  with Minimal Overhead") draws ``SampledEvictionConfig.k`` seeded-random
  resident candidates plus the current heap minimum as a safety
  candidate, scores only those in one ``features_batch`` + compiled-
  predictor call (``evict.candidates_scored``), and returns them
  worst-first as a multi-victim plan — eviction cost is O(k), independent
  of the resident-set size (``bench_ext_evict`` gates this at 10^6
  residents).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..features import Dataset, FeatureTracker
from ..gbdt import GBDTClassifier, GBDTParams
from ..cache import CachePolicy
from ..obs import get_registry
from ..trace import Request

__all__ = ["LFOModel", "LFOCache", "SampledEvictionConfig"]

#: Below this heap length compaction is never triggered: rebuilding tiny
#: heaps buys nothing, and the floor gives tests a hard O(n_objects) bound.
_COMPACT_MIN_HEAP = 64

#: Bucket edges for the admission-score histogram: deciles of the
#: predicted likelihood (a sigmoid output in [0, 1]; the overflow bucket
#: is (0.9, 1.0]).  Ten bins is the conventional PSI granularity — the
#: health layer computes per-window population-stability indices over
#: exactly these buckets to spot covariate shift under a fixed model.
ADMISSION_SCORE_BUCKETS = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
)


@dataclass(frozen=True)
class SampledEvictionConfig:
    """Tuning knobs for ``LFOCache(eviction="sampled")``.

    Attributes:
        k: eviction candidates sampled per plan (the LRB paper finds
            16–64 sufficient; candidates are drawn with replacement and
            deduplicated, and the heap-minimum safety candidate is added
            on top, so at most ``k + 1`` objects are scored per plan).
        seed: seed for the candidate sampler's ``np.random.Generator``
            (re-seeded on :meth:`LFOCache.reset`, so victim sequences are
            reproducible run-to-run).
        stale_compact_ratio: compact the likelihood heap once more than
            this fraction of its entries is stale (superseded or
            evicted).  ``0.5`` bounds the heap at ~2x the live entries.
    """

    k: int = 64
    seed: int = 0
    stale_compact_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 < self.stale_compact_ratio < 1.0:
            raise ValueError("stale_compact_ratio must be in (0, 1)")


@dataclass
class LFOModel:
    """A trained admission predictor plus its decision cutoff.

    Attributes:
        classifier: fitted :class:`GBDTClassifier`.
        cutoff: admission threshold on the predicted likelihood (0.5 in the
            paper; ~0.65 equalises false positives and negatives, §3).
        n_gaps: gap-feature count the classifier was trained with.
    """

    classifier: GBDTClassifier
    cutoff: float = 0.5
    n_gaps: int = 50

    @classmethod
    def train(
        cls,
        dataset: Dataset,
        params: GBDTParams | None = None,
        cutoff: float = 0.5,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "LFOModel":
        """Train a model on a (features, OPT labels) dataset.

        The fitted ensemble is flattened into its
        :class:`repro.gbdt.CompiledPredictor` here, at training time —
        in the online pipeline that is the background trainer, so the
        request path never pays compilation cost.
        """
        classifier = GBDTClassifier(params or GBDTParams())
        classifier.fit(dataset.X, dataset.y, eval_set=eval_set)
        classifier.compiled()
        n_gaps = len(dataset.names) - 3
        return cls(classifier=classifier, cutoff=cutoff, n_gaps=n_gaps)

    def likelihood(self, features: np.ndarray) -> np.ndarray:
        """Predicted probability that OPT would cache each row."""
        return self.classifier.compiled().predict_proba(features)

    def likelihood_single(self, features: np.ndarray) -> float:
        """Likelihood for one feature vector, no batch-shape overhead.

        The per-request scoring path: skips ``atleast_2d`` and the
        result-array allocation of :meth:`likelihood` and returns a bare
        float.  Identical value to ``likelihood(features)[0]``.
        """
        return self.classifier.compiled().predict_proba_single(features)

    def admit(self, features: np.ndarray) -> bool:
        """Admission decision for a single feature vector."""
        return self.likelihood_single(features) >= self.cutoff

    def prediction_error(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of requests where the model disagrees with OPT."""
        predictions = self.likelihood(X) >= self.cutoff
        return float((predictions != (np.asarray(y) > 0.5)).mean())


class LFOCache(CachePolicy):
    """Likelihood-ranked cache driven by an :class:`LFOModel`.

    The paper remarks that only ~50 lines of simulator code are needed for
    LFO once OPT and the learner exist; the logic below is exactly that
    small.
    """

    name = "LFO"

    def __init__(
        self,
        cache_size: int,
        model: LFOModel | None = None,
        n_gaps: int = 50,
        tracker: FeatureTracker | None = None,
        eviction: str = "likelihood",
        rescore_interval: int = 0,
        sampled: SampledEvictionConfig | None = None,
    ) -> None:
        """Args:
            cache_size: capacity in bytes.
            model: trained predictor (None = cold-start admit-all LRU).
            n_gaps: gap-feature count of the tracker.
            tracker: optional shared feature state.
            eviction: ``"likelihood"`` (the paper's rule: evict the lowest
                predicted likelihood), ``"lru"`` (admission-only LFO — a
                §5 "policy design" variant), or ``"sampled"`` (score only
                K seeded-random candidates per eviction — the
                minimal-overhead engine for large resident sets, see the
                module docstring).
            rescore_interval: when > 0, every this-many requests *all*
                resident objects are re-scored in one vectorised batch, so
                eviction ranks never go stale (another §5 variant; the
                paper only re-scores an object when it is requested).
            sampled: sampling/compaction knobs for ``eviction="sampled"``
                (defaults apply when None); its ``stale_compact_ratio``
                governs heap compaction in every eviction mode.
        """
        super().__init__(cache_size)
        if eviction not in ("likelihood", "lru", "sampled"):
            raise ValueError(
                "eviction must be 'likelihood', 'lru' or 'sampled'"
            )
        if rescore_interval < 0:
            raise ValueError("rescore_interval must be >= 0")
        self.model = model
        self.eviction = eviction
        self.rescore_interval = rescore_interval
        self.sampled_config = sampled or SampledEvictionConfig()
        self._rng = np.random.default_rng(self.sampled_config.seed)
        self._tracker = tracker or FeatureTracker(n_gaps=n_gaps)
        self._score: dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []  # (score, stamp, obj)
        self._stamp: dict[int, int] = {}
        self._counter = 0
        self._lru: OrderedDict[int, None] = OrderedDict()  # cold-start rank
        #: Residents as a swap-remove list + position map, so the sampler
        #: can draw uniform candidates in O(k) regardless of cache size.
        self._resident: list[int] = []
        self._resident_pos: dict[int, int] = {}
        self._requests_seen = 0
        self._now = 0.0
        self.last_features: np.ndarray | None = None
        # Bind-cached score instrument (None while obs is disabled), so
        # the per-request cost is one identity compare — see
        # ``_bind_score_instrument``.
        self._obs_registry = None
        self._score_hist = None

    @property
    def tracker(self) -> FeatureTracker:
        """The online feature state (shared with the training pipeline)."""
        return self._tracker

    def set_model(self, model: LFOModel) -> None:
        """Swap in a freshly trained model (window hand-over, Fig. 2).

        Ensures the model's compiled predictor exists before the swap:
        for models arriving from a trainer process the flattened arrays
        travelled in the pickle, so this is a cache hit; for models built
        any other way it pulls the one-time flattening off the request
        path.
        """
        model.classifier.compiled()
        self.model = model

    @property
    def supports_batched_scoring(self) -> bool:
        """Whether the simulator may score requests in lookahead batches.

        Requires a static model (batch scores would go stale across a
        model swap) and no periodic full rescore (whose every-N-requests
        trigger is entangled with request order).  Sampled eviction stays
        batchable: its candidate scoring runs inside
        :meth:`apply_scored` against live tracker/free-bytes state, and
        its seeded generator advances only on evictions, which the
        batched engine replays in exactly the scalar order (see
        :mod:`repro.sim.batched`).  Subclasses with request-path side
        effects (e.g. :class:`LFOOnline`) opt out.
        """
        return self.model is not None and self.rescore_interval == 0

    def _rank(self, obj: int, score: float) -> None:
        self._score[obj] = score
        self._counter += 1
        self._stamp[obj] = self._counter
        heapq.heappush(self._heap, (score, self._counter, obj))
        # Bounded-heap discipline: every re-rank leaves a superseded tuple
        # behind; compact once stale entries dominate (len(_stamp) is
        # exactly the live-entry count — stamps are popped on removal).
        heap_len = len(self._heap)
        if (
            heap_len >= _COMPACT_MIN_HEAP
            and heap_len - len(self._stamp)
            > self.sampled_config.stale_compact_ratio * heap_len
        ):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop superseded/evicted heap tuples and re-heapify in place.

        Cost is O(live entries), amortised O(1) per :meth:`_rank` because
        at least half the heap (at the default ratio) is discarded.
        """
        registry = get_registry()
        if registry.enabled:
            registry.counter("evict.compactions").inc()
            registry.gauge("evict.heap_stale_ratio").set(
                1.0 - len(self._stamp) / len(self._heap)
            )
        stamps = self._stamp
        self._heap = [
            entry for entry in self._heap if stamps.get(entry[2]) == entry[1]
        ]
        heapq.heapify(self._heap)

    def _rescore_all(self) -> None:
        """Batch-refresh every resident object's likelihood."""
        if self.model is None or not self._entries:
            return
        objs = list(self._entries)
        probes = [
            Request(self._now, obj, self._entries[obj]) for obj in objs
        ]
        matrix = self._tracker.features_batch(probes, self.free_bytes)
        scores = self.model.likelihood(matrix)
        for obj, score in zip(objs, scores):
            self._rank(obj, float(score))

    def on_request(self, request: Request) -> bool:
        """Process one request: score, admit/evict, learn features."""
        self._now = request.time
        if (
            self.rescore_interval
            and (self._requests_seen + 1) % self.rescore_interval == 0
        ):
            self._rescore_all()
        features = self._tracker.features(request, self.free_bytes)
        score = (
            self.model.likelihood_single(features)
            if self.model is not None
            else 0.0
        )
        return self.apply_scored(request, features, score)

    def apply_scored(
        self, request: Request, features: np.ndarray, score: float
    ) -> bool:
        """Apply one already-scored request: admit/evict/record.

        Everything :meth:`on_request` does *after* feature extraction and
        model scoring, so the batched scoring engine
        (:mod:`repro.sim.batched`) can pre-score lookahead batches and
        replay decisions through exactly this code path.
        """
        self._now = request.time
        self._requests_seen += 1
        self.last_features = features
        registry = get_registry()
        if registry is not self._obs_registry:
            self._bind_score_instrument(registry)
        if self._score_hist is not None and self.model is not None:
            self._score_hist.observe(score)
        hit = request.obj in self._entries
        if hit:
            # Re-evaluate the hit object's likelihood (Section 2.4).
            self._costs[request.obj] = request.cost
            self._rank(request.obj, score)
            self._lru.move_to_end(request.obj)
        else:
            # Base-class contract: every observed miss reaches the hook,
            # even when admission is refused or the object cannot fit.
            self._on_miss_observed(request)
            if request.size <= self.cache_size and self._should_admit(score):
                if self._evict_until_fits(request):
                    self._insert(request)
                    self._rank(request.obj, score)
        self._tracker.update(request)
        return hit

    def _bind_score_instrument(self, registry) -> None:
        """Re-resolve the admission-score histogram for a new registry.

        Runs once per registry swap (``use_registry`` scopes), never per
        request: :meth:`apply_scored` only compares identities.  While
        observability is disabled the cached instrument is None and the
        per-request cost is a single ``is`` check.
        """
        self._obs_registry = registry
        self._score_hist = (
            registry.histogram("lfo.admission_score", ADMISSION_SCORE_BUCKETS)
            if registry.enabled
            else None
        )

    def _should_admit(self, score: float) -> bool:
        if self.model is None:
            return True  # cold start: admit-all LRU
        return score >= self.model.cutoff

    def _insert(self, request: Request) -> None:
        super()._insert(request)
        self._lru[request.obj] = None
        self._resident_pos[request.obj] = len(self._resident)
        self._resident.append(request.obj)

    def _remove(self, obj: int) -> None:
        super()._remove(obj)
        self._score.pop(obj, None)
        self._stamp.pop(obj, None)
        self._lru.pop(obj, None)
        # O(1) swap-remove keeps the sampler's candidate pool dense.
        pos = self._resident_pos.pop(obj)
        last = self._resident.pop()
        if last != obj:
            self._resident[pos] = last
            self._resident_pos[last] = pos

    def _restore(
        self,
        obj: int,
        size: int,
        incoming: Request,
        cost: float | None = None,
    ) -> None:
        # Re-insert and re-rank, otherwise a restored object would be
        # invisible to likelihood eviction (stuck resident forever).
        super()._restore(obj, size, incoming, cost)
        if self.model is not None:
            probe = Request(self._now, obj, size)
            features = self._tracker.features(probe, self.free_bytes)
            self._rank(obj, self.model.likelihood_single(features))

    def _heap_min(self) -> int | None:
        """Current valid heap minimum (lazily popping stale tuples)."""
        heap = self._heap
        while heap:
            _, stamp, obj = heap[0]
            if self._stamp.get(obj) == stamp:
                return obj
            heapq.heappop(heap)
        return None

    def _select_victim(self, incoming: Request) -> int | None:
        if self.model is None or self.eviction == "lru":
            return next(iter(self._lru), None)
        return self._heap_min()

    def _select_victims(self, incoming: Request) -> list[int]:
        if (
            self.eviction == "sampled"
            and self.model is not None
            and self._entries
        ):
            return self._sampled_plan()
        return super()._select_victims(incoming)

    def _sampled_plan(self) -> list[int]:
        """One sampled-candidate eviction plan, worst (lowest score) first.

        Draws ``k`` uniform resident candidates (with replacement,
        deduplicated) plus the current heap minimum as a safety candidate
        — the heap min carries the lowest *lazily stale* score, so a
        genuinely cold object cannot dodge eviction just by never being
        sampled.  All candidates are scored in one ``features_batch`` +
        compiled-predictor call against live tracker state and re-ranked
        (scored-on-candidacy keeps the heap fresh exactly where it
        matters).  With ``k >= n_objects`` the plan degenerates to a full
        fresh rescore of every resident in residency order — the
        equivalence anchor for the ablation tests.
        """
        config = self.sampled_config
        n = len(self._resident)
        if config.k >= n:
            candidates = list(self._entries)
        else:
            drawn = self._rng.integers(0, n, size=config.k)
            picked = dict.fromkeys(self._resident[i] for i in drawn)
            safety = self._heap_min()
            if safety is not None:
                picked[safety] = None
            candidates = list(picked)
        probes = [
            Request(self._now, obj, self._entries[obj]) for obj in candidates
        ]
        matrix = self._tracker.features_batch(probes, self.free_bytes)
        scores = self.model.likelihood(matrix)
        for obj, score in zip(candidates, scores):
            self._rank(obj, float(score))
        registry = get_registry()
        if registry.enabled:
            registry.counter("evict.candidates_scored").inc(len(candidates))
        order = np.argsort(scores, kind="stable")
        return [candidates[i] for i in order]

    def _reset_policy_state(self) -> None:
        self._score.clear()
        self._heap.clear()
        self._stamp.clear()
        self._lru.clear()
        self._resident.clear()
        self._resident_pos.clear()
        self._rng = np.random.default_rng(self.sampled_config.seed)
        self._counter = 0
        self._requests_seen = 0
        self._now = 0.0
        self.last_features = None
