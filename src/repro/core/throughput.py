"""Prediction throughput measurement (Figure 7).

The paper measures how many requests per second LFO's decision trees can
score as predictor threads are added, and converts the rate into the link
bandwidth a CDN server could sustain (40 Gbit/s needs ~2 threads at 32 KB
mean object size on their hardware).

Scoring goes through the model's :class:`repro.gbdt.CompiledPredictor`.
With its C kernel available the call releases the GIL, so predictor
*threads* scale like the paper's; on the numpy fallback fancy indexing
holds the GIL and threads collapse — worker *processes* (the default
mode) give real parallelism either way.  The scaling shape and the
Gbit/s arithmetic carry over to both backends.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .lfo import LFOModel

__all__ = ["ThroughputPoint", "measure_throughput", "gbits_served"]


@dataclass(frozen=True)
class ThroughputPoint:
    """One (worker count, rate) measurement."""

    threads: int
    requests_per_second: float
    batch_size: int
    mode: str = "process"


# Module-level state for process workers (set by the pool initializer so the
# model is unpickled once per worker, not once per task).
_WORKER_MODEL: LFOModel | None = None
_WORKER_BATCH: np.ndarray | None = None


def _init_worker(model: LFOModel, batch: np.ndarray) -> None:
    global _WORKER_MODEL, _WORKER_BATCH
    _WORKER_MODEL = model
    _WORKER_BATCH = batch
    # One untimed scoring call binds the compiled predictor — and, in a
    # fresh worker process, builds the prediction kernel — so the timed
    # loop measures steady-state scoring only.
    model.likelihood(batch[:1])


def _scoring_loop(duration: float) -> int:
    """Score batches until the duration elapses; returns predictions made."""
    deadline = time.perf_counter() + duration
    done = 0
    while time.perf_counter() < deadline:
        _WORKER_MODEL.likelihood(_WORKER_BATCH)
        done += len(_WORKER_BATCH)
    return done


def measure_throughput(
    model: LFOModel,
    X: np.ndarray,
    threads: int,
    batch_size: int = 4096,
    min_duration: float = 0.5,
    mode: str = "process",
) -> ThroughputPoint:
    """Measure sustained predictions/second at a given worker count.

    Args:
        model: the predictor to score with.
        X: feature rows to draw scoring batches from.
        threads: number of parallel workers.
        batch_size: rows per scoring call.
        min_duration: measurement window per worker, in seconds.
        mode: ``"process"`` (default; real parallelism) or ``"thread"``
            (GIL-bound, kept to demonstrate why processes are needed).
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if mode not in ("process", "thread"):
        raise ValueError("mode must be 'process' or 'thread'")
    n = len(X)
    if n == 0:
        raise ValueError("X must be non-empty")
    batch = np.ascontiguousarray(X[: min(batch_size, n)])

    if threads == 1:
        _init_worker(model, batch)
        start = time.perf_counter()
        total = _scoring_loop(min_duration)
        elapsed = time.perf_counter() - start
    elif mode == "thread":
        _init_worker(model, batch)
        with ThreadPoolExecutor(max_workers=threads) as pool:
            start = time.perf_counter()
            total = sum(pool.map(_scoring_loop, [min_duration] * threads))
            elapsed = time.perf_counter() - start
    else:
        with ProcessPoolExecutor(
            max_workers=threads,
            initializer=_init_worker,
            initargs=(model, batch),
        ) as pool:
            # Warm the workers (imports + model unpickle) outside the timer.
            list(pool.map(_scoring_loop, [0.01] * threads))
            start = time.perf_counter()
            total = sum(pool.map(_scoring_loop, [min_duration] * threads))
            elapsed = time.perf_counter() - start

    return ThroughputPoint(
        threads=threads,
        requests_per_second=total / elapsed,
        batch_size=len(batch),
        mode=mode,
    )


def gbits_served(requests_per_second: float, mean_object_bytes: float) -> float:
    """Link bandwidth (Gbit/s) that a prediction rate can keep busy.

    The paper's arithmetic: every served request moves the object's bytes,
    so ``rate * mean_size * 8 / 1e9`` Gbit/s.
    """
    return requests_per_second * mean_object_bytes * 8.0 / 1e9
