"""Cutoff analysis (Figure 5a) and cutoff auto-tuning.

The paper observes that false positive and false negative rates plateau for
cutoffs between 0.25 and 0.75, and that raising the cutoff to ~0.65
equalises the two.  :func:`cutoff_sweep` regenerates the curve;
:func:`equal_error_cutoff` finds the equalising threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pipeline import error_rates

__all__ = ["CutoffSweep", "cutoff_sweep", "equal_error_cutoff"]


@dataclass(frozen=True)
class CutoffSweep:
    """FP/FN rates over a grid of cutoffs (the data behind Figure 5a)."""

    cutoffs: np.ndarray
    false_positive: np.ndarray
    false_negative: np.ndarray

    @property
    def prediction_error(self) -> np.ndarray:
        """Total error (FP + FN) per cutoff."""
        return self.false_positive + self.false_negative


def cutoff_sweep(
    likelihoods: np.ndarray,
    labels: np.ndarray,
    cutoffs: np.ndarray | None = None,
) -> CutoffSweep:
    """Compute FP/FN rates over a cutoff grid.

    Args:
        likelihoods: model's predicted admission probabilities.
        labels: OPT's decisions for the same requests.
        cutoffs: grid (default: 0.0 .. 1.0 in steps of 0.02).
    """
    if cutoffs is None:
        cutoffs = np.linspace(0.0, 1.0, 51)
    fps = np.empty(len(cutoffs))
    fns = np.empty(len(cutoffs))
    for i, cutoff in enumerate(cutoffs):
        _, fps[i], fns[i] = error_rates(likelihoods, labels, float(cutoff))
    return CutoffSweep(
        cutoffs=np.asarray(cutoffs, dtype=np.float64),
        false_positive=fps,
        false_negative=fns,
    )


def equal_error_cutoff(likelihoods: np.ndarray, labels: np.ndarray) -> float:
    """Cutoff where FP and FN rates cross (the paper's ~0.65 point)."""
    sweep = cutoff_sweep(likelihoods, labels, np.linspace(0.0, 1.0, 201))
    gap = np.abs(sweep.false_positive - sweep.false_negative)
    return float(sweep.cutoffs[int(np.argmin(gap))])
