"""Hierarchical model-based caching (the paper's Section 5 extension).

The paper sketches how to generalise LFO beyond a single cache: "we could
apply our 'single cache' model to the aggregate cache space of a CDN server
(RAM, SSD, HDD) ... We first learn whether to cache an object at all.  A
second level of the model then learns rules on where to place the object."

This module implements that two-level design for a RAM+SSD server:

* level 1 — the standard LFO admission model over the *aggregate* space;
* level 2 — a placement model that predicts whether the object's next
  reuse comes soon ("hot": serve from RAM) or late ("warm": SSD is fine).

Placement labels come from OPT as well: among requests OPT caches, those
whose next request arrives within ``ram_horizon`` requests are RAM-labelled.
On RAM pressure, objects demote to SSD; on SSD pressure they leave the
server.  Hits are attributed per tier so storage-aware metrics (RAM hit
ratio, SSD read load) can be reported.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..features import Dataset, FeatureTracker, feature_names
from ..gbdt import GBDTParams
from ..trace import Request, Trace
from .lfo import LFOModel
from .online import OptLabelConfig

__all__ = ["TierStats", "TieredLFOCache", "TieredLFOOnline"]

_RAM, _SSD = 0, 1


@dataclass
class TierStats:
    """Per-tier hit accounting."""

    ram_hits: int = 0
    ssd_hits: int = 0
    misses: int = 0
    ram_hit_bytes: int = 0
    ssd_hit_bytes: int = 0
    miss_bytes: int = 0

    @property
    def requests(self) -> int:
        """Total requests observed."""
        return self.ram_hits + self.ssd_hits + self.misses

    @property
    def ohr(self) -> float:
        """Object hit ratio over both tiers."""
        n = self.requests
        return (self.ram_hits + self.ssd_hits) / n if n else 0.0

    @property
    def bhr(self) -> float:
        """Byte hit ratio over both tiers."""
        total = self.ram_hit_bytes + self.ssd_hit_bytes + self.miss_bytes
        return (self.ram_hit_bytes + self.ssd_hit_bytes) / total if total else 0.0

    @property
    def ram_share_of_hits(self) -> float:
        """Fraction of hit bytes served from RAM (the latency-relevant
        quantity a placement model should maximise)."""
        hit_bytes = self.ram_hit_bytes + self.ssd_hit_bytes
        return self.ram_hit_bytes / hit_bytes if hit_bytes else 0.0


class _Tier:
    """One storage tier: byte budget plus a likelihood-ranked victim heap."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.used = 0
        self.entries: dict[int, int] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._stamp: dict[int, int] = {}
        self._counter = 0

    def rank(self, obj: int, score: float) -> None:
        self._counter += 1
        self._stamp[obj] = self._counter
        heapq.heappush(self._heap, (score, self._counter, obj))

    def insert(self, obj: int, size: int, score: float) -> None:
        self.entries[obj] = size
        self.used += size
        self.rank(obj, score)

    def remove(self, obj: int) -> int:
        size = self.entries.pop(obj)
        self.used -= size
        self._stamp.pop(obj, None)
        return size

    def victim(self) -> int | None:
        while self._heap:
            _, stamp, obj = self._heap[0]
            if obj in self.entries and self._stamp.get(obj) == stamp:
                return obj
            heapq.heappop(self._heap)
        return None

    def clear(self) -> None:
        self.used = 0
        self.entries.clear()
        self._heap.clear()
        self._stamp.clear()
        self._counter = 0


class TieredLFOCache:
    """Two-tier (RAM + SSD) cache driven by admission + placement models.

    Args:
        ram_size: RAM tier capacity in bytes.
        ssd_size: SSD tier capacity in bytes.
        admission_model: level-1 LFO model (None = cold start, admit all).
        placement_model: level-2 model scoring "reuses soon" (None = place
            everything in RAM first, demote on pressure).
        n_gaps: gap-feature count of the shared tracker.
        placement_cutoff: likelihood above which an object goes to RAM.
    """

    name = "LFO-tiered"

    def __init__(
        self,
        ram_size: int,
        ssd_size: int,
        admission_model: LFOModel | None = None,
        placement_model: LFOModel | None = None,
        n_gaps: int = 50,
        placement_cutoff: float = 0.5,
    ) -> None:
        if ram_size <= 0 or ssd_size <= 0:
            raise ValueError("tier sizes must be positive")
        self.ram = _Tier(ram_size)
        self.ssd = _Tier(ssd_size)
        self.admission_model = admission_model
        self.placement_model = placement_model
        self.placement_cutoff = placement_cutoff
        self._tracker = FeatureTracker(n_gaps=n_gaps)
        self.stats = TierStats()
        self.last_features: np.ndarray | None = None

    @property
    def cache_size(self) -> int:
        """Aggregate capacity (the level-1 model's view)."""
        return self.ram.size + self.ssd.size

    @property
    def free_bytes(self) -> int:
        """Aggregate free bytes."""
        return self.cache_size - self.ram.used - self.ssd.used

    @property
    def tracker(self) -> FeatureTracker:
        """The shared online feature state."""
        return self._tracker

    def contains(self, obj: int) -> bool:
        """Resident in either tier?"""
        return obj in self.ram.entries or obj in self.ssd.entries

    def tier_of(self, obj: int) -> str | None:
        """'ram', 'ssd', or None."""
        if obj in self.ram.entries:
            return "ram"
        if obj in self.ssd.entries:
            return "ssd"
        return None

    # -- internals ------------------------------------------------------------

    def _scores(self, features: np.ndarray) -> tuple[float, float]:
        admit = (
            float(self.admission_model.likelihood(features)[0])
            if self.admission_model is not None
            else 1.0
        )
        place = (
            float(self.placement_model.likelihood(features)[0])
            if self.placement_model is not None
            else 1.0
        )
        return admit, place

    def _make_room(self, tier: _Tier, need: int, demote: bool) -> bool:
        """Evict (or demote) from a tier until ``need`` bytes fit."""
        while tier.used + need > tier.size:
            victim = tier.victim()
            if victim is None:
                return False
            size = tier.remove(victim)
            if demote:
                # Demotions carry a neutral score: the placement model
                # scored them RAM-worthy once; in SSD they compete by the
                # same score against colder objects.
                if self.ssd.used + size <= self.ssd.size or self._make_room(
                    self.ssd, size, demote=False
                ):
                    self.ssd.insert(victim, size, 0.0)
        return True

    def on_request(self, request: Request) -> bool:
        """Process one request; returns True on a hit (either tier)."""
        features = self._tracker.features(request, self.free_bytes)
        self.last_features = features
        admit_score, place_score = self._scores(features)

        hit = False
        if request.obj in self.ram.entries:
            hit = True
            self.stats.ram_hits += 1
            self.stats.ram_hit_bytes += request.size
            self.ram.rank(request.obj, admit_score)
        elif request.obj in self.ssd.entries:
            hit = True
            self.stats.ssd_hits += 1
            self.stats.ssd_hit_bytes += request.size
            # A hit in SSD re-runs placement: hot objects promote to RAM.
            if place_score >= self.placement_cutoff:
                size = self.ssd.remove(request.obj)
                if self._make_room(self.ram, size, demote=True):
                    self.ram.insert(request.obj, size, admit_score)
                else:
                    self.ssd.insert(request.obj, size, admit_score)
            else:
                self.ssd.rank(request.obj, admit_score)
        else:
            self.stats.misses += 1
            self.stats.miss_bytes += request.size
            self._admit(request, admit_score, place_score)

        self._tracker.update(request)
        return hit

    def _admit(
        self, request: Request, admit_score: float, place_score: float
    ) -> None:
        if self.admission_model is not None and admit_score < (
            self.admission_model.cutoff
        ):
            return
        size = request.size
        if place_score >= self.placement_cutoff and size <= self.ram.size:
            if self._make_room(self.ram, size, demote=True):
                self.ram.insert(request.obj, size, admit_score)
                return
        if size <= self.ssd.size and self._make_room(
            self.ssd, size, demote=False
        ):
            self.ssd.insert(request.obj, size, admit_score)

    def reset(self) -> None:
        """Clear all cache and accounting state (models are kept)."""
        self.ram.clear()
        self.ssd.clear()
        self.stats = TierStats()
        self.last_features = None


@dataclass
class TieredLFOOnline:
    """Online windowed trainer for the two-level model.

    Wraps :class:`TieredLFOCache` with the Figure-2 loop: per window, solve
    OPT over the aggregate space for admission labels, derive placement
    labels ("OPT caches it *and* reuse comes within ``ram_horizon``
    requests"), and train both models.
    """

    ram_size: int
    ssd_size: int
    window: int = 10_000
    ram_horizon: int = 500
    gbdt_params: GBDTParams = field(default_factory=GBDTParams)
    label_config: OptLabelConfig = field(default_factory=OptLabelConfig)
    n_gaps: int = 50
    min_positive_labels: int = 10

    def __post_init__(self) -> None:
        self.cache = TieredLFOCache(
            self.ram_size, self.ssd_size, n_gaps=self.n_gaps
        )
        self.n_retrains = 0
        self._buffer_requests: list[Request] = []
        self._buffer_features: list[np.ndarray] = []

    @property
    def name(self) -> str:
        """Policy name for result tables."""
        return "LFO-tiered-online"

    @property
    def stats(self) -> TierStats:
        """Per-tier hit statistics of the underlying cache."""
        return self.cache.stats

    def on_request(self, request: Request) -> bool:
        """Process one request through the tiered cache, retraining at
        window boundaries."""
        hit = self.cache.on_request(request)
        self._buffer_requests.append(request)
        self._buffer_features.append(self.cache.last_features)
        if len(self._buffer_requests) >= self.window:
            self._retrain()
        return hit

    def _retrain(self) -> None:
        window_trace = Trace(self._buffer_requests)
        self._buffer_requests = []
        features = np.vstack(self._buffer_features)
        self._buffer_features = []

        aggregate = self.ram_size + self.ssd_size
        admit_labels = self.label_config.compute(window_trace, aggregate)
        if admit_labels.sum() < self.min_positive_labels:
            return

        names = feature_names(self.n_gaps)
        admission = LFOModel.train(
            Dataset(features, admit_labels.astype(np.float64), names),
            params=self.gbdt_params,
        )

        nxt = window_trace.next_occurrence()
        idx = np.arange(len(window_trace))
        reuse_soon = (nxt >= 0) & (nxt - idx <= self.ram_horizon)
        place_labels = admit_labels & reuse_soon
        placement = None
        if (
            place_labels.sum() >= self.min_positive_labels
            and place_labels.sum() < len(place_labels)
        ):
            placement = LFOModel.train(
                Dataset(features, place_labels.astype(np.float64), names),
                params=self.gbdt_params,
            )

        self.cache.admission_model = admission
        if placement is not None:
            self.cache.placement_model = placement
        self.n_retrains += 1
