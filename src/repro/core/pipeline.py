"""Offline experiment pipeline: featurise → label → train → evaluate.

These helpers drive the paper's accuracy experiments (Figures 5a–5c and
8): they featurise a trace with live free-bytes observations from a
reference cache, compute OPT labels, train an :class:`LFOModel` on one
window and measure prediction error against OPT on the next — the paper's
train-on-``W[t]``, evaluate-on-``W[t+1]`` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache import LRUCache
from ..features import Dataset, FeatureTracker, feature_names
from ..gbdt import GBDTParams
from ..opt import solve_segmented
from ..sim import record_free_bytes
from ..trace import Trace
from .lfo import LFOModel
from .online import OptLabelConfig

__all__ = ["WindowData", "prepare_windows", "AccuracyReport", "train_and_evaluate"]


@dataclass
class WindowData:
    """Featurised + labelled data for a train/eval window pair."""

    train: Dataset
    test: Dataset


def prepare_windows(
    trace: Trace,
    cache_size: int,
    train_size: int,
    test_size: int,
    label_config: OptLabelConfig | None = None,
    n_gaps: int = 50,
    start: int = 0,
) -> WindowData:
    """Featurise and label consecutive train/eval windows of a trace.

    Free-bytes observations come from simulating an LRU cache over the
    whole span (the reference deployment whose telemetry a cold-started
    LFO would see); the feature tracker runs continuously across both
    windows so the eval window sees warm gap histories, as in the online
    system.
    """
    label_config = label_config or OptLabelConfig()
    end = start + train_size + test_size
    if end > len(trace):
        raise ValueError(
            f"trace too short: need {end} requests, have {len(trace)}"
        )
    span = trace[start:end]
    free = record_free_bytes(span, LRUCache(cache_size))

    tracker = FeatureTracker(n_gaps=n_gaps)
    names = feature_names(n_gaps)
    X = tracker.features_batch(
        list(span), free.astype(np.float64), update=True
    )

    train_trace = span[:train_size]
    test_trace = span[train_size:]
    y_train = label_config.compute(train_trace, cache_size)
    y_test = label_config.compute(test_trace, cache_size)

    return WindowData(
        train=Dataset(X[:train_size], y_train.astype(np.float64), names),
        test=Dataset(X[train_size:], y_test.astype(np.float64), names),
    )


@dataclass
class AccuracyReport:
    """Prediction-quality metrics of a trained model vs OPT.

    Attributes:
        prediction_error: fraction of eval requests where LFO and OPT
            disagree (the paper reports >93% agreement, i.e. <7% error).
        false_positive_rate: P(LFO admits | OPT does not).
        false_negative_rate: P(LFO rejects | OPT admits).
        accuracy: 1 - prediction_error.
        model: the trained model.
        likelihoods: predicted admission likelihoods on the eval window.
        labels: OPT's decisions on the eval window.
    """

    prediction_error: float
    false_positive_rate: float
    false_negative_rate: float
    accuracy: float
    model: LFOModel
    likelihoods: np.ndarray = field(repr=False)
    labels: np.ndarray = field(repr=False)

    def rates_at_cutoff(self, cutoff: float) -> tuple[float, float, float]:
        """(error, FP rate, FN rate) if the cutoff were ``cutoff``."""
        return error_rates(self.likelihoods, self.labels, cutoff)


def error_rates(
    likelihoods: np.ndarray, labels: np.ndarray, cutoff: float
) -> tuple[float, float, float]:
    """(prediction error, FP rate, FN rate) at a cutoff.

    Rates follow the paper's Figure 5a convention: both are normalised by
    the total number of requests, so they sum to the prediction error.
    """
    predictions = likelihoods >= cutoff
    truth = labels > 0.5
    n = len(labels)
    fp = float((predictions & ~truth).sum()) / n
    fn = float((~predictions & truth).sum()) / n
    return fp + fn, fp, fn


def train_and_evaluate(
    windows: WindowData,
    params: GBDTParams | None = None,
    cutoff: float = 0.5,
    train_subset: np.ndarray | None = None,
) -> AccuracyReport:
    """Train on the train window, measure prediction error on the eval one.

    Args:
        windows: output of :func:`prepare_windows`.
        params: learner hyperparameters.
        cutoff: admission threshold used for the error rates.
        train_subset: optional row indices to restrict training (used by
            the training-set-size and seed-robustness experiments).
    """
    train = windows.train if train_subset is None else windows.train.subset(
        train_subset
    )
    model = LFOModel.train(train, params=params, cutoff=cutoff)
    likelihoods = model.likelihood(windows.test.X)
    labels = windows.test.y
    error, fp, fn = error_rates(likelihoods, labels, cutoff)
    return AccuracyReport(
        prediction_error=error,
        false_positive_rate=fp,
        false_negative_rate=fn,
        accuracy=1.0 - error,
        model=model,
        likelihoods=likelihoods,
        labels=labels,
    )
