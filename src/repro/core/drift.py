"""Drift detection and early retraining.

The paper's motivation (§1) is that content mixes can change "within
minutes" — faster than a fixed retraining window may react.  The fixed
Figure-2 loop retrains every W requests regardless; this module adds the
obvious production refinement:

* :class:`DriftDetector` — a population-stability-index (PSI) monitor over
  the online feature distribution: the reference histogram comes from the
  last training window, and a live window is scored against it;
* :class:`AdaptiveLFOOnline` — LFOOnline plus the detector: when the PSI
  of the live stream exceeds a threshold mid-window, retraining happens
  immediately on the partial buffer instead of waiting for the boundary.

PSI is the standard drift score for tabular features:
``sum((p_live - p_ref) * ln(p_live / p_ref))`` over quantile bins.  The
detector reports the *maximum* PSI across monitored features — a mix shift
often moves one dimension (e.g. object sizes) dramatically while leaving
the rest alone, and averaging would dilute exactly that signal.  PSI > 0.25
on any feature is conventionally "major shift".
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..trace import Request
from .online import LFOOnline, OptLabelConfig

__all__ = ["DriftDetector", "AdaptiveLFOOnline"]

_EPS = 1e-6


class DriftDetector:
    """Population-stability-index monitor over feature matrices.

    Args:
        n_bins: quantile bins per feature.
        features: optional column subset to monitor (default: all).
            Monitoring only the *workload-describing* columns (size, cost,
            gaps) and skipping free-bytes avoids self-triggering: the
            cache's own fill level changes whenever the policy changes.
    """

    def __init__(
        self, n_bins: int = 10, features: list[int] | None = None
    ) -> None:
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.features = features
        self._edges: list[np.ndarray] | None = None
        self._reference: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "DriftDetector":
        """Learn reference quantile bins from a training window."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) == 0:
            raise ValueError("X must be a non-empty 2-D matrix")
        cols = self.features or list(range(X.shape[1]))
        self._edges = []
        self._reference = []
        qs = np.linspace(0, 100, self.n_bins + 1)[1:-1]
        for c in cols:
            col = X[:, c]
            edges = np.unique(np.percentile(col, qs))
            counts = np.bincount(
                np.searchsorted(edges, col, side="left"),
                minlength=len(edges) + 1,
            ).astype(np.float64)
            self._edges.append(edges)
            self._reference.append(counts / counts.sum())
        return self

    def score(self, X: np.ndarray) -> float:
        """Maximum per-feature PSI of a live window vs the reference."""
        if self._edges is None:
            raise RuntimeError("detector is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if len(X) == 0:
            return 0.0
        cols = self.features or list(range(X.shape[1]))
        worst = 0.0
        for k, c in enumerate(cols):
            edges = self._edges[k]
            ref = self._reference[k]
            counts = np.bincount(
                np.searchsorted(edges, X[:, c], side="left"),
                minlength=len(edges) + 1,
            ).astype(np.float64)
            live = counts / counts.sum()
            p = np.clip(live, _EPS, None)
            q = np.clip(ref, _EPS, None)
            psi = float(((p - q) * np.log(p / q)).sum())
            worst = max(worst, psi)
        return worst


class AdaptiveLFOOnline(LFOOnline):
    """LFOOnline with PSI-triggered early retraining.

    Args:
        drift_threshold: PSI above which the current (partial) window is
            labelled and trained on immediately.
        check_interval: how often (in requests) the live PSI is evaluated.
        min_retrain_size: do not retrain on fewer buffered requests than
            this (labels/models from slivers are noise).
        (remaining arguments as in :class:`LFOOnline`)
    """

    name = "LFO-adaptive"

    def __init__(
        self,
        cache_size: int,
        window: int = 10_000,
        drift_threshold: float = 0.25,
        check_interval: int = 1_000,
        min_retrain_size: int = 1_000,
        **kwargs: Any,
    ) -> None:
        super().__init__(cache_size, window=window, **kwargs)
        if check_interval <= 0:
            raise ValueError("check_interval must be positive")
        self.drift_threshold = drift_threshold
        self.check_interval = check_interval
        self.min_retrain_size = min_retrain_size
        self.n_drift_retrains = 0
        self._detector: DriftDetector | None = None

    def on_request(self, request: Request) -> bool:
        """Process one request, checking the drift monitor periodically."""
        hit = super().on_request(request)
        buffered = len(self._buffer_requests)
        if (
            self._detector is not None
            and buffered >= self.min_retrain_size
            and buffered % self.check_interval == 0
        ):
            live = np.vstack(self._buffer_features[-self.check_interval:])
            if self._detector.score(live) > self.drift_threshold:
                self.n_drift_retrains += 1
                self._retrain()
        return hit

    def _retrain(self) -> None:
        if self._buffer_features:
            # Reference distribution = the window we are about to train on,
            # skipping the free-bytes column (index 2): it reflects the
            # cache's own behaviour rather than the workload.
            features = np.vstack(self._buffer_features)
            monitored = [
                i for i in range(features.shape[1]) if i != 2
            ]
            self._detector = DriftDetector(features=monitored).fit(features)
        super()._retrain()
