"""The full online LFO loop of the paper's Figure 2.

``LFOOnline`` records each window ``W[t]`` of requests together with the
online features observed live, computes OPT's decisions for the window once
it closes, trains a fresh model, and serves window ``W[t+1]`` with it.  The
first window runs in cold-start (admit-all LRU) mode.

Two production-shaping knobs address the paper's Section 4 warning that "a
production implementation would need to carefully optimize priorities such
that training tasks do not interfere with the request traffic":

* ``OptLabelConfig(n_jobs=...)`` fans the independent segment solves of the
  time-axis OPT approximation out over a process pool (bit-identical
  labels, ~``1/n_jobs`` the wall-clock on a multi-core machine);
* ``LFOOnline(background=True)`` moves the whole label-solve + GBDT fit off
  the request path: the closed window is snapshotted and handed to a worker,
  requests keep being served by the current model, and the fresh model is
  swapped in atomically once training completes.  A still-busy trainer or a
  training failure never blocks or breaks ``on_request`` — the window is
  dropped (counted in ``n_skipped_retrains``) or the failure recorded
  (``n_failed_retrains``) and serving continues on the current model.

Graceful degradation (the "robust" half of the paper's title; drilled by
:mod:`repro.resilience` and the ``bench_ext_fault_matrix`` benchmark):

* **watchdog** — ``train_deadline`` bounds how many *requests* a background
  training job may stay in flight; past it the job is cancelled (or, if
  already running, abandoned) and counted as a failure.  The deadline is
  logical time, not wall clock, so drills replay deterministically;
* **backoff** — ``retry_backoff`` skips a doubling number of windows after
  consecutive training failures instead of re-failing every boundary;
* **bounded retries** — ``max_train_failures`` halts retraining entirely
  after that many consecutive failures (a crash-looping trainer should
  stop burning CPU); serving continues on the fallback;
* **staleness guard** — after ``staleness_limit`` windows without a fresh
  model, admission degrades to the configured heuristic ``fallback``
  (``"lru"``: admit everything, evict LRU; ``"bypass"``: admit nothing)
  and recovers on the next successful install.

Every transition is loud: ``resilience.*`` counters/gauges plus span-tree
events on the active :mod:`repro.obs` registry, and the
``logging.getLogger("repro.online")`` channel.
"""

from __future__ import annotations

import logging
import warnings
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Executor,
    Future,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..features import Dataset, feature_names
from ..gbdt import GBDTParams
from ..obs import get_registry
from ..obs.health import population_stability_index
from ..resilience.faults import get_fault_plan
from ..opt import (
    solve_greedy,
    solve_opt,
    solve_pruned,
    solve_segmented,
    solve_segmented_parallel,
)
from ..trace import Request, Trace
from .lfo import LFOCache, LFOModel, SampledEvictionConfig

__all__ = ["LFOOnline", "OptLabelConfig"]

#: Production log channel for the retraining loop: dropped windows, failed
#: or unsubmittable training jobs (with tracebacks via ``exc_info``).
logger = logging.getLogger("repro.online")

#: Exponential backoff never skips more than this many windows in a row —
#: past it the trainer keeps probing at a fixed, bounded cadence.
_MAX_BACKOFF_WINDOWS = 8


@dataclass(frozen=True)
class OptLabelConfig:
    """How OPT labels are computed at each window boundary.

    ``mode`` is one of:

    * ``"exact"`` — full min-cost-flow solve of the window (slow beyond a
      few thousand requests);
    * ``"segmented"`` — time-axis split into ``segment_length`` chunks with
      ``lookahead`` extra requests per solve (the approximation of [8],
      plus overlap to avoid boundary mislabels);
    * ``"pruned"`` — the paper's ranking-axis split, keeping the
      ``keep_fraction`` top-ranked requests (optionally also segmented);
    * ``"greedy"`` — rank-ordered greedy interval packing (fastest; a
      feasible approximation rather than the flow optimum).

    ``n_jobs`` parallelises the ``"segmented"`` mode's independent segment
    solves over a process pool (see
    :func:`repro.opt.parallel.solve_segmented_parallel`); labels are
    bit-identical to the serial path.  ``1`` keeps the serial solve, ``None``
    uses every core.
    """

    mode: str = "segmented"
    segment_length: int = 1000
    keep_fraction: float = 0.3
    lookahead: int | None = None
    n_jobs: int | None = 1

    def compute(self, window: Trace, cache_size: int) -> np.ndarray:
        """Return per-request OPT admission labels for a window."""
        if self.mode == "exact":
            return solve_opt(window, cache_size).decisions
        if self.mode == "segmented":
            if self.n_jobs != 1:
                return solve_segmented_parallel(
                    window, cache_size, self.segment_length,
                    lookahead=self.lookahead, n_jobs=self.n_jobs,
                ).decisions
            return solve_segmented(
                window, cache_size, self.segment_length,
                lookahead=self.lookahead,
            ).decisions
        if self.mode == "pruned":
            return solve_pruned(
                window,
                cache_size,
                keep_fraction=self.keep_fraction,
                segment_length=self.segment_length,
            ).decisions
        if self.mode == "greedy":
            return solve_greedy(window, cache_size).decisions
        raise ValueError(f"unknown OPT label mode: {self.mode!r}")


def _train_window(
    requests: list[Request],
    features: np.ndarray,
    label_config: OptLabelConfig,
    cache_size: int,
    gbdt_params: GBDTParams,
    cutoff: float,
    min_positive_labels: int,
    n_gaps: int,
    window_name: str,
) -> tuple[LFOModel | None, float]:
    """Label one closed window with OPT and fit a fresh model.

    A pure function of its snapshotted inputs, so it runs identically
    inline, in a worker thread, or in a worker process.  Returns
    ``(model, training_seconds)``; the model is ``None`` for degenerate
    windows with fewer than ``min_positive_labels`` positive decisions
    (e.g. a pure scan), where training would produce a broken
    all-negative predictor.

    Timing comes from :mod:`repro.obs` spans — ``online.label_solve`` and
    ``online.gbdt_fit`` nested under ``online.train_window`` — which also
    aggregate into the active registry (a no-op in process-pool workers,
    whose registry defaults to ``NullRegistry``).

    Fault drills: an installed :class:`repro.resilience.FaultPlan` with an
    ``online.train_window`` spec crashes or delays the job here, before
    any real work — exercising the caller's failure handling, watchdog,
    backoff, and staleness machinery.  (Like the registry, the plan is
    process-wide state and therefore invisible to process-pool workers;
    use thread/inline executors for trainer drills.)
    """
    plan = get_fault_plan()
    if plan is not None:
        plan.inject("online.train_window")
    registry = get_registry()
    model: LFOModel | None = None
    with registry.span("online.train_window") as train_span:
        window_trace = Trace(requests, name=window_name)
        with registry.span("online.label_solve"):
            labels = label_config.compute(window_trace, cache_size)
        if labels.sum() >= min_positive_labels:
            dataset = Dataset(
                X=features,
                y=labels.astype(np.float64),
                names=feature_names(n_gaps),
            )
            with registry.span("online.gbdt_fit"):
                model = LFOModel.train(
                    dataset, params=gbdt_params, cutoff=cutoff
                )
    return model, train_span.elapsed


class LFOOnline(LFOCache):
    """LFO with periodic retraining on sliding windows.

    Args:
        cache_size: capacity in bytes.
        window: requests per training window ``W[t]``.
        gbdt_params: learner hyperparameters (paper defaults when None).
        cutoff: admission likelihood threshold.
        label_config: how OPT labels are derived per window.
        n_gaps: gap-feature count.
        min_positive_labels: skip retraining when a window contains fewer
            positive OPT decisions than this (degenerate windows).
        background: when True, window boundaries only snapshot the closed
            window and submit it to a trainer; the label solve and GBDT fit
            run off the request path and the new model is installed
            atomically on completion.  A window that closes while the
            trainer is still busy is dropped (``n_skipped_retrains``); a
            failed training job keeps the current model
            (``n_failed_retrains``).
        executor: the trainer used in background mode.  ``None`` lazily
            creates a private single-worker :class:`ThreadPoolExecutor`;
            pass a :class:`~concurrent.futures.ProcessPoolExecutor` to keep
            training off the GIL entirely (all submitted arguments and the
            returned model pickle cleanly), or a
            :class:`repro.resilience.SimulatedTrainerExecutor` for
            deterministic fault drills.
        train_deadline: watchdog, in *requests*: a background job still in
            flight after this many requests is cancelled (abandoned if
            already running) and counted as a failure.  None disables it.
        staleness_limit: after this many closed windows without a fresh
            model install, admission degrades to ``fallback`` until the
            next successful install.  None disables the guard.
        fallback: degraded-mode admission heuristic — ``"lru"`` admits
            everything and evicts LRU (cold-start behaviour), ``"bypass"``
            admits nothing (serves the resident set read-only).
        retry_backoff: after a training failure, skip this many windows
            before trying again, doubling per consecutive failure (capped
            at 8 windows).  0 retries at the very next boundary.
        max_train_failures: halt retraining for good after this many
            consecutive failures (None = never halt); serving continues,
            degraded by the staleness guard if enabled.
        publish_hook: called with each freshly *installed* model, right
            after the atomic swap — the cluster publish path
            (:meth:`repro.cluster.CacheCluster.publish` writes the
            compiled model into the shared slab here).  A raising hook is
            absorbed loudly (``online.publish_failures``): shards keep
            serving the previous generation, this process the new one.

    Counters (also bundled by :attr:`training_stats` and surfaced in
    :class:`repro.sim.SimResult`):

    * ``n_retrains`` — models actually trained and installed;
    * ``n_skipped_retrains`` — windows dropped because the trainer was busy;
    * ``n_failed_retrains`` — training jobs that raised (model kept);
    * ``last_training_seconds`` — duration of the latest label+fit job;
    * ``training_pending`` — True while a background job is in flight.

    Degradation counters (bundled by :attr:`resilience_stats`, surfaced as
    ``SimResult.resilience``, and mirrored as ``resilience.*`` metrics):

    * ``n_watchdog_cancels`` — jobs cancelled/abandoned past the deadline;
    * ``n_backoff_skips`` — windows skipped while backing off;
    * ``n_staleness_fallbacks`` / ``n_staleness_recoveries`` — fallback
      engagements and the recoveries that ended them;
    * ``degraded`` / ``training_halted`` — the current mode flags.
    """

    name = "LFO-online"

    def __init__(
        self,
        cache_size: int,
        window: int = 10_000,
        gbdt_params: GBDTParams | None = None,
        cutoff: float = 0.5,
        label_config: OptLabelConfig | None = None,
        n_gaps: int = 50,
        min_positive_labels: int = 10,
        eviction: str = "likelihood",
        rescore_interval: int = 0,
        sampled: SampledEvictionConfig | None = None,
        background: bool = False,
        executor: Executor | None = None,
        train_deadline: int | None = None,
        staleness_limit: int | None = None,
        fallback: str = "lru",
        retry_backoff: int = 0,
        max_train_failures: int | None = None,
        publish_hook: Callable[[LFOModel], None] | None = None,
    ) -> None:
        super().__init__(
            cache_size, model=None, n_gaps=n_gaps,
            eviction=eviction, rescore_interval=rescore_interval,
            sampled=sampled,
        )
        if window <= 0:
            raise ValueError("window must be positive")
        if train_deadline is not None and train_deadline <= 0:
            raise ValueError("train_deadline must be positive (in requests)")
        if staleness_limit is not None and staleness_limit <= 0:
            raise ValueError("staleness_limit must be positive (in windows)")
        if fallback not in ("lru", "bypass"):
            raise ValueError(
                f"unknown fallback {fallback!r}; expected 'lru' or 'bypass'"
            )
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if max_train_failures is not None and max_train_failures <= 0:
            raise ValueError("max_train_failures must be positive")
        self.window = window
        self.gbdt_params = gbdt_params or GBDTParams()
        self.cutoff = cutoff
        self.label_config = label_config or OptLabelConfig()
        self.min_positive_labels = min_positive_labels
        self.background = background
        self.train_deadline = train_deadline
        self.staleness_limit = staleness_limit
        self.fallback = fallback
        self.retry_backoff = retry_backoff
        self.max_train_failures = max_train_failures
        self.publish_hook = publish_hook
        self.n_retrains = 0
        self.n_skipped_retrains = 0
        self.n_failed_retrains = 0
        self.n_watchdog_cancels = 0
        self.n_backoff_skips = 0
        self.n_staleness_fallbacks = 0
        self.n_staleness_recoveries = 0
        self.last_training_seconds = 0.0
        self._buffer_requests: list[Request] = []
        self._buffer_features: list[np.ndarray] = []
        self._executor = executor
        self._owns_executor = False
        self._pending: Future | None = None
        self._pending_submitted_at = 0
        self._requests_observed = 0  # logical clock for the watchdog
        self._windows_closed = 0
        self._windows_since_model = 0
        self._consecutive_failures = 0
        self._backoff_remaining = 0
        self._degraded = False
        self._halted = False
        # Admission-score PSI state: cumulative histogram counts at the
        # previous window close, and that window's per-bucket delta.
        self._score_cum_prev: list[int] | None = None
        self._score_delta_prev: list[int] | None = None

    # -- training status -----------------------------------------------------

    @property
    def supports_batched_scoring(self) -> bool:
        """Never batchable: the model swaps at window boundaries and every
        request must buffer its live features for training."""
        return False

    @property
    def training_pending(self) -> bool:
        """True while a background training job is in flight."""
        return self._pending is not None and not self._pending.done()

    @property
    def training_stats(self) -> dict[str, float | int | bool]:
        """The retraining counters as one dict (surfaced by ``simulate``)."""
        return {
            "n_retrains": self.n_retrains,
            "n_skipped_retrains": self.n_skipped_retrains,
            "n_failed_retrains": self.n_failed_retrains,
            "last_training_seconds": self.last_training_seconds,
            "training_pending": self.training_pending,
        }

    @property
    def degraded(self) -> bool:
        """True while admission runs on the heuristic ``fallback``."""
        return self._degraded

    @property
    def training_halted(self) -> bool:
        """True once ``max_train_failures`` consecutive failures hit."""
        return self._halted

    @property
    def resilience_stats(self) -> dict[str, float | int | bool]:
        """Degradation counters/flags as one dict (``SimResult.resilience``)."""
        return {
            "n_watchdog_cancels": self.n_watchdog_cancels,
            "n_backoff_skips": self.n_backoff_skips,
            "n_staleness_fallbacks": self.n_staleness_fallbacks,
            "n_staleness_recoveries": self.n_staleness_recoveries,
            "consecutive_failures": self._consecutive_failures,
            "windows_since_model": self._windows_since_model,
            "degraded": self._degraded,
            "training_halted": self._halted,
        }

    def finish_training(self, timeout: float | None = None) -> bool:
        """Wait for an in-flight training job and install its model.

        Useful at end-of-trace (the final window's model would otherwise
        only land on the next request) and in tests.  Returns True when a
        pending job was drained (completed, failed, or cancelled — the
        installer sorts them out) within ``timeout`` seconds; False when
        nothing was pending or the job is still running at the deadline
        (it stays pending and can be drained later).
        """
        if self._pending is None:
            return False
        try:
            self._pending.exception(timeout)  # waits; doesn't raise job errors
        except TimeoutError:
            logger.debug(
                "finish_training timed out after %s s; job still pending",
                timeout,
            )
            return False
        except CancelledError:
            logger.debug(
                "finish_training found a cancelled job; handing to installer"
            )
        self._install_trained_model()
        return True

    def close(self) -> None:
        """Drain pending training and release a privately owned executor."""
        self.finish_training()
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
            self._owns_executor = False

    # -- request path --------------------------------------------------------

    def on_request(self, request: Request) -> bool:
        """Process one request, retraining at window boundaries.

        In background mode this never solves labels or fits a model
        inline: a completed trainer result is installed (an O(1) model
        pointer swap), the request is served, and a window boundary only
        snapshots buffers and enqueues the training job.  An in-flight job
        past its ``train_deadline`` (counted in requests) is cancelled by
        the watchdog here — two integer compares on the hot path.
        """
        self.poll_training()
        hit = super().on_request(request)
        # ``last_features`` was computed inside LFOCache.on_request with the
        # live free-bytes observation — exactly what training must see.
        self.record_for_training(request, self.last_features)
        return hit

    # -- serving hooks -------------------------------------------------------
    # The serving loop (repro.serve) scores speculative batches and replays
    # them through ``apply_scored`` directly, so it drives these two hooks
    # itself — poll before scoring each request (a model install must land
    # *before* the request it precedes, exactly as in ``on_request``), and
    # record after applying.  ``on_request`` is the scalar composition of
    # the same three steps, so both paths stay bit-identical.

    def poll_training(self) -> None:
        """Advance the watchdog clock one request and poll the trainer.

        Installs a completed background model (atomic pointer swap) or
        cancels a job past its ``train_deadline``.  Must run exactly once
        per request, *before* the request is scored: ``on_request`` calls
        it first; the batched serving path calls it before reusing or
        recomputing a speculated score.
        """
        self._requests_observed += 1
        if self._pending is not None:
            if self._pending.done():
                self._install_trained_model()
            elif self._watchdog_expired():
                self._watchdog_cancel()

    def record_for_training(
        self, request: Request, features: np.ndarray
    ) -> None:
        """Buffer one served request's live features; retrain at the edge.

        ``features`` must be the row the request was actually scored with
        (``last_features`` after :meth:`~repro.core.LFOCache.apply_scored`)
        — training must see exactly what serving saw.
        """
        self._buffer_requests.append(request)
        self._buffer_features.append(features)
        if len(self._buffer_requests) >= self.window:
            self._retrain()

    @property
    def window_remaining(self) -> int:
        """Requests left before the current training window closes.

        The serving loop caps each speculation batch here so no batch
        straddles a window boundary: the retrain (and any model swap it
        triggers) lands between batches, never under speculated scores.
        """
        return self.window - len(self._buffer_requests)

    # -- window hand-over ----------------------------------------------------

    def _retrain(self) -> None:
        registry = get_registry()
        with registry.span("online.window_close"):
            self._close_window(registry)
            self._check_staleness(registry)
            self._publish_model_health(registry)

    def _publish_model_health(self, registry) -> None:
        """Publish the per-window-close model-health snapshot.

        Gauges the health layer (``repro.obs.health``) and the staleness
        SLO read: training posture (``windows_since_model``,
        ``consecutive_failures``, ``last_train_seconds``), the feature
        arena summary, and the admission-score PSI between the score
        distributions of the last two training windows (a fixed model
        whose score distribution jumps is seeing shifted inputs).  Runs
        once per training window, off the request path.
        """
        if not registry.enabled:
            return
        registry.gauge("online.windows_since_model").set(
            float(self._windows_since_model)
        )
        registry.gauge("online.consecutive_failures").set(
            float(self._consecutive_failures)
        )
        registry.gauge("online.last_train_seconds").set(
            self.last_training_seconds
        )
        summary = self._tracker.arena_summary(self._now)
        registry.gauge("online.feature_tracked").set(
            float(summary["tracked"])
        )
        registry.gauge("online.feature_recency_mean").set(
            summary["recency_mean"]
        )
        registry.gauge("online.feature_cost_mean").set(summary["cost_mean"])
        hist = self._score_hist
        if hist is None:
            return
        current = list(hist.bucket_counts)
        previous_cum = self._score_cum_prev
        if previous_cum is None or len(previous_cum) != len(current):
            delta = current
        else:
            delta = [c - p for c, p in zip(current, previous_cum)]
        self._score_cum_prev = current
        previous_delta = self._score_delta_prev
        self._score_delta_prev = delta
        if (
            previous_delta is not None
            and sum(previous_delta) > 0
            and sum(delta) > 0
        ):
            registry.gauge("online.score_psi").set(
                population_stability_index(previous_delta, delta)
            )

    def _close_window(self, registry) -> None:
        """Snapshot the closed window and train on it (inline or submitted)."""
        requests = self._buffer_requests
        self._buffer_requests = []
        features = np.vstack(self._buffer_features)
        self._buffer_features = []
        name = f"W[{self._windows_closed}]"
        self._windows_closed += 1
        self._windows_since_model += 1
        args = (
            requests, features, self.label_config, self.cache_size,
            self.gbdt_params, self.cutoff, self.min_positive_labels,
            self._tracker.n_gaps, name,
        )

        if self._halted:
            registry.counter("resilience.halted_window_drops").inc()
            logger.info(
                "training halted after %d consecutive failures; "
                "dropping window %s",
                self._consecutive_failures, name,
            )
            return

        if self._backoff_remaining > 0:
            self._backoff_remaining -= 1
            self.n_backoff_skips += 1
            registry.counter("resilience.backoff_skips").inc()
            registry.event("resilience.backoff_skip")
            logger.info(
                "retrain backoff: dropping window %s "
                "(%d more window(s) to skip)",
                name, self._backoff_remaining,
            )
            return

        if not self.background:
            try:
                model, elapsed = _train_window(*args)
            except Exception as exc:
                # Inline training failures are absorbed exactly like
                # background ones: the window is lost, the current model
                # keeps serving, and the failure is loud.
                self.n_failed_retrains += 1
                registry.counter("online.failed_retrains").inc()
                registry.counter("online_trainer_errors").inc()
                logger.warning(
                    "inline retrain for window %s failed (%s); "
                    "keeping current model",
                    name, type(exc).__name__, exc_info=exc,
                )
                warnings.warn(
                    f"retrain failed ({exc!r}); keeping current model",
                    RuntimeWarning,
                    stacklevel=4,
                )
                self._note_training_failure(registry)
                return
            self.last_training_seconds = elapsed
            if model is not None:
                with registry.span("online.model_install"):
                    self.set_model(model)
                self.n_retrains += 1
                registry.counter("online.model_installs").inc()
                self._note_training_success(registry)
                self._publish(model, registry)
            return

        if self._pending is not None:
            if not self._pending.done():
                # Trainer still busy: drop this window, keep serving on
                # the current model rather than queueing unbounded work.
                self.n_skipped_retrains += 1
                registry.counter("online.skipped_retrains").inc()
                logger.info(
                    "trainer busy; dropping window %s (%d requests, "
                    "%d windows dropped so far)",
                    name, len(requests), self.n_skipped_retrains,
                )
                return
            self._install_trained_model()
        try:
            self._pending = self._trainer().submit(_train_window, *args)
            self._pending_submitted_at = self._requests_observed
        except (RuntimeError, BrokenExecutor) as exc:
            # The two submit-time failures (shut-down executor, broken
            # pool); neither must ever break serving.
            self.n_failed_retrains += 1
            registry.counter("online.failed_retrains").inc()
            registry.counter("online_trainer_errors").inc()
            logger.warning(
                "could not submit background retrain for window %s "
                "(%s); keeping current model",
                name, type(exc).__name__, exc_info=exc,
            )
            warnings.warn(
                f"could not submit background retrain ({exc!r}); "
                "keeping current model",
                RuntimeWarning,
                stacklevel=4,
            )
            self._note_training_failure(registry)

    # -- graceful degradation ------------------------------------------------

    def _watchdog_expired(self) -> bool:
        return (
            self.train_deadline is not None
            and self._requests_observed - self._pending_submitted_at
            >= self.train_deadline
        )

    def _watchdog_cancel(self) -> None:
        """Abandon a training job that outlived its request-count deadline."""
        future = self._pending
        self._pending = None
        cancelled = future.cancel() if future is not None else False
        self.n_watchdog_cancels += 1
        registry = get_registry()
        registry.counter("resilience.watchdog_cancels").inc()
        registry.event("resilience.watchdog_cancel")
        logger.warning(
            "background retrain exceeded its deadline (%s requests); %s; "
            "keeping current model",
            self.train_deadline,
            "job cancelled" if cancelled else "job abandoned (already running)",
        )
        self._note_training_failure(registry)

    def _note_training_failure(self, registry) -> None:
        """Advance the consecutive-failure state machine: halt or back off."""
        self._consecutive_failures += 1
        if (
            self.max_train_failures is not None
            and self._consecutive_failures >= self.max_train_failures
        ):
            if not self._halted:
                self._halted = True
                registry.counter("resilience.training_halts").inc()
                registry.gauge("resilience.training_halted").set(1.0)
                registry.event("resilience.training_halt")
                logger.error(
                    "halting retraining after %d consecutive failures; "
                    "serving continues without fresh models",
                    self._consecutive_failures,
                )
            return
        if self.retry_backoff > 0:
            backoff = min(
                self.retry_backoff * 2 ** (self._consecutive_failures - 1),
                _MAX_BACKOFF_WINDOWS,
            )
            self._backoff_remaining = backoff
            registry.gauge("resilience.backoff_windows").set(float(backoff))
            logger.info(
                "retrain backoff set to %d window(s) after %d consecutive "
                "failure(s)",
                backoff, self._consecutive_failures,
            )

    def _note_training_success(self, registry) -> None:
        """A fresh model landed: clear failure state, leave degraded mode."""
        self._consecutive_failures = 0
        self._backoff_remaining = 0
        self._windows_since_model = 0
        registry.gauge("resilience.backoff_windows").set(0.0)
        if self._degraded:
            self._degraded = False
            self.n_staleness_recoveries += 1
            registry.counter("resilience.staleness_recoveries").inc()
            registry.gauge("resilience.staleness_fallback_active").set(0.0)
            registry.event("resilience.staleness_recovery")
            logger.info(
                "fresh model installed; leaving %s fallback mode",
                self.fallback,
            )

    def _check_staleness(self, registry) -> None:
        """Degrade admission once the model has missed too many windows.

        Only a *trained* model can go stale: cold start (no model yet) is
        already the admit-all LRU mode the "lru" fallback would pick.
        """
        if (
            self.staleness_limit is None
            or self._degraded
            or self.model is None
            or self._windows_since_model < self.staleness_limit
        ):
            return
        self._degraded = True
        self.n_staleness_fallbacks += 1
        registry.counter("resilience.staleness_fallbacks").inc()
        registry.gauge("resilience.staleness_fallback_active").set(1.0)
        registry.event("resilience.staleness_fallback")
        logger.warning(
            "model stale for %d window(s) without a successful retrain; "
            "degrading admission to %s fallback",
            self._windows_since_model, self.fallback,
        )

    # -- degraded-mode serving -----------------------------------------------

    def _should_admit(self, score: float) -> bool:
        if self._degraded:
            # The stale model's scores are no longer trusted: "lru" admits
            # everything (cold-start behaviour), "bypass" admits nothing.
            return self.fallback == "lru"
        return super()._should_admit(score)

    def _select_victim(self, incoming: Request) -> int | None:
        if self._degraded and self.fallback == "lru":
            return next(iter(self._lru), None)
        return super()._select_victim(incoming)

    def _select_victims(self, incoming: Request) -> list[int]:
        # The staleness fallback outranks sampled eviction: a stale
        # model's candidate scores are exactly what degraded mode stops
        # trusting, so victims come from the LRU order until recovery.
        if self._degraded and self.fallback == "lru":
            victim = next(iter(self._lru), None)
            return [] if victim is None else [victim]
        return super()._select_victims(incoming)

    def _install_trained_model(self) -> None:
        """Consume a finished training future; atomic model swap on success."""
        future = self._pending
        self._pending = None
        if future is None:
            return
        try:
            model, elapsed = future.result()
        except CancelledError:
            self.n_failed_retrains += 1
            registry = get_registry()
            registry.counter("online.failed_retrains").inc()
            registry.counter("online_trainer_errors").inc()
            logger.warning(
                "background retrain cancelled; keeping current model"
            )
            self._note_training_failure(registry)
            return
        except Exception as exc:
            # Training jobs can raise anything (labeling, fitting, pickling
            # in process pools); the install path stays broad by design but
            # is loud: exception class logged, error counter bumped.
            self.n_failed_retrains += 1
            registry = get_registry()
            registry.counter("online.failed_retrains").inc()
            registry.counter("online_trainer_errors").inc()
            logger.warning(
                "background retrain failed (%s); keeping current model",
                type(exc).__name__, exc_info=exc,
            )
            warnings.warn(
                f"background retrain failed ({exc!r}); keeping current model",
                RuntimeWarning,
                stacklevel=2,
            )
            self._note_training_failure(registry)
            return
        self.last_training_seconds = elapsed
        if model is not None:
            registry = get_registry()
            with registry.span("online.model_install"):
                self.set_model(model)
            self.n_retrains += 1
            registry.counter("online.model_installs").inc()
            self._note_training_success(registry)
            self._publish(model, registry)

    def _publish(self, model: LFOModel, registry) -> None:
        """Hand a freshly installed model to the external publish path."""
        if self.publish_hook is None:
            return
        try:
            self.publish_hook(model)
            registry.counter("online.model_publishes").inc()
        except Exception as exc:
            # Publishing is off the install path by contract: a failed
            # slab write must never undo the local swap that already
            # happened.  Loud — counted and logged with the traceback.
            registry.counter("online.publish_failures").inc()
            logger.warning(
                "model publish hook failed (%s); downstream consumers "
                "keep the previous generation",
                type(exc).__name__, exc_info=exc,
            )

    def _trainer(self) -> Executor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="lfo-trainer"
            )
            self._owns_executor = True
        return self._executor

    def _reset_policy_state(self) -> None:
        super()._reset_policy_state()
        self.finish_training()
        self._buffer_requests = []
        self._buffer_features = []
        self.n_retrains = 0
        self.n_skipped_retrains = 0
        self.n_failed_retrains = 0
        self.n_watchdog_cancels = 0
        self.n_backoff_skips = 0
        self.n_staleness_fallbacks = 0
        self.n_staleness_recoveries = 0
        self.last_training_seconds = 0.0
        self._pending = None
        self._pending_submitted_at = 0
        self._requests_observed = 0
        self._score_cum_prev = None
        self._score_delta_prev = None
        self._windows_closed = 0
        self._windows_since_model = 0
        self._consecutive_failures = 0
        self._backoff_remaining = 0
        self._degraded = False
        self._halted = False
