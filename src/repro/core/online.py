"""The full online LFO loop of the paper's Figure 2.

``LFOOnline`` records each window ``W[t]`` of requests together with the
online features observed live, computes OPT's decisions for the window once
it closes, trains a fresh model, and serves window ``W[t+1]`` with it.  The
first window runs in cold-start (admit-all LRU) mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..features import Dataset, feature_names
from ..gbdt import GBDTParams
from ..opt import solve_greedy, solve_opt, solve_pruned, solve_segmented
from ..trace import Request, Trace
from .lfo import LFOCache, LFOModel

__all__ = ["LFOOnline", "OptLabelConfig"]


@dataclass(frozen=True)
class OptLabelConfig:
    """How OPT labels are computed at each window boundary.

    ``mode`` is one of:

    * ``"exact"`` — full min-cost-flow solve of the window (slow beyond a
      few thousand requests);
    * ``"segmented"`` — time-axis split into ``segment_length`` chunks with
      ``lookahead`` extra requests per solve (the approximation of [8],
      plus overlap to avoid boundary mislabels);
    * ``"pruned"`` — the paper's ranking-axis split, keeping the
      ``keep_fraction`` top-ranked requests (optionally also segmented);
    * ``"greedy"`` — rank-ordered greedy interval packing (fastest; a
      feasible approximation rather than the flow optimum).
    """

    mode: str = "segmented"
    segment_length: int = 1000
    keep_fraction: float = 0.3
    lookahead: int | None = None

    def compute(self, window: Trace, cache_size: int) -> np.ndarray:
        """Return per-request OPT admission labels for a window."""
        if self.mode == "exact":
            return solve_opt(window, cache_size).decisions
        if self.mode == "segmented":
            return solve_segmented(
                window, cache_size, self.segment_length,
                lookahead=self.lookahead,
            ).decisions
        if self.mode == "pruned":
            return solve_pruned(
                window,
                cache_size,
                keep_fraction=self.keep_fraction,
                segment_length=self.segment_length,
            ).decisions
        if self.mode == "greedy":
            return solve_greedy(window, cache_size).decisions
        raise ValueError(f"unknown OPT label mode: {self.mode!r}")


class LFOOnline(LFOCache):
    """LFO with periodic retraining on sliding windows.

    Args:
        cache_size: capacity in bytes.
        window: requests per training window ``W[t]``.
        gbdt_params: learner hyperparameters (paper defaults when None).
        cutoff: admission likelihood threshold.
        label_config: how OPT labels are derived per window.
        n_gaps: gap-feature count.
        min_positive_labels: skip retraining when a window contains fewer
            positive OPT decisions than this (degenerate windows).
    """

    name = "LFO-online"

    def __init__(
        self,
        cache_size: int,
        window: int = 10_000,
        gbdt_params: GBDTParams | None = None,
        cutoff: float = 0.5,
        label_config: OptLabelConfig | None = None,
        n_gaps: int = 50,
        min_positive_labels: int = 10,
        eviction: str = "likelihood",
        rescore_interval: int = 0,
    ) -> None:
        super().__init__(
            cache_size, model=None, n_gaps=n_gaps,
            eviction=eviction, rescore_interval=rescore_interval,
        )
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.gbdt_params = gbdt_params or GBDTParams()
        self.cutoff = cutoff
        self.label_config = label_config or OptLabelConfig()
        self.min_positive_labels = min_positive_labels
        self.n_retrains = 0
        self._buffer_requests: list[Request] = []
        self._buffer_features: list[np.ndarray] = []

    def on_request(self, request: Request) -> bool:
        """Process one request, retraining at window boundaries."""
        hit = super().on_request(request)
        # ``last_features`` was computed inside LFOCache.on_request with the
        # live free-bytes observation — exactly what training must see.
        self._buffer_requests.append(request)
        self._buffer_features.append(self.last_features)
        if len(self._buffer_requests) >= self.window:
            self._retrain()
        return hit

    def _retrain(self) -> None:
        window_trace = Trace(self._buffer_requests, name=f"W[{self.n_retrains}]")
        self._buffer_requests = []
        features = np.vstack(self._buffer_features)
        self._buffer_features = []

        labels = self.label_config.compute(window_trace, self.cache_size)
        if labels.sum() < self.min_positive_labels:
            return  # degenerate window (e.g. pure scan): keep current model
        dataset = Dataset(
            X=features,
            y=labels.astype(np.float64),
            names=feature_names(self._tracker.n_gaps),
        )
        model = LFOModel.train(
            dataset, params=self.gbdt_params, cutoff=self.cutoff
        )
        self.set_model(model)
        self.n_retrains += 1
