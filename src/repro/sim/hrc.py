"""Hit-ratio curves and cache provisioning (paper §5, citing [72]).

The discussion section points at "recent work on modeling CDN cache
provisioning [Footprint Descriptors, CoNEXT'17]" as the way to scale the
learning approach "across many servers and CDN points-of-presence".  The
building block of that line of work is the *hit-ratio curve* (HRC): byte
hit ratio as a function of cache size, computed from a trace without
simulating every size.

This module provides:

* :func:`reuse_distance_bytes` — exact byte-weighted LRU stack (reuse)
  distances via a Fenwick tree (Mattson's algorithm, O(n log n));
* :func:`lru_hit_ratio_curve` — the exact LRU HRC from those distances
  (one pass, every cache size at once);
* :func:`che_hit_ratio_curve` — the Che/TTL approximation of the LRU HRC
  from per-object request rates (the analytic form provisioning models
  use);
* :func:`partition_cache` — provision a byte budget across tenants by
  maximising the sum of their HRCs (greedy marginal-gain water-filling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace import Trace

__all__ = [
    "HitRatioCurve",
    "reuse_distance_bytes",
    "lru_hit_ratio_curve",
    "che_hit_ratio_curve",
    "partition_cache",
]


class _Fenwick:
    """Fenwick tree over request slots, holding resident byte counts."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i]."""
        i += 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots [lo, hi]."""
        if lo > hi:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


@dataclass(frozen=True)
class HitRatioCurve:
    """A byte hit-ratio curve: ``bhr(size)`` sampled at ``sizes``."""

    sizes: np.ndarray
    bhr: np.ndarray

    def at(self, size: float) -> float:
        """Interpolated BHR at an arbitrary cache size."""
        return float(np.interp(size, self.sizes, self.bhr))


def reuse_distance_bytes(trace: Trace) -> np.ndarray:
    """Byte-weighted LRU stack distance per request (-1 = first access).

    The stack distance of a request is the number of *bytes* of distinct
    objects touched since the previous access to the same object — exactly
    the LRU cache size needed for this request to hit.
    """
    n = len(trace)
    distances = np.full(n, -1, dtype=np.int64)
    fenwick = _Fenwick(n)
    last_pos: dict[int, int] = {}
    objs = trace.objs
    sizes = trace.sizes
    for i in range(n):
        obj = int(objs[i])
        size = int(sizes[i])
        prev = last_pos.get(obj)
        if prev is not None:
            # Bytes of distinct objects touched in (prev, i).
            distances[i] = fenwick.range_sum(prev + 1, i - 1) + size
            fenwick.add(prev, -size)
        fenwick.add(i, size)
        last_pos[obj] = i
    return distances


def lru_hit_ratio_curve(
    trace: Trace, n_points: int = 64, warmup_fraction: float = 0.0
) -> HitRatioCurve:
    """Exact LRU byte-HRC from one stack-distance pass.

    A request with stack distance ``d`` hits in every LRU cache of size
    >= ``d``; accumulating byte-weighted counts over a size grid yields the
    whole curve at once (Mattson et al.'s classic observation).
    """
    distances = reuse_distance_bytes(trace)
    sizes = trace.sizes
    start = int(warmup_fraction * len(trace))
    dist = distances[start:]
    weight = sizes[start:].astype(np.float64)
    total = float(weight.sum())

    finite = dist >= 0
    if finite.any():
        max_size = int(dist[finite].max())
    else:
        max_size = 1
    grid = np.unique(
        np.linspace(1, max(max_size, 1), n_points).astype(np.int64)
    )
    bhr = np.empty(len(grid), dtype=np.float64)
    for k, c in enumerate(grid):
        hit = finite & (dist <= c)
        bhr[k] = float(weight[hit].sum()) / total if total else 0.0
    return HitRatioCurve(sizes=grid.astype(np.float64), bhr=bhr)


def che_hit_ratio_curve(
    trace: Trace, n_points: int = 64
) -> HitRatioCurve:
    """Che-approximation byte-HRC from per-object rates.

    Solves the characteristic time ``T`` such that the expected resident
    bytes equal the cache size, with per-object in-cache probability
    ``1 - exp(-lambda_i T)`` — the analytic workhorse of provisioning
    models like footprint descriptors.
    """
    objs = trace.objs
    sizes = trace.sizes
    unique, first_idx, counts = np.unique(
        objs, return_index=True, return_counts=True
    )
    obj_sizes = sizes[first_idx].astype(np.float64)
    n = len(trace)
    lam = counts.astype(np.float64) / n
    total_bytes = float(sizes.sum())
    footprint = float(obj_sizes.sum())

    grid = np.unique(
        np.linspace(1, footprint, n_points).astype(np.int64)
    ).astype(np.float64)
    bhr = np.empty(len(grid))
    for k, c in enumerate(grid):
        lo, hi = 0.0, 64.0 * n
        for _ in range(60):
            mid = (lo + hi) / 2
            occupancy = float(
                (obj_sizes * -np.expm1(-lam * mid)).sum()
            )
            if occupancy > c:
                hi = mid
            else:
                lo = mid
        p_in = -np.expm1(-lam * lo)
        # A request to object i hits with probability ~ p_in(i); weighting
        # by bytes moved (size_i per request, count_i requests):
        hit_bytes = float((obj_sizes * counts * p_in).sum())
        bhr[k] = hit_bytes / total_bytes if total_bytes else 0.0
    return HitRatioCurve(sizes=grid, bhr=bhr)


def partition_cache(
    curves: list[HitRatioCurve],
    demands: list[float],
    total_bytes: int,
    step: int | None = None,
) -> list[int]:
    """Split a byte budget across tenants to maximise total byte hits.

    Args:
        curves: per-tenant hit-ratio curves.
        demands: per-tenant traffic volume (bytes requested per unit time)
            used to weight the curves.
        total_bytes: budget to distribute.
        step: allocation granularity (default: budget/100).

    Returns:
        Per-tenant byte allocations summing to at most ``total_bytes``,
        found by greedy marginal-gain allocation (optimal for concave
        curves; near-optimal in practice for the mildly non-concave tails).
    """
    if len(curves) != len(demands):
        raise ValueError("curves and demands must align")
    if total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    step = step or max(1, total_bytes // 100)
    alloc = [0] * len(curves)
    remaining = total_bytes
    while remaining >= step:
        best_gain, best_tenant = 0.0, -1
        for t, (curve, demand) in enumerate(zip(curves, demands)):
            gain = demand * (
                curve.at(alloc[t] + step) - curve.at(alloc[t])
            )
            if gain > best_gain:
                best_gain, best_tenant = gain, t
        if best_tenant < 0:
            break  # no tenant gains from more space
        alloc[best_tenant] += step
        remaining -= step
    return alloc
