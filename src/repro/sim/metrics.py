"""Statistical utilities for comparing cache policies.

Hit ratios are means over correlated request streams, so eyeballing a
0.5% BHR difference is not evidence.  These helpers put error bars on the
comparisons:

* :func:`bootstrap_bhr_ci` — a block-bootstrap confidence interval for one
  policy's byte hit ratio (blocks preserve the local request correlation
  that i.i.d. resampling would destroy);
* :func:`paired_bootstrap_diff` — the same for the *difference* between two
  policies simulated on the same trace, resampling the shared blocks so
  trace randomness cancels;
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_bhr_ci", "paired_bootstrap_diff"]


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap estimate with a two-sided confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    @property
    def width(self) -> float:
        """Interval width (a direct readability measure)."""
        return self.upper - self.lower

    def excludes_zero(self) -> bool:
        """True when the interval lies strictly on one side of zero."""
        return self.lower > 0.0 or self.upper < 0.0


def _block_indices(
    n: int, block: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample block starts with replacement and expand to request indices."""
    n_blocks = int(np.ceil(n / block))
    starts = rng.integers(0, max(n - block, 1), size=n_blocks)
    idx = (starts[:, None] + np.arange(block)[None, :]).ravel()
    return idx[:n]


def bootstrap_bhr_ci(
    hits: np.ndarray,
    sizes: np.ndarray,
    n_resamples: int = 500,
    block: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """Block-bootstrap CI for a byte hit ratio.

    Args:
        hits: per-request hit flags of one simulation.
        sizes: per-request byte sizes (same length).
        n_resamples: bootstrap iterations.
        block: resampling block length in requests.
        confidence: two-sided coverage.
        seed: RNG seed.
    """
    hits = np.asarray(hits, dtype=bool)
    sizes = np.asarray(sizes, dtype=np.float64)
    if len(hits) != len(sizes):
        raise ValueError("hits and sizes must align")
    if len(hits) == 0:
        raise ValueError("cannot bootstrap an empty simulation")
    rng = np.random.default_rng(seed)
    n = len(hits)
    block = min(block, n)
    point = float(sizes[hits].sum() / sizes.sum())
    stats = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = _block_indices(n, block, rng)
        s = sizes[idx]
        h = hits[idx]
        stats[b] = s[h].sum() / s.sum()
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=point,
        lower=float(np.quantile(stats, alpha)),
        upper=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_bootstrap_diff(
    hits_a: np.ndarray,
    hits_b: np.ndarray,
    sizes: np.ndarray,
    n_resamples: int = 500,
    block: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapCI:
    """CI for ``BHR(a) - BHR(b)`` of two policies on the same trace.

    Both hit vectors are resampled with the *same* blocks, so workload
    randomness cancels and only the policies' disagreement drives the
    interval.  ``excludes_zero()`` is the significance verdict.
    """
    hits_a = np.asarray(hits_a, dtype=bool)
    hits_b = np.asarray(hits_b, dtype=bool)
    sizes = np.asarray(sizes, dtype=np.float64)
    if not (len(hits_a) == len(hits_b) == len(sizes)):
        raise ValueError("inputs must align")
    if len(sizes) == 0:
        raise ValueError("cannot bootstrap an empty simulation")
    rng = np.random.default_rng(seed)
    n = len(sizes)
    block = min(block, n)
    point = float(
        sizes[hits_a].sum() / sizes.sum() - sizes[hits_b].sum() / sizes.sum()
    )
    stats = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = _block_indices(n, block, rng)
        s = sizes[idx]
        total = s.sum()
        stats[b] = s[hits_a[idx]].sum() / total - s[hits_b[idx]].sum() / total
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        estimate=point,
        lower=float(np.quantile(stats, alpha)),
        upper=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
    )
