"""Trace-driven cache simulation and hit-ratio accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..cache import CachePolicy
from ..obs import get_registry
from ..trace import Trace
from .batched import run_batched

__all__ = ["SimResult", "simulate", "record_free_bytes"]


@dataclass
class SimResult:
    """Outcome of simulating one policy over one trace.

    Hit ratios are reported both over the whole trace and excluding a
    warmup prefix (cold caches understate steady-state performance).

    Attributes:
        policy: policy name.
        n_requests: trace length.
        hits: per-request hit flags.
        bhr: byte hit ratio after warmup.
        ohr: object hit ratio after warmup.
        chr: cost hit ratio after warmup — the fraction of total retrieval
            cost saved by hits (equals BHR when cost == size, and models
            latency savings when costs are per-object latencies, §2.1).
        bhr_full / ohr_full: ratios over the entire trace.
        warmup: number of requests excluded from the headline ratios.
        series: windowed BHR time series (window size in ``series_window``).
        training: retraining counters for self-training policies
            (``n_retrains``, ``n_skipped_retrains``, ``n_failed_retrains``,
            ``last_training_seconds``, ``training_pending`` — see
            :class:`repro.core.LFOOnline`), or None for static policies.
        metrics: snapshot of the active :mod:`repro.obs` registry taken when
            the simulation finished (counters, histograms, span aggregates),
            or None when observability is disabled.  Note the registry is
            process-wide: back-to-back simulations under one registry see
            cumulative values.
        resilience: degradation counters for policies that expose
            ``resilience_stats`` (``n_watchdog_cancels``,
            ``n_backoff_skips``, ``n_staleness_fallbacks``,
            ``n_staleness_recoveries``, ``degraded``, ``training_halted``
            — see :class:`repro.core.LFOOnline`), or None otherwise.
    """

    policy: str
    n_requests: int
    hits: np.ndarray
    bhr: float
    ohr: float
    chr: float
    bhr_full: float
    ohr_full: float
    warmup: int
    series: np.ndarray = field(default_factory=lambda: np.array([]))
    series_window: int = 0
    training: dict[str, float | int | bool] | None = None
    metrics: dict | None = None
    resilience: dict[str, float | int | bool] | None = None

    def to_dict(self, include_hits: bool = False) -> dict:
        """JSON-safe view of the result (ndarrays become lists / summaries).

        The per-request ``hits`` vector is summarised to ``n_hits`` unless
        ``include_hits`` asks for the full boolean list; the windowed
        ``series`` is always included (it is already bounded).
        """
        out = {
            "policy": self.policy,
            "n_requests": self.n_requests,
            "n_hits": int(self.hits.sum()),
            "bhr": float(self.bhr),
            "ohr": float(self.ohr),
            "chr": float(self.chr),
            "bhr_full": float(self.bhr_full),
            "ohr_full": float(self.ohr_full),
            "warmup": int(self.warmup),
            "series": [float(v) for v in self.series],
            "series_window": int(self.series_window),
            "training": dict(self.training) if self.training else None,
            "metrics": self.metrics,
            "resilience": dict(self.resilience) if self.resilience else None,
        }
        if include_hits:
            out["hits"] = [bool(h) for h in self.hits]
        return out


def simulate(
    trace: Trace,
    policy: CachePolicy,
    warmup_fraction: float = 0.2,
    series_window: int = 0,
    on_request: Callable[[int, bool], None] | None = None,
    batch_size: int = 0,
) -> SimResult:
    """Run a policy over a trace and compute hit ratios.

    Args:
        trace: the request stream.
        policy: a cache policy instance (consumed/mutated; pass a fresh one
            per run for independent results).
        warmup_fraction: fraction of leading requests excluded from the
            headline BHR/OHR.
        series_window: if > 0, also compute a windowed BHR series.
        on_request: optional observer called with (index, hit) per request.
        batch_size: when > 1 and the policy's ``supports_batched_scoring``
            is true, score requests in speculative lookahead batches via
            :mod:`repro.sim.batched` — bit-identical hits and free-bytes
            trajectory, just faster.  0 (default) keeps the scalar loop;
            the value is a pure performance knob, never a semantic one.
    """
    n = len(trace)
    if n == 0:
        raise ValueError("cannot simulate an empty trace")
    registry = get_registry()
    # Duck-typed: TieredLFOCache and other composite policies do not extend
    # CachePolicy and may lack the eviction counter.
    evictions_before = getattr(policy, "n_evictions", 0)
    hits = np.zeros(n, dtype=bool)
    batched = batch_size > 1 and getattr(
        policy, "supports_batched_scoring", False
    )
    with registry.span("sim.request_loop"):
        if batched:
            run_batched(trace, policy, batch_size, hits, on_request)
        else:
            for i, request in enumerate(trace):
                hit = policy.on_request(request)
                hits[i] = hit
                if on_request is not None:
                    on_request(i, hit)

    sizes = trace.sizes
    costs = trace.costs
    warmup = int(warmup_fraction * n)
    warm_slice = slice(warmup, None)

    def ratios(sl: slice) -> tuple[float, float, float]:
        h = hits[sl]
        s = sizes[sl]
        c = costs[sl]
        total_bytes = float(s.sum())
        total_cost = float(c.sum())
        bhr = float(s[h].sum()) / total_bytes if total_bytes else 0.0
        ohr = float(h.mean()) if len(h) else 0.0
        cost_hr = float(c[h].sum()) / total_cost if total_cost else 0.0
        return bhr, ohr, cost_hr

    bhr, ohr, cost_hr = ratios(warm_slice)
    bhr_full, ohr_full, _ = ratios(slice(None))

    series = np.array([])
    if series_window > 0:
        n_windows = n // series_window
        series = np.empty(n_windows, dtype=np.float64)
        for w in range(n_windows):
            sl = slice(w * series_window, (w + 1) * series_window)
            series[w], _, _ = ratios(sl)

    training = getattr(policy, "training_stats", None)
    if training is not None:
        training = dict(training)  # snapshot: the policy keeps mutating
    resilience = getattr(policy, "resilience_stats", None)
    if resilience is not None:
        resilience = dict(resilience)

    metrics = None
    if registry.enabled:
        # Counters are folded in after the loop from the vectorised hit
        # flags — identical totals to per-request increments, zero cost on
        # the request path.
        n_hits = int(hits.sum())
        hit_bytes = int(sizes[hits].sum())
        total_bytes = int(sizes.sum())
        registry.counter("sim.requests").inc(n)
        registry.counter("sim.hits").inc(n_hits)
        registry.counter("sim.misses").inc(n - n_hits)
        registry.counter("sim.hit_bytes").inc(hit_bytes)
        registry.counter("sim.miss_bytes").inc(total_bytes - hit_bytes)
        registry.counter("sim.evictions").inc(
            getattr(policy, "n_evictions", 0) - evictions_before
        )
        registry.gauge("sim.cache_used_bytes").set(
            getattr(policy, "used_bytes", 0)
        )
        registry.gauge("sim.cache_objects").set(
            getattr(policy, "n_objects", 0)
        )
        metrics = registry.to_dict()

    return SimResult(
        policy=policy.name,
        n_requests=n,
        hits=hits,
        bhr=bhr,
        ohr=ohr,
        chr=cost_hr,
        bhr_full=bhr_full,
        ohr_full=ohr_full,
        warmup=warmup,
        series=series,
        series_window=series_window,
        training=training,
        metrics=metrics,
        resilience=resilience,
    )


def record_free_bytes(trace: Trace, policy: CachePolicy) -> np.ndarray:
    """Simulate a policy and record the cache's free bytes *before* each
    request — the observation LFO's free-bytes feature is built from."""
    n = len(trace)
    free = np.empty(n, dtype=np.int64)
    for i, request in enumerate(trace):
        free[i] = policy.free_bytes
        policy.on_request(request)
    return free
