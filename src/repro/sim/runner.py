"""Trace-driven cache simulation and hit-ratio accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from ..cache import CachePolicy
from ..obs import get_registry
from ..trace import Trace
from .batched import DECISION_LATENCY_BUCKETS, run_batched

__all__ = ["SimResult", "simulate", "record_free_bytes"]

#: Requests folded per checkpoint when telemetry is enabled and the
#:  registry has no request-window hint of its own.
_FOLD_CHUNK = 1024

#: Per-chunk decision-latency sample size.  Timing every request would
#: put two ``perf_counter`` calls (~100ns) on a ~1µs LRU decision and
#: blow the <3% observability budget; a leading cluster per chunk keeps
#: the sampling fraction ~3% while still filling the window histogram.
_LATENCY_SAMPLE = 32


class _MetricsFolder:
    """Incremental counter folding at chunk boundaries.

    The request path stays untouched: per-chunk, the folder vectorises
    the hit/byte sums over just the new slice, bumps the same counters
    the old end-of-run fold produced (identical totals), refreshes the
    cache gauges, and gives a windowed registry its roll checkpoint —
    which is what turns cumulative counters into live window deltas.
    """

    def __init__(self, registry, policy, sizes, hits) -> None:
        self._registry = registry
        self._policy = policy
        self._sizes = sizes
        # One prefix-sum pass up front makes each fold's total-bytes a
        # two-element lookup instead of an O(window) sum — folds run
        # mid-simulation with cold caches, where every slice pass costs
        # several times its microbenchmarked price.
        self._size_csum = np.cumsum(sizes, dtype=np.int64)
        self._hits = hits
        self._folded = 0
        self._evictions_prev = getattr(policy, "n_evictions", 0)
        self._requests = registry.counter("sim.requests")
        self._hits_counter = registry.counter("sim.hits")
        self._misses = registry.counter("sim.misses")
        self._hit_bytes = registry.counter("sim.hit_bytes")
        self._miss_bytes = registry.counter("sim.miss_bytes")
        self._evictions = registry.counter("sim.evictions")
        self._used_gauge = registry.gauge("sim.cache_used_bytes")
        self._objects_gauge = registry.gauge("sim.cache_objects")

    def fold(self, upto: int) -> None:
        """Fold requests ``[folded, upto)`` into the registry and offer
        the windowed registry a roll checkpoint.

        The work is wrapped in a ``sim.metrics_fold`` span, so a run's
        registry snapshot carries its own telemetry bill — what the
        overhead benchmark gates on.
        """
        if upto <= self._folded:
            return
        with self._registry.span("sim.metrics_fold"):
            self._fold(upto)

    def _fold(self, upto: int) -> None:
        # Two numpy calls, not five: mid-run folds execute with caches
        # full of the policy's dict working set, where every numpy API
        # entry pays a cold-dispatch penalty an order of magnitude above
        # its microbenchmarked cost.  ``dot`` folds the hit/size product
        # in one call and the size prefix-sum (built once at init) turns
        # the window's total bytes into two scalar lookups.
        window = slice(self._folded, upto)
        hits = self._hits[window]
        n = upto - self._folded
        n_hits = int(np.count_nonzero(hits))
        hit_bytes = int(np.dot(self._sizes[window], hits))
        total_bytes = int(self._size_csum[upto - 1]) - (
            int(self._size_csum[self._folded - 1]) if self._folded else 0
        )
        self._requests.inc(n)
        self._hits_counter.inc(n_hits)
        self._misses.inc(n - n_hits)
        self._hit_bytes.inc(hit_bytes)
        self._miss_bytes.inc(total_bytes - hit_bytes)
        evictions = getattr(self._policy, "n_evictions", 0)
        if evictions != self._evictions_prev:
            self._evictions.inc(evictions - self._evictions_prev)
            self._evictions_prev = evictions
        self._used_gauge.set(getattr(self._policy, "used_bytes", 0))
        self._objects_gauge.set(getattr(self._policy, "n_objects", 0))
        self._folded = upto
        self._registry.maybe_roll()

    @property
    def chunk(self) -> int:
        """Periodic checkpoint distance, or 0 when none is needed.

        Only windowed registries need mid-run folds: request-window mode
        folds exactly at window edges — however large, since a fold is a
        pair of vectorised slice reductions and its cost is dominated by
        the fixed cold-dispatch price of entering numpy mid-run, not the
        slice length.  Wall-interval mode folds on a fixed chunk so
        ``maybe_roll`` sees fresh counters.  A plain cumulative registry
        folds once at the end of the run — 20 small-slice numpy folds on
        a 20k-request LRU run measurably breach the <3% budget.
        """
        every = getattr(self._registry, "every_requests", 0)
        if getattr(self._registry, "every_seconds", 0.0) > 0.0:
            return min(every, _FOLD_CHUNK) if every > 0 else _FOLD_CHUNK
        return every


def _run_observed(
    trace: Trace,
    policy: CachePolicy,
    hits: np.ndarray,
    on_request: Callable[[int, bool], None] | None,
    folder: _MetricsFolder,
    registry,
) -> None:
    """The scalar loop with telemetry: clustered decision-latency
    sampling, plus chunked folding when the registry is windowed.

    Timed requests are clustered so the sampled fraction — not
    per-request timing — is the only overhead added.  A windowed
    registry needs mid-run checkpoints, so its loop advances in
    fold-sized chunks (window edges land exactly) and times the leading
    cluster of each chunk, filling every window's latency histogram.  A
    plain cumulative registry gets the cheaper shape: one timed prefix
    cluster, then the *identical* bare loop the unobserved path runs —
    restructuring that loop (list + index chunking) alone measures
    several percent on a sub-µs policy, which the <3% budget can't
    absorb.
    """
    latency = registry.histogram(
        "sim.decision_latency_seconds", DECISION_LATENCY_BUCKETS
    )
    n = len(trace)
    fold_every = folder.chunk
    if not fold_every:
        samples: list[float] = []
        prefix = min(8 * _LATENCY_SAMPLE, n)
        it = iter(trace)
        with registry.span("sim.latency_cluster"):
            for i in range(prefix):
                request = next(it)
                began = perf_counter()
                hit = policy.on_request(request)
                samples.append(perf_counter() - began)
                hits[i] = hit
                if on_request is not None:
                    on_request(i, hit)
            latency.observe_batch(samples)
        for i, request in enumerate(it, start=prefix):
            hit = policy.on_request(request)
            hits[i] = hit
            if on_request is not None:
                on_request(i, hit)
        return
    # Index the trace's backing list directly — copying 20k request
    # pointers is both avoidable work and allocator churn next to the
    # policy's dict-heavy hot loop.
    requests = getattr(trace, "requests", None)
    if requests is None:
        requests = list(trace)
    start = 0
    while start < n:
        end = min(start + fold_every, n)
        timed_end = min(start + _LATENCY_SAMPLE, end)
        with registry.span("sim.latency_cluster"):
            for i in range(start, timed_end):
                began = perf_counter()
                hit = policy.on_request(requests[i])
                # Scalar observe, deliberately: for a 32-sample cluster
                # the pure-Python bisect is cheaper than one
                # ``observe_batch`` numpy round-trip from a cold mid-run
                # cache context.
                latency.observe(perf_counter() - began)
                hits[i] = hit
                if on_request is not None:
                    on_request(i, hit)
        for i in range(timed_end, end):
            hit = policy.on_request(requests[i])
            hits[i] = hit
            if on_request is not None:
                on_request(i, hit)
        folder.fold(end)
        start = end


@dataclass
class SimResult:
    """Outcome of simulating one policy over one trace.

    Hit ratios are reported both over the whole trace and excluding a
    warmup prefix (cold caches understate steady-state performance).

    Attributes:
        policy: policy name.
        n_requests: trace length.
        hits: per-request hit flags.
        bhr: byte hit ratio after warmup.
        ohr: object hit ratio after warmup.
        chr: cost hit ratio after warmup — the fraction of total retrieval
            cost saved by hits (equals BHR when cost == size, and models
            latency savings when costs are per-object latencies, §2.1).
        bhr_full / ohr_full: ratios over the entire trace.
        warmup: number of requests excluded from the headline ratios.
        series: windowed BHR time series (window size in ``series_window``).
        training: retraining counters for self-training policies
            (``n_retrains``, ``n_skipped_retrains``, ``n_failed_retrains``,
            ``last_training_seconds``, ``training_pending`` — see
            :class:`repro.core.LFOOnline`), or None for static policies.
        metrics: snapshot of the active :mod:`repro.obs` registry taken when
            the simulation finished (counters, histograms, span aggregates),
            or None when observability is disabled.  Note the registry is
            process-wide: back-to-back simulations under one registry see
            cumulative values.
        resilience: degradation counters for policies that expose
            ``resilience_stats`` (``n_watchdog_cancels``,
            ``n_backoff_skips``, ``n_staleness_fallbacks``,
            ``n_staleness_recoveries``, ``degraded``, ``training_halted``
            — see :class:`repro.core.LFOOnline`), or None otherwise.
    """

    policy: str
    n_requests: int
    hits: np.ndarray
    bhr: float
    ohr: float
    chr: float
    bhr_full: float
    ohr_full: float
    warmup: int
    series: np.ndarray = field(default_factory=lambda: np.array([]))
    series_window: int = 0
    training: dict[str, float | int | bool] | None = None
    metrics: dict | None = None
    resilience: dict[str, float | int | bool] | None = None

    def to_dict(self, include_hits: bool = False) -> dict:
        """JSON-safe view of the result (ndarrays become lists / summaries).

        The per-request ``hits`` vector is summarised to ``n_hits`` unless
        ``include_hits`` asks for the full boolean list; the windowed
        ``series`` is always included (it is already bounded).
        """
        out = {
            "policy": self.policy,
            "n_requests": self.n_requests,
            "n_hits": int(self.hits.sum()),
            "bhr": float(self.bhr),
            "ohr": float(self.ohr),
            "chr": float(self.chr),
            "bhr_full": float(self.bhr_full),
            "ohr_full": float(self.ohr_full),
            "warmup": int(self.warmup),
            "series": [float(v) for v in self.series],
            "series_window": int(self.series_window),
            "training": dict(self.training) if self.training else None,
            "metrics": self.metrics,
            "resilience": dict(self.resilience) if self.resilience else None,
        }
        if include_hits:
            out["hits"] = [bool(h) for h in self.hits]
        return out


def simulate(
    trace: Trace,
    policy: CachePolicy,
    warmup_fraction: float = 0.2,
    series_window: int = 0,
    on_request: Callable[[int, bool], None] | None = None,
    batch_size: int = 0,
) -> SimResult:
    """Run a policy over a trace and compute hit ratios.

    Args:
        trace: the request stream.
        policy: a cache policy instance (consumed/mutated; pass a fresh one
            per run for independent results).
        warmup_fraction: fraction of leading requests excluded from the
            headline BHR/OHR.
        series_window: if > 0, also compute a windowed BHR series.
        on_request: optional observer called with (index, hit) per request.
        batch_size: when > 1 and the policy's ``supports_batched_scoring``
            is true, score requests in speculative lookahead batches via
            :mod:`repro.sim.batched` — bit-identical hits and free-bytes
            trajectory, just faster.  0 (default) keeps the scalar loop;
            the value is a pure performance knob, never a semantic one.
    """
    n = len(trace)
    if n == 0:
        raise ValueError("cannot simulate an empty trace")
    registry = get_registry()
    hits = np.zeros(n, dtype=bool)
    batched = batch_size > 1 and getattr(
        policy, "supports_batched_scoring", False
    )
    sizes = trace.sizes
    costs = trace.costs
    folder = (
        _MetricsFolder(registry, policy, sizes, hits)
        if registry.enabled
        else None
    )
    with registry.span("sim.request_loop"):
        if batched:
            run_batched(trace, policy, batch_size, hits, on_request, folder)
        elif folder is None:
            for i, request in enumerate(trace):
                hit = policy.on_request(request)
                hits[i] = hit
                if on_request is not None:
                    on_request(i, hit)
        else:
            _run_observed(trace, policy, hits, on_request, folder, registry)
    if folder is not None:
        folder.fold(n)
    warmup = int(warmup_fraction * n)
    warm_slice = slice(warmup, None)

    def ratios(sl: slice) -> tuple[float, float, float]:
        h = hits[sl]
        s = sizes[sl]
        c = costs[sl]
        total_bytes = float(s.sum())
        total_cost = float(c.sum())
        bhr = float(s[h].sum()) / total_bytes if total_bytes else 0.0
        ohr = float(h.mean()) if len(h) else 0.0
        cost_hr = float(c[h].sum()) / total_cost if total_cost else 0.0
        return bhr, ohr, cost_hr

    bhr, ohr, cost_hr = ratios(warm_slice)
    bhr_full, ohr_full, _ = ratios(slice(None))

    series = np.array([])
    if series_window > 0:
        n_windows = n // series_window
        series = np.empty(n_windows, dtype=np.float64)
        for w in range(n_windows):
            sl = slice(w * series_window, (w + 1) * series_window)
            series[w], _, _ = ratios(sl)

    training = getattr(policy, "training_stats", None)
    if training is not None:
        training = dict(training)  # snapshot: the policy keeps mutating
    resilience = getattr(policy, "resilience_stats", None)
    if resilience is not None:
        resilience = dict(resilience)

    # Counters were folded at chunk boundaries by the _MetricsFolder —
    # identical totals to per-request increments, zero cost on the
    # request path, and live enough for windowed telemetry mid-run.
    metrics = registry.to_dict() if registry.enabled else None

    return SimResult(
        policy=policy.name,
        n_requests=n,
        hits=hits,
        bhr=bhr,
        ohr=ohr,
        chr=cost_hr,
        bhr_full=bhr_full,
        ohr_full=ohr_full,
        warmup=warmup,
        series=series,
        series_window=series_window,
        training=training,
        metrics=metrics,
        resilience=resilience,
    )


def record_free_bytes(trace: Trace, policy: CachePolicy) -> np.ndarray:
    """Simulate a policy and record the cache's free bytes *before* each
    request — the observation LFO's free-bytes feature is built from."""
    n = len(trace)
    free = np.empty(n, dtype=np.int64)
    for i, request in enumerate(trace):
        free[i] = policy.free_bytes
        policy.on_request(request)
    return free
