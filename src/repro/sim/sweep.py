"""Cache-size sweeps: hit ratios of arbitrary policies across sizes.

Hit-ratio *curves* for LRU come cheap from stack distances
(:mod:`repro.sim.hrc`); for any other policy the curve needs one
simulation per size.  This module provides that sweep plus crossover
analysis (at what cache size does policy A overtake policy B?) — the
standard way caching papers compare policies across the provisioning
range.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..cache import CachePolicy
from ..trace import Trace
from .hrc import HitRatioCurve
from .runner import simulate

__all__ = ["policy_hit_ratio_curve", "sweep_policies", "crossover_size"]

PolicyFactory = Callable[[int], CachePolicy]


def policy_hit_ratio_curve(
    trace: Trace,
    factory: PolicyFactory,
    sizes: Sequence[int],
    warmup_fraction: float = 0.2,
    metric: str = "bhr",
) -> HitRatioCurve:
    """Simulate a policy at each cache size; return the measured curve.

    Args:
        trace: the workload.
        factory: ``cache_size -> policy`` constructor.
        sizes: cache sizes (bytes) to simulate.
        warmup_fraction: excluded prefix per simulation.
        metric: ``"bhr"``, ``"ohr"`` or ``"chr"``.
    """
    if metric not in ("bhr", "ohr", "chr"):
        raise ValueError("metric must be 'bhr', 'ohr' or 'chr'")
    if not sizes:
        raise ValueError("need at least one cache size")
    sizes = sorted(int(s) for s in sizes)
    values = np.empty(len(sizes))
    for k, size in enumerate(sizes):
        result = simulate(trace, factory(size), warmup_fraction=warmup_fraction)
        values[k] = getattr(result, metric)
    return HitRatioCurve(
        sizes=np.asarray(sizes, dtype=np.float64), bhr=values
    )


def sweep_policies(
    trace: Trace,
    factories: dict[str, PolicyFactory],
    sizes: Sequence[int],
    warmup_fraction: float = 0.2,
    metric: str = "bhr",
) -> dict[str, HitRatioCurve]:
    """Run :func:`policy_hit_ratio_curve` for several policies."""
    return {
        name: policy_hit_ratio_curve(
            trace, factory, sizes, warmup_fraction, metric
        )
        for name, factory in factories.items()
    }


def crossover_size(
    curve_a: HitRatioCurve, curve_b: HitRatioCurve
) -> float | None:
    """Smallest cache size at which curve A reaches curve B.

    Returns None when A never catches B on the sampled range; 0.0 when A
    already leads at the smallest sampled size.  Uses linear interpolation
    between samples of both curves on their union grid.
    """
    grid = np.union1d(curve_a.sizes, curve_b.sizes)
    diff = np.array([curve_a.at(s) - curve_b.at(s) for s in grid])
    if diff[0] >= 0:
        return 0.0
    signs = np.signbit(diff)
    flips = np.nonzero(signs[:-1] & ~signs[1:])[0]
    if len(flips) == 0:
        return None
    i = int(flips[0])
    # Linear interpolation of the zero crossing.
    x0, x1 = grid[i], grid[i + 1]
    y0, y1 = diff[i], diff[i + 1]
    if y1 == y0:
        return float(x1)
    return float(x0 - y0 * (x1 - x0) / (y1 - y0))
