"""Declarative experiment runner: a JSON/dict spec in, a results table out.

Batch studies (parameter sweeps, repeated seeds, CI jobs) want experiments
as *data*, not scripts.  A spec looks like::

    {
      "trace": {"kind": "zipf", "n_requests": 20000, "alpha": 0.9},
      "cache": {"fraction": 10},
      "policies": ["LRU", "GDSF", "S4LRU", "LFO"],
      "lfo": {"window": 5000, "segment_length": 1000},
      "warmup": 0.25
    }

``run_experiment`` resolves the trace (synthetic single-class, synthetic
mix, or a file), sizes the cache, simulates every policy (including online
LFO when listed), and returns per-policy BHR/OHR plus the spec echo for
provenance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from ..trace import (
    ContentClass,
    SyntheticConfig,
    Trace,
    compute_stats,
    generate_mixed_trace,
    generate_trace,
    read_binary_trace,
    read_text_trace,
)
from .comparison import policy_factories
from .runner import simulate

__all__ = ["run_experiment", "load_spec"]

_SYNTH_KEYS = {
    "n_requests", "n_objects", "alpha", "size_median", "size_sigma",
    "size_max", "mean_interarrival", "locality", "locality_window", "seed",
}


def load_spec(path: Union[str, Path]) -> dict:
    """Read an experiment spec from a JSON file."""
    with open(path) as handle:
        return json.load(handle)


def _build_trace(spec: dict) -> Trace:
    kind = spec.get("kind", "zipf")
    if kind == "zipf":
        kwargs = {k: v for k, v in spec.items() if k in _SYNTH_KEYS}
        return generate_trace(SyntheticConfig(**kwargs))
    if kind == "mixed":
        classes = [ContentClass(**c) for c in spec["classes"]]
        return generate_mixed_trace(
            classes,
            spec["shares"],
            n_requests=spec.get("n_requests", 20_000),
            seed=spec.get("seed", 42),
        )
    if kind == "file":
        path = spec["path"]
        if str(path).endswith(".bin"):
            return read_binary_trace(path)
        return read_text_trace(path)
    raise ValueError(f"unknown trace kind: {kind!r}")


def _cache_size(spec: dict, trace: Trace) -> int:
    if "bytes" in spec:
        return int(spec["bytes"])
    fraction = spec.get("fraction", 10)
    return max(1, compute_stats(trace).footprint_bytes // int(fraction))


def run_experiment(spec: dict) -> dict[str, Any]:
    """Execute one experiment spec; returns a JSON-serialisable result."""
    trace = _build_trace(spec.get("trace", {}))
    cache_size = _cache_size(spec.get("cache", {}), trace)
    warmup = float(spec.get("warmup", 0.25))
    policy_names = spec.get("policies", ["LRU"])

    results: dict[str, dict[str, float]] = {}
    heuristics = [p for p in policy_names if p not in ("LFO", "IRL")]
    if heuristics:
        factories = policy_factories(heuristics)
        for name, factory in factories.items():
            sim = simulate(trace, factory(cache_size), warmup_fraction=warmup)
            results[name] = {"bhr": sim.bhr, "ohr": sim.ohr}

    if "LFO" in policy_names:
        from ..core import LFOOnline, OptLabelConfig

        lfo_spec = spec.get("lfo", {})
        policy = LFOOnline(
            cache_size,
            window=int(lfo_spec.get("window", 5_000)),
            cutoff=float(lfo_spec.get("cutoff", 0.5)),
            label_config=OptLabelConfig(
                mode=lfo_spec.get("label_mode", "segmented"),
                segment_length=int(lfo_spec.get("segment_length", 1_000)),
            ),
        )
        sim = simulate(trace, policy, warmup_fraction=warmup)
        results["LFO"] = {
            "bhr": sim.bhr, "ohr": sim.ohr, "retrains": policy.n_retrains
        }

    if "IRL" in policy_names:
        from ..core import IRLOnline, OptLabelConfig

        irl_spec = spec.get("irl", spec.get("lfo", {}))
        policy = IRLOnline(
            cache_size,
            window=int(irl_spec.get("window", 5_000)),
            label_config=OptLabelConfig(
                mode=irl_spec.get("label_mode", "segmented"),
                segment_length=int(irl_spec.get("segment_length", 1_000)),
            ),
        )
        sim = simulate(trace, policy, warmup_fraction=warmup)
        results["IRL"] = {
            "bhr": sim.bhr, "ohr": sim.ohr, "retrains": policy.n_retrains
        }

    return {
        "spec": spec,
        "trace": {
            "n_requests": len(trace),
            "name": trace.name,
        },
        "cache_size": cache_size,
        "results": results,
    }
