"""Simulation engine and multi-policy comparison harness."""

from .comparison import (
    ComparisonRow,
    compare_policies,
    format_table,
    policy_factories,
)
from .experiment import load_spec, run_experiment
from .metrics import BootstrapCI, bootstrap_bhr_ci, paired_bootstrap_diff
from .hrc import (
    HitRatioCurve,
    che_hit_ratio_curve,
    lru_hit_ratio_curve,
    partition_cache,
    reuse_distance_bytes,
)
from .runner import SimResult, record_free_bytes, simulate
from .server import ServerConfig, ServerReport, simulate_server
from .sweep import crossover_size, policy_hit_ratio_curve, sweep_policies

__all__ = [
    "ComparisonRow",
    "compare_policies",
    "format_table",
    "policy_factories",
    "load_spec",
    "run_experiment",
    "BootstrapCI",
    "bootstrap_bhr_ci",
    "paired_bootstrap_diff",
    "HitRatioCurve",
    "che_hit_ratio_curve",
    "lru_hit_ratio_curve",
    "partition_cache",
    "reuse_distance_bytes",
    "SimResult",
    "record_free_bytes",
    "simulate",
    "ServerConfig",
    "ServerReport",
    "simulate_server",
    "crossover_size",
    "policy_hit_ratio_curve",
    "sweep_policies",
]
