"""Multi-policy comparison harness (the machinery behind Figures 1 and 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..cache import (
    AdaptSizeCache,
    CachePolicy,
    ClockCache,
    FIFOCache,
    GDSCache,
    GDSFCache,
    GDWheelCache,
    HyperbolicCache,
    LFUDACache,
    LHDCache,
    LRUCache,
    LRUKCache,
    RandomCache,
    RLCache,
    S4LRUCache,
    TinyLFUCache,
    TwoQCache,
)
from ..trace import Trace
from .runner import SimResult, simulate

__all__ = ["ComparisonRow", "policy_factories", "compare_policies", "format_table"]

PolicyFactory = Callable[[int], CachePolicy]


@dataclass(frozen=True)
class ComparisonRow:
    """One policy's results in a comparison table."""

    policy: str
    bhr: float
    ohr: float


def policy_factories(subset: Sequence[str] | None = None) -> dict[str, PolicyFactory]:
    """Factories for the paper's comparison policies, keyed by name.

    Args:
        subset: optional list of names to keep (order preserved).
    """
    all_factories: dict[str, PolicyFactory] = {
        "RND": lambda size: RandomCache(size),
        "LRU": lambda size: LRUCache(size),
        "LRU-K": lambda size: LRUKCache(size),
        "LFUDA": lambda size: LFUDACache(size),
        "S4LRU": lambda size: S4LRUCache(size),
        "GDSF": lambda size: GDSFCache(size),
        "GD-Wheel": lambda size: GDWheelCache(size),
        "AdaptSize": lambda size: AdaptSizeCache(size),
        "Hyperbolic": lambda size: HyperbolicCache(size),
        "LHD": lambda size: LHDCache(size),
        "TinyLFU": lambda size: TinyLFUCache(size),
        "RLC": lambda size: RLCache(size),
        "FIFO": lambda size: FIFOCache(size),
        "CLOCK": lambda size: ClockCache(size),
        "GDS": lambda size: GDSCache(size),
        "2Q": lambda size: TwoQCache(size),
    }
    if subset is None:
        return all_factories
    missing = [name for name in subset if name not in all_factories]
    if missing:
        raise KeyError(f"unknown policies: {missing}")
    return {name: all_factories[name] for name in subset}


def compare_policies(
    trace: Trace,
    cache_size: int,
    factories: dict[str, PolicyFactory] | None = None,
    warmup_fraction: float = 0.2,
) -> dict[str, SimResult]:
    """Simulate each policy on the same trace; returns results by name."""
    if factories is None:
        factories = policy_factories()
    results: dict[str, SimResult] = {}
    for name, factory in factories.items():
        results[name] = simulate(
            trace, factory(cache_size), warmup_fraction=warmup_fraction
        )
    return results


def format_table(
    results: dict[str, SimResult], sort_by: str = "bhr"
) -> str:
    """Render results as an aligned text table sorted by a metric."""
    if sort_by not in ("bhr", "ohr"):
        raise ValueError("sort_by must be 'bhr' or 'ohr'")
    rows = sorted(
        results.values(), key=lambda r: getattr(r, sort_by), reverse=True
    )
    width = max(len(r.policy) for r in rows)
    lines = [f"{'policy':<{width}}  {'BHR':>7}  {'OHR':>7}"]
    for r in rows:
        lines.append(f"{r.policy:<{width}}  {r.bhr:>7.4f}  {r.ohr:>7.4f}")
    return "\n".join(lines)
