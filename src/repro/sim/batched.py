"""Micro-batched scoring for static-model policies.

The scalar simulation loop scores one request at a time; even with the
compiled predictor, per-call overhead dominates at one row per call.
This module scores *lookahead windows* instead — but replays every
admission/eviction decision sequentially, so cache semantics and the
``free_bytes`` trajectory stay bit-identical to the scalar loop (the
equivalence gate in ``tests/test_sim_batched.py`` pins exact ``hits``
equality).

The hazard is the feedback loop: a request's feature vector includes the
cache's *current* free bytes and the object's gap history, both of which
earlier requests in the same window can change.  The engine therefore
speculates and tracks exactly what could invalidate the speculation:

1. extract a lookahead window's features against the tracker state and
   free bytes *at window start* (one vectorised probe, nothing
   recorded), and score them in one compiled-predictor call;
2. replay requests in order, maintaining a *dirty set* of objects whose
   tracker state changed since the probe — each replayed request's
   object, plus any object the tracker's LRU cap evicted
   (:attr:`repro.features.FeatureTracker.last_evicted`).  Only the
   tracker mutates gap/cost state, and during replay it mutates exactly
   these objects, so a clean object's speculated row *is* its live
   extraction except for the free-bytes column;
3. a clean row therefore reuses the speculative score after patching the
   live free-bytes value into the row — valid whenever the live value
   falls between the same pair of consecutive ensemble thresholds as the
   speculated one (two values no tree split can tell apart take
   identical paths, hence score identically — see
   :meth:`repro.gbdt.CompiledPredictor.feature_thresholds`).  No
   per-row extraction, no comparison;
4. a dirty row is extracted and scored individually — identical to what
   the scalar loop computes;
5. once the free-bytes value drifts *out of the speculated bucket*, every
   remaining speculative score is stale at once, so the engine abandons
   the window and re-speculates from the current row.  The lookahead
   length adapts to the observed drift interval (shrinks toward the
   distance actually consumed, doubles back toward ``batch_size`` on
   fully consumed windows), so thrashy traffic degrades to small windows
   instead of wasted full-batch probes.

Either way the features and score applied through
:meth:`repro.core.LFOCache.apply_scored` are bit-identical to the scalar
path's, so speculation can never change an outcome — only how fast it
was computed.

Engaged by ``simulate(..., batch_size=N)`` for policies whose
``supports_batched_scoring`` is true (a static model, no periodic
rescore).  Policies that retrain mid-stream (``LFOOnline``) opt out.

Sampled eviction (``LFOCache(eviction="sampled")``) composes with
speculation unchanged: candidate sampling and scoring happen inside
``apply_scored``'s eviction plan, against the *live* tracker and
free-bytes state at that replay point — identical to the scalar loop —
and candidate probes are pure reads (``features_batch`` probe mode), so
they neither dirty speculated rows nor advance tracker state.  The
sampler's seeded generator is consumed per eviction plan, and plans
replay in exactly the scalar order, so hits stay bit-identical (pinned
by ``tests/test_evict_sampled.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs import get_registry
from ..trace import Trace

if TYPE_CHECKING:  # repro.core imports repro.sim; annotation only.
    from ..core.lfo import LFOCache
    from ..gbdt import CompiledPredictor
    from .runner import _MetricsFolder

__all__ = [
    "run_batched",
    "free_bytes_thresholds",
    "FREE_BYTES_COLUMN",
    "DECISION_LATENCY_BUCKETS",
]

#: Column of the free-bytes feature in the tracker's layout
#: (size, cost, free_bytes, gap_1..gap_N).
FREE_BYTES_COLUMN = 2

#: Smallest adaptive lookahead: below this the vectorised probe cannot
#: amortise its setup, so thrashy traffic stops shrinking here.
_MIN_WINDOW = 16

#: Bounds for the per-decision latency histogram: 1µs .. 10ms with 1-2-5
#: steps, fine enough that p99/p999 interpolation stays meaningful for a
#: sub-millisecond decision budget (Cold-RL's deployment constraint).
#: Lives here (not runner.py) so both loops share it without a cycle.
DECISION_LATENCY_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5,
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2,
)

#: Decisions timed per speculation window — clustered sampling, same
#: rationale as the scalar loop's per-chunk cluster.
_TIMED_PER_WINDOW = 8


def free_bytes_thresholds(predictor: "CompiledPredictor") -> list[float]:
    """Ensemble split thresholds on the free-bytes feature, as floats.

    Two free-bytes values falling between the same pair of consecutive
    thresholds take identical paths through every tree, so a speculated
    score stays valid while the live value remains in the speculated
    bucket (``bisect_left`` index).  Python floats so the per-row bisect
    costs the same comparisons as ``np.searchsorted(..., side="left")``
    at a fraction of the call overhead.  Shared by this loop and the
    serving engine (:mod:`repro.serve`).
    """
    return predictor.feature_thresholds(FREE_BYTES_COLUMN).tolist()


def run_batched(
    trace: Trace,
    policy: "LFOCache",
    batch_size: int,
    hits: np.ndarray,
    on_request: Callable[[int, bool], None] | None = None,
    folder: "_MetricsFolder | None" = None,
) -> None:
    """Drive ``policy`` over ``trace`` in speculative scoring windows.

    Fills ``hits`` in place with the per-request hit flags; semantics are
    bit-identical to the scalar ``policy.on_request`` loop.
    ``batch_size`` caps the adaptive lookahead length.  When telemetry is
    enabled, ``folder`` (built by :func:`repro.sim.simulate`) folds
    counters and offers window-roll checkpoints at speculation-window
    edges, and the leading decisions of each window are timed into the
    shared decision-latency histogram.
    """
    model = policy.model
    predictor = model.classifier.compiled()
    tracker = policy.tracker
    thresholds = free_bytes_thresholds(predictor)
    registry = get_registry()
    observing = registry.enabled
    timed_limit = 0
    if observing:
        rows_hist = registry.histogram("sim.batch_rows")
        latency_hist = registry.histogram(
            "sim.decision_latency_seconds", DECISION_LATENCY_BUCKETS
        )
        timed_limit = _TIMED_PER_WINDOW
    requests = list(trace)
    n = len(requests)
    n_rescored = 0
    n_respeculations = 0
    window = min(_MIN_WINDOW * 4, batch_size)
    i = 0
    while i < n:
        batch = requests[i:i + window]
        free0 = policy.free_bytes
        speculated = tracker.features_batch(batch, free0)
        scores = predictor.predict_proba(speculated)
        spec_bucket = bisect_left(thresholds, float(free0))
        if observing:
            rows_hist.observe(len(batch))
        #: objects whose tracker state changed since the probe — their
        #: speculated rows are stale and must be recomputed live.
        dirty: set[int] = set()
        consumed = len(batch)
        for k, request in enumerate(batch):
            obj = request.obj
            if obj in dirty:
                # Re-requested (or cap-evicted) inside the window; score
                # the live row — identical to the scalar loop's value.
                features = tracker.features(request, policy.free_bytes)
                score = model.likelihood_single(features)
                n_rescored += 1
            else:
                free_live = policy.free_bytes
                if bisect_left(thresholds, float(free_live)) != spec_bucket:
                    # Free bytes left the speculated bucket: every
                    # remaining clean score is stale at once.  Abandon
                    # the window and re-speculate from this row.  Never
                    # hits k == 0: the first row's free bytes are exactly
                    # ``free0``, so progress is guaranteed.
                    consumed = k
                    break
                # Clean object + same bucket: the speculated row with the
                # live free-bytes value patched in is bit-identical to a
                # live extraction, and its score is the speculated one.
                features = speculated[k]
                features[FREE_BYTES_COLUMN] = free_live
                score = float(scores[k])
            if k < timed_limit:
                began = perf_counter()
                hit = policy.apply_scored(request, features, score)
                latency_hist.observe(perf_counter() - began)
            else:
                hit = policy.apply_scored(request, features, score)
            dirty.add(obj)
            evicted = tracker.last_evicted
            if evicted is not None:
                dirty.add(evicted)
            hits[i + k] = hit
            if on_request is not None:
                on_request(i + k, hit)
        if consumed == len(batch):
            window = min(window * 2, batch_size)
        else:
            n_respeculations += 1
            # Track the observed drift interval (+1 so the broken row,
            # which the next window must re-cover, still fits).
            window = min(max(_MIN_WINDOW, consumed + 1), batch_size)
        i += consumed
        if folder is not None:
            folder.fold(i)
    if observing:
        if n_rescored:
            registry.counter("sim.batch_rescored").inc(n_rescored)
        if n_respeculations:
            registry.counter("sim.batch_respeculations").inc(n_respeculations)
