"""Discrete-event model of a CDN server running predictions + training.

The paper's throughput section remarks: "we have not included the training
overhead and ... a production implementation would need to carefully
optimize priorities such that training tasks do not interfere with the
request traffic."  This module makes that trade-off measurable with a small
multi-server queueing simulation:

* requests arrive (Poisson) and need a short prediction service time;
* training jobs arrive every ``window`` requests and need a long service
  time;
* under the ``"fifo"`` discipline a training job occupies a worker
  end-to-end, inflating request tail latency;
* under the ``"priority"`` discipline training only consumes worker time
  that requests leave idle (ideal preemption), so request latency is
  unaffected and training finishes whenever enough idle time accumulates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..obs import get_registry

__all__ = ["ServerConfig", "ServerReport", "simulate_server"]

#: Bounds for the queueing-latency histograms: 100µs .. 30s.  Request
#: sojourn times sit near ``prediction_time`` (1ms default); training
#: completion delays run to many seconds under the fifo discipline.
_SERVER_LATENCY_BUCKETS = (
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
    1e-1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


@dataclass(frozen=True)
class ServerConfig:
    """Parameters of the prediction-server simulation.

    Attributes:
        n_workers: parallel predictor threads.
        arrival_rate: requests per second (Poisson).
        prediction_time: seconds of worker time per request.
        training_time: seconds of worker time per training job.
        window: requests between training-job arrivals (0 = no training).
        n_requests: simulated request count.
        discipline: "fifo" (training competes head-of-line) or
            "priority" (training is fully preemptible background work).
        seed: RNG seed for arrivals.
    """

    n_workers: int = 2
    arrival_rate: float = 1000.0
    prediction_time: float = 1e-3
    training_time: float = 2.0
    window: int = 10_000
    n_requests: int = 50_000
    discipline: str = "priority"
    seed: int = 0


@dataclass
class ServerReport:
    """Latency and training statistics of one simulation run."""

    latencies: np.ndarray = field(repr=False)
    training_delays: list[float] = field(default_factory=list)
    utilisation: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Mean request sojourn time (wait + service), seconds."""
        return float(self.latencies.mean())

    @property
    def p99_latency(self) -> float:
        """99th-percentile request sojourn time, seconds."""
        return float(np.percentile(self.latencies, 99))

    @property
    def max_training_delay(self) -> float:
        """Worst completion delay of a training job, seconds."""
        return max(self.training_delays, default=0.0)


def simulate_server(config: ServerConfig) -> ServerReport:
    """Run the discrete-event simulation and return latency statistics.

    When a :mod:`repro.obs` registry is active the report's latency
    samples are also folded (one vectorised pass, off the simulated
    request path) into the ``server.request_latency_seconds`` and
    ``server.training_latency_seconds`` histograms, so the fifo-vs-
    priority comparison shows up in the same export surfaces — Prometheus
    ``/metrics``, window quantiles — as the cache simulator's telemetry.
    """
    if config.discipline not in ("fifo", "priority"):
        raise ValueError("discipline must be 'fifo' or 'priority'")
    if config.n_workers < 1:
        raise ValueError("n_workers must be >= 1")

    rng = np.random.default_rng(config.seed)
    inter = rng.exponential(1.0 / config.arrival_rate, size=config.n_requests)
    arrivals = np.cumsum(inter)

    # Jobs: (arrival_time, service_time, is_training).  Training jobs arrive
    # together with every ``window``-th request.
    jobs: list[tuple[float, float, bool]] = []
    for i, t in enumerate(arrivals):
        jobs.append((float(t), config.prediction_time, False))
        if config.window and (i + 1) % config.window == 0:
            jobs.append((float(t), config.training_time, True))

    if config.discipline == "fifo":
        report = _simulate_fifo(jobs, config)
    else:
        report = _simulate_priority(jobs, config)
    _observe_report(report)
    return report


def _observe_report(report: ServerReport) -> None:
    """Fold a finished report's samples into the active registry."""
    registry = get_registry()
    if not registry.enabled:
        return
    registry.histogram(
        "server.request_latency_seconds", _SERVER_LATENCY_BUCKETS
    ).observe_batch(report.latencies)
    registry.histogram(
        "server.training_latency_seconds", _SERVER_LATENCY_BUCKETS
    ).observe_batch(np.asarray(report.training_delays))
    registry.gauge("server.utilisation").set(report.utilisation)


def _simulate_fifo(jobs, config: ServerConfig) -> ServerReport:
    """All jobs share one FIFO queue over ``n_workers`` servers."""
    # Workers become free at these times (min-heap).
    free_at = [0.0] * config.n_workers
    heapq.heapify(free_at)
    latencies = []
    training_delays = []
    busy_time = 0.0
    end_time = 0.0
    for arrival, service, is_training in jobs:
        start = max(arrival, heapq.heappop(free_at))
        finish = start + service
        heapq.heappush(free_at, finish)
        busy_time += service
        end_time = max(end_time, finish)
        if is_training:
            training_delays.append(finish - arrival)
        else:
            latencies.append(finish - arrival)
    utilisation = busy_time / (config.n_workers * end_time) if end_time else 0.0
    return ServerReport(
        latencies=np.asarray(latencies),
        training_delays=training_delays,
        utilisation=utilisation,
    )


def _simulate_priority(jobs, config: ServerConfig) -> ServerReport:
    """Requests are strictly prioritised; training soaks up idle time.

    Requests are served as if training did not exist.  Training jobs then
    consume the idle worker-time the request schedule leaves behind: a job
    arriving at ``t`` finishes once ``training_time`` of idle worker-seconds
    have accumulated after ``t`` (ideal preemption, zero switch cost).
    """
    requests = [(a, s) for a, s, tr in jobs if not tr]
    trainings = [(a, s) for a, s, tr in jobs if tr]

    free_at = [0.0] * config.n_workers
    heapq.heapify(free_at)
    latencies = []
    busy_intervals: list[tuple[float, float]] = []
    end_time = 0.0
    for arrival, service in requests:
        start = max(arrival, heapq.heappop(free_at))
        finish = start + service
        heapq.heappush(free_at, finish)
        busy_intervals.append((start, finish))
        latencies.append(finish - arrival)
        end_time = max(end_time, finish)

    # Idle-capacity profile: total worker-seconds minus request work, as a
    # piecewise-linear function of time, sampled at interval boundaries.
    events: list[tuple[float, int]] = []
    for start, finish in busy_intervals:
        events.append((start, +1))
        events.append((finish, -1))
    events.sort()

    training_delays = []
    for arrival, service in trainings:
        # Sweep time from the arrival, accumulating idle worker-seconds.
        idle_needed = service
        t = arrival
        busy = sum(1 for s, f in busy_intervals if s <= arrival < f)
        # Replay events after the arrival.
        idx = 0
        while idx < len(events) and events[idx][0] <= arrival:
            idx += 1
        finish = None
        while idle_needed > 1e-12:
            next_event = events[idx][0] if idx < len(events) else float("inf")
            idle_rate = config.n_workers - busy
            if idle_rate > 0:
                span = next_event - t
                capacity = idle_rate * span
                if capacity >= idle_needed:
                    finish = t + idle_needed / idle_rate
                    idle_needed = 0.0
                    break
                idle_needed -= capacity
            if idx >= len(events):
                # Past the last event everything is idle.
                finish = next_event if next_event < float("inf") else t
                finish = t + idle_needed / config.n_workers
                idle_needed = 0.0
                break
            t = next_event
            busy += events[idx][1]
            idx += 1
        training_delays.append((finish if finish is not None else t) - arrival)

    busy_time = sum(f - s for s, f in busy_intervals)
    utilisation = busy_time / (config.n_workers * end_time) if end_time else 0.0
    return ServerReport(
        latencies=np.asarray(latencies),
        training_delays=training_delays,
        utilisation=utilisation,
    )
