"""Nested wall-time spans with bounded-memory aggregation.

A span measures one named stage (``with registry.span("online.gbdt_fit")``)
and feeds two sinks:

* **aggregates** — one ``SpanAggregate`` (count / total / max seconds) per
  span *name*, so memory stays O(distinct stages) no matter how long the
  process runs;
* an optional **ring buffer** of the most recent raw spans (name, parent,
  start, duration) for debugging span trees, bounded by ``ring_size``.

Nesting is tracked per thread: the innermost open span on the current
thread becomes the ``parent`` of a new span, which is how a retraining
cycle's ``window_close -> label_solve -> gbdt_fit`` chain is reconstructed
from the ring buffer.  Start times come from :func:`time.perf_counter`
(monotonic, process-relative — meaningful for ordering and deltas, not as
wall-clock timestamps).
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter

__all__ = ["SpanAggregate", "Span", "NullSpan", "Tracer"]


class SpanAggregate:
    """Bounded-memory summary of every completed span with one name."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def as_dict(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "max_seconds": self.max,
            "mean_seconds": self.total / self.count if self.count else 0.0,
        }


class Span:
    """One timed stage; context manager returned by ``Tracer.span``.

    After ``__exit__`` the measured duration is available as ``elapsed``
    and the enclosing span's name (or None) as ``parent``.
    """

    __slots__ = ("_tracer", "name", "parent", "elapsed", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.parent: str | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.elapsed = perf_counter() - self._start
        self._tracer._stack().pop()
        self._tracer.record(self.name, self.parent, self._start, self.elapsed)
        return False


class NullSpan:
    """Disabled-registry span: measures ``elapsed`` but records nothing.

    Timing is kept (two ``perf_counter`` calls) because callers such as
    ``LFOOnline`` consume ``span.elapsed`` for their own counters even when
    observability is off; spans are used at stage granularity, never per
    request, so the cost is immaterial.
    """

    __slots__ = ("name", "parent", "elapsed", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.parent = None
        self.elapsed = 0.0

    def __enter__(self) -> "NullSpan":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.elapsed = perf_counter() - self._start
        return False


class Tracer:
    """Per-name span aggregation plus a recent-span ring buffer."""

    def __init__(self, ring_size: int = 256) -> None:
        if ring_size < 0:
            raise ValueError("ring_size must be >= 0")
        self._lock = threading.Lock()
        self._local = threading.local()
        self.aggregates: dict[str, SpanAggregate] = {}
        self.ring: deque | None = deque(maxlen=ring_size) if ring_size else None

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """Open a new span (use as ``with tracer.span("stage"):``)."""
        return Span(self, name)

    def event(self, name: str) -> None:
        """Record an instantaneous marker: a zero-duration span at the
        current nesting position.

        Degradation decisions (a watchdog firing, a staleness fallback
        engaging) have no meaningful duration but belong in the span tree,
        so an incident's ring buffer shows *where in the retrain chain*
        they happened.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        self.record(name, parent, perf_counter(), 0.0)

    def record(
        self, name: str, parent: str | None, start: float, elapsed: float
    ) -> None:
        """Fold one completed span into the aggregates (thread-safe)."""
        with self._lock:
            aggregate = self.aggregates.get(name)
            if aggregate is None:
                aggregate = self.aggregates[name] = SpanAggregate()
            aggregate.add(elapsed)
            if self.ring is not None:
                self.ring.append((name, parent, start, elapsed))

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        """Aggregates keyed by span name (JSON-safe)."""
        with self._lock:
            return {
                name: agg.as_dict() for name, agg in self.aggregates.items()
            }

    def recent(self) -> list[dict[str, float | str | None]]:
        """The ring buffer's raw spans, oldest first (JSON-safe)."""
        if self.ring is None:
            return []
        with self._lock:
            return [
                {
                    "name": name,
                    "parent": parent,
                    "start": start,
                    "seconds": elapsed,
                }
                for name, parent, start, elapsed in self.ring
            ]

    def reset(self) -> None:
        """Drop all aggregates and buffered spans."""
        with self._lock:
            self.aggregates.clear()
            if self.ring is not None:
                self.ring.clear()
