"""Metrics registry: counters, gauges, fixed-bucket histograms, spans.

The request path must never pay for observability it is not using, so the
registry comes in two flavours behind one interface:

* :class:`MetricsRegistry` — real aggregation.  Hot paths fetch instrument
  objects once and call plain methods on them: an increment is a single
  int/float add on a ``__slots__`` object — no locking, no allocation, no
  string formatting per request.  Locks are only taken on instrument
  *creation* and span recording (stage granularity, never per request).
* :class:`NullRegistry` — every instrument is a shared no-op singleton and
  ``enabled`` is False, so instrumented code can gate its only real cost
  (``perf_counter`` calls) on one attribute read.

A process-wide default registry (initially a ``NullRegistry``) is what
instrumented library code reports to; install a real one with
:func:`set_registry` or scoped via :func:`use_registry`.  Worker processes
get a fresh ``NullRegistry`` default, so instrumentation inside process
pools degrades to no-ops instead of breaking pickling.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from math import isfinite
from functools import wraps
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, TypeVar

from .tracing import NullSpan, Span, Tracer

_F = TypeVar("_F", bound=Callable[..., Any])

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "traced",
]

#: Default histogram bounds for durations in seconds: 1µs .. 10s, decades.
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class Counter:
    """Monotonically increasing value (requests, hits, bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (resident objects, used bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with count/total/max summary.

    ``bounds`` are *inclusive* upper bucket edges (Prometheus ``le``
    semantics: a value equal to an edge lands in that edge's bucket),
    with one implicit overflow bucket above the top edge.  Buckets are
    fixed at construction so ``observe`` is one bisect plus integer adds
    — no allocation.  Bounds must be finite: the overflow bucket *is*
    the ``+Inf`` bucket, so an explicit infinite edge would alias it.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "max")

    def __init__(
        self, name: str, bounds: Iterable[float] = DEFAULT_TIME_BUCKETS
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not all(isfinite(b) for b in self.bounds):
            raise ValueError(
                "histogram bounds must be finite; the overflow bucket "
                "already provides +Inf"
            )
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def observe_batch(self, values: Iterable[float]) -> None:
        """Fold a whole array of observations in one vectorised pass.

        Bit-identical bucketing to per-value :meth:`observe`
        (``np.searchsorted(..., side="left")`` matches the bisect), at
        O(len + buckets) instead of one Python call per sample — how the
        server simulation folds tens of thousands of latency samples.
        """
        import numpy as np

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        indices = np.searchsorted(self.bounds, values, side="left")
        folded = np.bincount(indices, minlength=len(self.bucket_counts))
        for i, n in enumerate(folded):
            if n:
                self.bucket_counts[i] += int(n)
        self.count += int(values.size)
        self.total += float(values.sum())
        top = float(values.max())
        if top > self.max:
            self.max = top

    def merge_delta(
        self,
        bucket_counts: "Iterable[int]",
        count: int,
        total: float,
        max_value: float,
    ) -> None:
        """Fold another histogram's per-bucket *delta* into this one.

        The cross-process folding primitive: shard workers observe into
        local histograms with identical bounds and ship per-window bucket
        deltas (see :mod:`repro.obs.fold`); merging is pure integer adds,
        so folded windows are bit-identical to having observed every
        sample locally — except ``max``, which is a cumulative high-water
        mark on both sides and merges by comparison.
        """
        counts = list(bucket_counts)
        if len(counts) != len(self.bucket_counts):
            raise ValueError(
                f"histogram {self.name!r}: cannot merge {len(counts)} "
                f"buckets into {len(self.bucket_counts)}"
            )
        for i, n in enumerate(counts):
            if n:
                self.bucket_counts[i] += n
        self.count += count
        self.total += total
        if max_value > self.max:
            self.max = max_value

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "mean": self.total / self.count if self.count else 0.0,
            "buckets": [
                [bound, n]
                for bound, n in zip(
                    list(self.bounds) + ["+Inf"], self.bucket_counts
                )
            ],
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    max = 0.0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def observe_batch(self, values) -> None:
        pass

    def merge_delta(self, bucket_counts, count, total, max_value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments plus a span tracer, with snapshot exporters.

    Args:
        ring_size: recent raw spans retained for debugging (0 disables the
            ring buffer; aggregates are always kept).
        time_buckets: default histogram bounds for ``histogram()`` calls
            that do not pass their own.
    """

    enabled = True
    every_requests = 0
    every_seconds = 0.0

    def __init__(
        self,
        ring_size: int = 256,
        time_buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._time_buckets = tuple(time_buckets)
        self.tracer = Tracer(ring_size=ring_size)

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> Histogram:
        """Get or create the histogram ``name`` (bounds fixed on creation)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, bounds or self._time_buckets)
                )
        return histogram

    def span(self, name: str) -> Span:
        """Open a nested wall-time span (``with registry.span("stage"):``)."""
        return self.tracer.span(name)

    def event(self, name: str) -> None:
        """Record an instantaneous span-tree marker (see ``Tracer.event``)."""
        self.tracer.event(name)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """One JSON-safe snapshot of every instrument and span aggregate."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {n: h.as_dict() for n, h in self._histograms.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": self.tracer.snapshot(),
            "recent_spans": self.tracer.recent(),
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The snapshot in Prometheus text exposition format."""
        from .export import render_prometheus

        return render_prometheus(self.to_dict(), prefix=prefix)

    def write_jsonl(self, path: str | Path) -> None:
        """Append the current snapshot as one JSON line to ``path``."""
        from .export import JsonlSink

        JsonlSink(path).write(self.to_dict())

    def reset(self) -> None:
        """Drop every instrument and all span state."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        self.tracer.reset()

    # -- windowed-telemetry parity (see repro.obs.windows) -------------------
    # A cumulative registry has no window ring; these no-ops let producers
    # call ``registry.maybe_roll()`` at checkpoints and health/SLO layers
    # ``attach`` unconditionally.  :class:`repro.obs.WindowedRegistry`
    # overrides all of them.

    def on_close(self, callback: Callable[[Any], None]) -> None:
        pass

    def maybe_roll(self) -> None:
        return None

    def roll(self) -> None:
        return None

    def flush(self) -> None:
        return None

    def windows(self) -> list:
        return []

    def last_window(self) -> None:
        return None

    def window_series(self, name: str) -> list[float]:
        return []

    def to_windows_dict(self) -> dict:
        return {
            "mode": "disabled",
            "every_requests": 0,
            "every_seconds": 0.0,
            "ring": 0,
            "next_index": 0,
            "windows": [],
        }


class NullRegistry:
    """Disabled observability: same interface, every operation a no-op.

    ``span()`` still measures ``elapsed`` (callers consume it) but records
    nothing; counters/gauges/histograms are one shared inert instrument.
    The windowed-telemetry surface (:class:`repro.obs.WindowedRegistry`)
    is mirrored too — ``maybe_roll``/``roll`` return nothing, the ring is
    always empty, ``on_close`` subscriptions are dropped — so health
    monitors and SLO engines attach to a disabled registry without a
    single conditional at the call site.
    """

    enabled = False
    every_requests = 0
    every_seconds = 0.0

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name: str) -> NullSpan:
        return NullSpan(name)

    def event(self, name: str) -> None:
        pass

    def to_dict(self) -> dict:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
            "recent_spans": [],
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        return ""

    def write_jsonl(self, path: str | Path) -> None:
        pass

    def reset(self) -> None:
        pass

    # -- windowed-telemetry parity (see repro.obs.windows) -------------------

    def on_close(self, callback: Callable[[Any], None]) -> None:
        pass

    def maybe_roll(self) -> None:
        return None

    def roll(self) -> None:
        return None

    def flush(self) -> None:
        return None

    def windows(self) -> list:
        return []

    def last_window(self) -> None:
        return None

    def window_series(self, name: str) -> list[float]:
        return []

    def to_windows_dict(self) -> dict:
        return {
            "mode": "disabled",
            "every_requests": 0,
            "every_seconds": 0.0,
            "ring": 0,
            "next_index": 0,
            "windows": [],
        }


# -- process-wide default registry -------------------------------------------

_default_registry: MetricsRegistry | NullRegistry = NullRegistry()


def get_registry() -> MetricsRegistry | NullRegistry:
    """The registry instrumented library code currently reports to."""
    return _default_registry


def set_registry(
    registry: MetricsRegistry | NullRegistry,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` as the process default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Scoped :func:`set_registry`: install for the block, then restore."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def traced(name: str) -> Callable[[_F], _F]:
    """Decorator form of the tracer: time every call as a span ``name``.

    The registry is looked up at *call* time, so functions decorated at
    import keep honouring :func:`use_registry` scopes.
    """

    def decorate(fn: _F) -> _F:
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with get_registry().span(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
