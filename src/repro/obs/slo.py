"""Declarative SLOs with error-budget burn tracking over telemetry windows.

The serving harness (ROADMAP item 5) needs a yes/no answer to "is the
policy meeting its objectives *right now*", not a post-hoc report.  This
module evaluates a declarative :class:`SloSpec` against every closed
window of a :class:`~repro.obs.windows.WindowedRegistry`:

* **latency_quantile** — a window quantile of a latency histogram
  (default ``sim.decision_latency_seconds`` — the per-decision budget
  Cold-RL enforces inside NGINX) must stay ≤ ``max_value``;
* **window_bhr** — the window byte hit ratio must stay ≥ ``min_value``;
* **staleness** — ``online.windows_since_model`` (train-to-install lag)
  must stay ≤ ``max_value`` windows.

Each objective carries an *error budget*: the fraction of windows over a
rolling ``horizon`` that may violate it before the objective is
**breached**.  The burn rate is the fraction of that budget currently
consumed (1.0 = fully burned); a transition into breach raises an
``slo.breach`` event and is reflected in the ``slo.breached_objectives``
gauge, so breaches land in the same span ring and export surfaces as the
health alerts.

Windows with too little signal (fewer than ``min_count`` histogram
observations, no request bytes) are *skipped*, not counted against the
budget — an idle window is not an outage.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from .registry import MetricsRegistry, NullRegistry
from .windows import WindowSnapshot, window_bhr

__all__ = ["SloObjective", "SloSpec", "SloEngine"]

DECISION_LATENCY_HISTOGRAM = "sim.decision_latency_seconds"
STALENESS_GAUGE = "online.windows_since_model"

_KINDS = ("latency_quantile", "window_bhr", "staleness")


@dataclass(frozen=True)
class SloObjective:
    """One objective evaluated per window.

    Attributes:
        name: stable identifier used in verdicts and events.
        kind: one of ``latency_quantile`` / ``window_bhr`` / ``staleness``.
        metric: histogram name for ``latency_quantile`` (ignored by the
            other kinds, which read fixed signals).
        quantile: the percentile point for ``latency_quantile``.
        max_value / min_value: the threshold (which one applies depends
            on the kind).
        budget: allowed bad-window *fraction* over the engine's horizon.
        min_count: minimum observations for a window to be evaluable
            (``latency_quantile`` only).
    """

    name: str
    kind: str
    metric: str = DECISION_LATENCY_HISTOGRAM
    quantile: float = 0.99
    max_value: float | None = None
    min_value: float | None = None
    budget: float = 0.1
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; use {_KINDS}")
        if not 0.0 <= self.budget < 1.0:
            raise ValueError("budget must be a fraction in [0, 1)")
        if self.kind == "window_bhr":
            if self.min_value is None:
                raise ValueError("window_bhr objective needs min_value")
        elif self.max_value is None:
            raise ValueError(f"{self.kind} objective needs max_value")
        if self.kind == "latency_quantile" and not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")

    def evaluate(self, snapshot: WindowSnapshot) -> tuple[bool | None, float]:
        """``(ok, value)`` for one window; ``ok`` is None when the window
        carries too little signal to judge (skipped, not counted)."""
        if self.kind == "latency_quantile":
            if snapshot.histogram_count(self.metric) < self.min_count:
                return None, 0.0
            value = snapshot.quantile(self.metric, self.quantile)
            assert self.max_value is not None
            return value <= self.max_value, value
        if self.kind == "window_bhr":
            bhr = window_bhr(snapshot)
            if bhr is None:
                return None, 0.0
            assert self.min_value is not None
            return bhr >= self.min_value, bhr
        # staleness
        value = snapshot.gauges.get(STALENESS_GAUGE)
        if value is None:
            return None, 0.0
        assert self.max_value is not None
        return value <= self.max_value, value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "quantile": self.quantile,
            "max_value": self.max_value,
            "min_value": self.min_value,
            "budget": self.budget,
            "min_count": self.min_count,
        }


@dataclass(frozen=True)
class SloSpec:
    """A set of objectives plus the rolling horizon they are judged over."""

    objectives: tuple[SloObjective, ...]
    horizon: int = 20

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be at least one window")
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError("objective names must be unique")

    @classmethod
    def default(cls) -> "SloSpec":
        """Sane defaults for the simulator: p99 decision latency under
        1 ms, window BHR above 0.2, model no more than 8 windows stale."""
        return cls(
            objectives=(
                SloObjective(
                    name="decision_latency_p99",
                    kind="latency_quantile",
                    quantile=0.99,
                    max_value=1e-3,
                    budget=0.1,
                    min_count=10,
                ),
                SloObjective(
                    name="window_bhr",
                    kind="window_bhr",
                    min_value=0.2,
                    budget=0.2,
                ),
                SloObjective(
                    name="train_to_install",
                    kind="staleness",
                    max_value=8.0,
                    budget=0.1,
                ),
            ),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "SloSpec":
        """Build a spec from the JSON shape ``as_dict`` produces."""
        objectives = tuple(
            SloObjective(
                name=item["name"],
                kind=item["kind"],
                metric=item.get("metric", DECISION_LATENCY_HISTOGRAM),
                quantile=float(item.get("quantile", 0.99)),
                max_value=item.get("max_value"),
                min_value=item.get("min_value"),
                budget=float(item.get("budget", 0.1)),
                min_count=int(item.get("min_count", 1)),
            )
            for item in data.get("objectives", [])
        )
        if not objectives:
            raise ValueError("SLO spec declares no objectives")
        return cls(objectives=objectives, horizon=int(data.get("horizon", 20)))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "SloSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    def as_dict(self) -> dict:
        return {
            "horizon": self.horizon,
            "objectives": [o.as_dict() for o in self.objectives],
        }


@dataclass
class _ObjectiveState:
    """Rolling verdict window for one objective."""

    verdicts: deque = field(default_factory=deque)
    last_value: float = 0.0
    evaluated: int = 0
    violations: int = 0
    breached: bool = False


class SloEngine:
    """Evaluates an :class:`SloSpec` against the window stream.

    Usage mirrors :class:`~repro.obs.health.HealthMonitor`::

        engine = SloEngine(SloSpec.default()).attach(registry)
        ...run...
        registry.flush()
        verdict = engine.verdict()   # JSON for /health and `lfo health`
        ok = engine.ok               # exit-code material

    An objective is **breached** while its bad-window count over the
    rolling horizon exceeds ``budget × horizon``.  Breach entry raises an
    ``slo.breach`` event and bumps ``slo.window_violations`` /
    ``slo.breached_objectives`` on the attached registry (fixed literal
    names — per-objective detail lives in the verdict JSON, not in
    metric-name cardinality).
    """

    def __init__(self, spec: SloSpec | None = None) -> None:
        self.spec = spec or SloSpec.default()
        self._registry = None
        self._states = {
            objective.name: _ObjectiveState(
                verdicts=deque(maxlen=self.spec.horizon)
            )
            for objective in self.spec.objectives
        }
        self.windows_observed = 0

    def attach(
        self, registry: MetricsRegistry | NullRegistry
    ) -> "SloEngine":
        """Subscribe to a windowed registry (no-op on a NullRegistry)."""
        self._registry = registry
        registry.on_close(self.observe_window)
        return self

    # -- evaluation ----------------------------------------------------------

    def observe_window(self, snapshot: WindowSnapshot) -> None:
        self.windows_observed += 1
        window_violations = 0
        newly_breached: list[str] = []
        for objective in self.spec.objectives:
            state = self._states[objective.name]
            ok, value = objective.evaluate(snapshot)
            if ok is None:
                continue
            state.evaluated += 1
            state.last_value = value
            state.verdicts.append(0 if ok else 1)
            if not ok:
                state.violations += 1
                window_violations += 1
            bad = sum(state.verdicts)
            breached = bad > objective.budget * self.spec.horizon
            if breached and not state.breached:
                newly_breached.append(objective.name)
            state.breached = breached
        self._publish(window_violations, newly_breached)

    def _publish(self, violations: int, newly_breached: list[str]) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        if violations:
            registry.counter("slo.window_violations").inc(violations)
        registry.gauge("slo.breached_objectives").set(
            sum(1 for s in self._states.values() if s.breached)
        )
        for _ in newly_breached:
            registry.event("slo.breach")

    # -- burn accounting -----------------------------------------------------

    def burn_rate(self, name: str) -> float:
        """Fraction of objective ``name``'s error budget consumed over the
        rolling horizon (1.0 = budget exhausted, >1.0 = breached)."""
        objective = self._objective(name)
        state = self._states[name]
        allowed = objective.budget * self.spec.horizon
        bad = sum(state.verdicts)
        if allowed <= 0.0:
            return float(bad)
        return bad / allowed

    def _objective(self, name: str) -> SloObjective:
        for objective in self.spec.objectives:
            if objective.name == name:
                return objective
        raise KeyError(name)

    # -- reporting -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no objective is currently breached."""
        return not any(state.breached for state in self._states.values())

    def verdict(self) -> dict:
        """JSON-safe per-objective verdict (the ``/health`` SLO block)."""
        objectives = {}
        for objective in self.spec.objectives:
            state = self._states[objective.name]
            objectives[objective.name] = {
                "kind": objective.kind,
                "ok": not state.breached,
                "last_value": state.last_value,
                "threshold": (
                    objective.min_value
                    if objective.kind == "window_bhr"
                    else objective.max_value
                ),
                "evaluated_windows": state.evaluated,
                "violations": state.violations,
                "bad_in_horizon": sum(state.verdicts),
                "budget": objective.budget,
                "burn_rate": self.burn_rate(objective.name),
            }
        return {
            "ok": self.ok,
            "horizon": self.spec.horizon,
            "windows_observed": self.windows_observed,
            "objectives": objectives,
        }
