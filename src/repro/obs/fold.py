"""Folding remote (per-shard) telemetry deltas into a local registry.

Shard worker processes cannot report into the router's registry — the
instruments are process-local by design.  Instead each worker observes
into plain local ``Counter``/``Histogram`` instances and ships *deltas*
through its striped write buffers (:mod:`repro.cluster.buffers`); the
router calls :func:`fold_deltas` on every drained batch, replaying the
deltas into its own (usually windowed) registry.  Because windows are
delta-encoded to begin with (:class:`repro.obs.WindowedRegistry`), a
folded counter increment or histogram bucket delta is indistinguishable
from a local observation — BHR, latency SLOs, and drift detection work
cluster-wide unchanged.

This module is the registry *forwarding layer*: metric names arrive as
data (picked from the wire records the shards produced at literal call
sites), so the literal-name lint rule is suppressed here — and only
here.
"""
# lint: ignore[obs-literal-name]

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    from .registry import MetricsRegistry, NullRegistry

__all__ = ["fold_deltas"]


def fold_deltas(
    registry: "MetricsRegistry | NullRegistry",
    items: Iterable[Sequence],
) -> int:
    """Replay drained telemetry records into ``registry``; returns count.

    Two record shapes (produced by :mod:`repro.cluster.worker`):

    * ``("counter", name, delta)`` — fold ``delta`` into counter
      ``name``;
    * ``("hist", name, bounds, bucket_deltas, count, total, max)`` —
      fold a histogram window delta into histogram ``name`` (created
      with ``bounds`` on first sight; see
      :meth:`repro.obs.Histogram.merge_delta`).

    Unknown record kinds raise ``ValueError`` — a shard shipping records
    the router cannot fold is a protocol break, not noise to drop.
    """
    folded = 0
    for item in items:
        kind = item[0]
        if kind == "counter":
            _, name, delta = item
            registry.counter(name).inc(delta)
        elif kind == "hist":
            _, name, bounds, bucket_deltas, count, total, max_value = item
            registry.histogram(name, bounds).merge_delta(
                bucket_deltas, count, total, max_value
            )
        else:
            raise ValueError(f"unknown telemetry delta record: {kind!r}")
        folded += 1
    return folded
