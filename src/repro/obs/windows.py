"""Windowed telemetry: a bounded time-series ring over the live registry.

The cumulative counters of :class:`~repro.obs.MetricsRegistry` answer
"what happened over the whole run" but not "what is happening *now*" —
the question every drift detector and SLO needs.  This module adds
:class:`WindowedRegistry`, a drop-in ``MetricsRegistry`` that
periodically snapshots every counter/gauge/histogram into a
:class:`WindowSnapshot` holding the *delta* since the previous window,
and keeps the most recent snapshots in a bounded ring.

Design constraints, in order:

* **The hot path is untouched.**  Instruments are the same lock-free
  ``Counter``/``Gauge``/``Histogram`` objects; windowing happens only when
  a producer calls :meth:`WindowedRegistry.maybe_roll` at a checkpoint
  (the simulator folds counters in chunks and checks there — never per
  request), and the check itself is two attribute reads and a compare.
* **O(1) memory.**  The ring is a ``deque(maxlen=ring)``; each snapshot
  stores one small dict per instrument, so memory is bounded by
  ``ring × live instruments`` regardless of run length.
* **Delta encoding.**  Counters and histogram buckets are stored as
  per-window differences, so window rates (req/s, evictions/s, window
  BHR) and window quantiles (p50/p99/p999 via
  :func:`estimate_quantile`) come straight out of one snapshot.
* **Deterministic replay.**  Window boundaries in ``every_requests``
  mode depend only on a designated request counter; the wall-interval
  mode takes an injectable ``clock`` (monotonic ``perf_counter`` by
  default) so seeded tests can drive it logically.

Downstream consumers subscribe with :meth:`WindowedRegistry.on_close`:
:class:`repro.obs.health.HealthMonitor` and
:class:`repro.obs.slo.SloEngine` both attach this way.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterable, Sequence

from .registry import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = [
    "WindowSnapshot",
    "WindowedRegistry",
    "estimate_quantile",
    "window_bhr",
]

#: Metric names the derived-signal helpers read.  These match what
#: :func:`repro.sim.simulate` folds; other producers may reuse them.
REQUESTS_COUNTER = "sim.requests"
HIT_BYTES_COUNTER = "sim.hit_bytes"
MISS_BYTES_COUNTER = "sim.miss_bytes"


def estimate_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    q: float,
    max_value: float | None = None,
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram window.

    ``bounds`` are the inclusive upper bucket edges and ``counts`` the
    per-bucket observation counts *including* the trailing overflow
    bucket (``len(counts) == len(bounds) + 1``).  The estimate
    interpolates linearly inside the containing bucket — the standard
    Prometheus ``histogram_quantile`` construction — so its error is
    bounded by the bucket width.  The overflow bucket interpolates up to
    ``max_value`` when known (the registry histograms track their max),
    else it reports the top edge.

    Returns 0.0 for an empty window.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= rank:
            position = (rank - cumulative) / count
            if i < len(bounds):
                lo = bounds[i - 1] if i > 0 else min(0.0, bounds[0])
                hi = bounds[i]
            else:  # overflow bucket
                lo = bounds[-1]
                hi = max_value if max_value is not None and max_value > lo else lo
            return lo + (hi - lo) * position
        cumulative += count
    # Rounding fell off the end: the maximum we know of.
    if max_value is not None:
        return max_value
    return float(bounds[-1])


@dataclass
class WindowSnapshot:
    """One closed telemetry window: per-instrument deltas plus derived views.

    Attributes:
        index: 0-based window sequence number (monotonic even after the
            ring drops old windows).
        started / ended: injected-clock readings at the window edges
            (process-relative seconds under the default ``perf_counter``).
        duration: ``ended - started``.
        requests: delta of the designated request counter.
        counters: per-window counter deltas.
        gauges: gauge values at close (point-in-time, not deltas).
        histograms: per-window histogram deltas, each a dict with
            ``bounds`` (tuple), ``counts`` (per-bucket delta list incl.
            overflow), ``count``, ``total``, and ``max`` (cumulative max —
            maxima cannot be delta-encoded).
    """

    index: int
    started: float
    ended: float
    requests: int
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.ended - self.started

    # -- derived signals -----------------------------------------------------

    def delta(self, name: str) -> float:
        """This window's delta of counter ``name`` (0.0 if absent)."""
        return self.counters.get(name, 0.0)

    def rate(self, name: str) -> float:
        """Counter delta per second of window wall time (0.0 if unknown)."""
        if self.duration <= 0.0:
            return 0.0
        return self.delta(name) / self.duration

    def per_request(self, name: str) -> float:
        """Counter delta per request observed in the window."""
        if self.requests <= 0:
            return 0.0
        return self.delta(name) / self.requests

    def quantile(self, name: str, q: float) -> float:
        """Window quantile of histogram ``name`` (0.0 when absent/empty)."""
        hist = self.histograms.get(name)
        if hist is None:
            return 0.0
        return estimate_quantile(
            hist["bounds"], hist["counts"], q, max_value=hist.get("max")
        )

    def histogram_count(self, name: str) -> int:
        """Number of observations histogram ``name`` saw this window."""
        hist = self.histograms.get(name)
        return 0 if hist is None else int(hist["count"])

    @property
    def bhr(self) -> float | None:
        """Window byte hit ratio from the simulator's byte counters, or
        None when the window saw no request bytes."""
        return window_bhr(self)

    def as_dict(self) -> dict:
        """JSON-safe view (tuples become lists)."""
        return {
            "index": self.index,
            "started": self.started,
            "ended": self.ended,
            "duration": self.duration,
            "requests": self.requests,
            "bhr": self.bhr,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "total": hist["total"],
                    "max": hist["max"],
                }
                for name, hist in self.histograms.items()
            },
        }


def window_bhr(snapshot: WindowSnapshot) -> float | None:
    """Byte hit ratio of one window, or None when no bytes moved."""
    hit = snapshot.delta(HIT_BYTES_COUNTER)
    miss = snapshot.delta(MISS_BYTES_COUNTER)
    total = hit + miss
    if total <= 0:
        return None
    return hit / total


class WindowedRegistry(MetricsRegistry):
    """A ``MetricsRegistry`` that rolls periodic delta windows into a ring.

    Exactly one trigger mode must be chosen:

    * ``every_requests=N`` — a window closes once the designated request
      counter (``request_counter``, default ``sim.requests``) has grown
      by at least N since the last close.  Purely logical, so seeded
      replays produce bit-identical rings.
    * ``every_seconds=S`` — a window closes once the injected ``clock``
      has advanced by S.  The default clock is the monotonic
      :func:`time.perf_counter` (never the wall clock — see the
      det-wallclock lint rule); tests inject a fake clock.

    Producers call :meth:`maybe_roll` at natural checkpoints (the
    simulator's counter-fold boundaries, a serving loop's batch edges).
    The check is O(1); the roll itself takes the registry lock once per
    window.  ``on_close`` callbacks (health detectors, SLO engines,
    ``--follow`` renderers) run after the lock is released.

    Args:
        every_requests: request-count window length (0 disables).
        every_seconds: wall-interval window length (0.0 disables).
        ring: maximum retained windows (older ones fall off).
        clock: monotonic time source for window edges and wall mode.
        request_counter: counter watched in request mode.
        ring_size / time_buckets: forwarded to :class:`MetricsRegistry`.
    """

    def __init__(
        self,
        every_requests: int = 0,
        every_seconds: float = 0.0,
        ring: int = 120,
        clock: Callable[[], float] = perf_counter,
        request_counter: str = REQUESTS_COUNTER,
        ring_size: int = 256,
        time_buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(ring_size=ring_size, time_buckets=time_buckets)
        if (every_requests > 0) == (every_seconds > 0):
            raise ValueError(
                "choose exactly one window mode: every_requests=N "
                "or every_seconds=S"
            )
        if ring <= 0:
            raise ValueError("ring must hold at least one window")
        self.every_requests = int(every_requests)
        self.every_seconds = float(every_seconds)
        self.request_counter = request_counter
        self._clock = clock
        self._ring: deque[WindowSnapshot] = deque(maxlen=ring)
        self._callbacks: list[Callable[[WindowSnapshot], None]] = []
        self._index = 0
        self._window_started = clock()
        self._last_requests = 0.0
        self._prev_counters: dict[str, float] = {}
        self._prev_hist_counts: dict[str, list[int]] = {}
        self._prev_hist_summary: dict[str, tuple[int, float]] = {}

    # -- subscription --------------------------------------------------------

    def on_close(self, callback: Callable[[WindowSnapshot], None]) -> None:
        """Call ``callback(snapshot)`` after every window close."""
        self._callbacks.append(callback)

    # -- rolling -------------------------------------------------------------

    def maybe_roll(self) -> WindowSnapshot | None:
        """Close the current window if its trigger has fired.

        Cheap enough for producer checkpoints: in request mode one dict
        get plus a compare, in wall mode one clock read plus a compare.
        Returns the closed snapshot, or None when the window stays open.
        """
        if self.every_requests:
            counter = self._counters.get(self.request_counter)
            if counter is None:
                return None
            if counter.value - self._last_requests < self.every_requests:
                return None
        else:
            if self._clock() - self._window_started < self.every_seconds:
                return None
        return self.roll()

    def flush(self) -> WindowSnapshot | None:
        """Close the current window only if it has seen requests.

        The end-of-run idiom: when the trace length is an exact multiple
        of ``every_requests`` the periodic roll already closed the last
        window, and an unconditional :meth:`roll` would append an empty
        snapshot (``bhr`` None, zero counts) to the ring.  ``flush``
        makes the tail flush idempotent — returns the closed snapshot,
        or None when there was nothing left to close.

        The emptiness check and the roll happen under one lock
        acquisition, so concurrent flushes (a cancelled event loop's
        drain path racing a signal handler, say) close the tail window
        exactly once — the loser of the race observes zero new requests
        and returns None instead of appending a duplicate snapshot.
        """
        now = self._clock()
        with self._lock:
            counter = self._counters.get(self.request_counter)
            if counter is None or counter.value - self._last_requests <= 0:
                return None
            snapshot = self._roll_locked(now)
        for callback in self._callbacks:
            callback(snapshot)
        return snapshot

    def roll(self) -> WindowSnapshot:
        """Unconditionally close the current window and start a new one.

        Call once at end-of-run to flush the partial tail window —
        via :meth:`flush` when the tail may be empty.
        """
        now = self._clock()
        with self._lock:
            snapshot = self._roll_locked(now)
        for callback in self._callbacks:
            callback(snapshot)
        return snapshot

    def _roll_locked(self, now: float) -> WindowSnapshot:
        """Close the window; caller holds ``self._lock``.

        Split out so :meth:`flush` can make its emptiness check and the
        roll one atomic step; callbacks run after the lock is released
        (they may read the registry, which would deadlock here).
        """
        counters: dict[str, float] = {}
        for name, counter in self._counters.items():
            previous = self._prev_counters.get(name, 0.0)
            counters[name] = counter.value - previous
            self._prev_counters[name] = counter.value
        gauges = {name: g.value for name, g in self._gauges.items()}
        histograms: dict[str, dict] = {}
        for name, hist in self._histograms.items():
            prev_counts = self._prev_hist_counts.get(name)
            if prev_counts is None:
                prev_counts = [0] * len(hist.bucket_counts)
            prev_count, prev_total = self._prev_hist_summary.get(
                name, (0, 0.0)
            )
            current = list(hist.bucket_counts)
            histograms[name] = {
                "bounds": hist.bounds,
                "counts": [
                    c - p for c, p in zip(current, prev_counts)
                ],
                "count": hist.count - prev_count,
                "total": hist.total - prev_total,
                "max": hist.max,
            }
            self._prev_hist_counts[name] = current
            self._prev_hist_summary[name] = (hist.count, hist.total)
        requests_total = counters.get(self.request_counter, 0.0)
        snapshot = WindowSnapshot(
            index=self._index,
            started=self._window_started,
            ended=now,
            requests=int(requests_total),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
        )
        self._ring.append(snapshot)
        self._index += 1
        self._window_started = now
        self._last_requests = self._prev_counters.get(
            self.request_counter, 0.0
        )
        return snapshot

    # -- ring access ---------------------------------------------------------

    def windows(self) -> list[WindowSnapshot]:
        """The retained windows, oldest first."""
        with self._lock:
            return list(self._ring)

    def last_window(self) -> WindowSnapshot | None:
        """The most recently closed window, or None before the first roll."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    def window_series(self, name: str) -> list[float]:
        """Counter ``name``'s delta across the retained windows."""
        return [snap.delta(name) for snap in self.windows()]

    def to_windows_dict(self) -> dict:
        """JSON-safe dump of the ring (the ``/windows`` endpoint body)."""
        with self._lock:
            snapshots = list(self._ring)
            ring_capacity = self._ring.maxlen
            next_index = self._index
        return {
            "mode": "requests" if self.every_requests else "seconds",
            "every_requests": self.every_requests,
            "every_seconds": self.every_seconds,
            "ring": ring_capacity,
            "next_index": next_index,
            "windows": [snap.as_dict() for snap in snapshots],
        }

    def reset(self) -> None:
        """Drop instruments, the ring, and all delta baselines."""
        super().reset()
        with self._lock:
            self._ring.clear()
            self._index = 0
            self._window_started = self._clock()
            self._last_requests = 0.0
            self._prev_counters.clear()
            self._prev_hist_counts.clear()
            self._prev_hist_summary.clear()
