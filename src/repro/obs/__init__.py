"""Observability: metrics, tracing spans, per-stage pipeline instrumentation.

The paper's "lightweight" claim is only checkable if every stage of the
Figure-2 loop is measured without disturbing the request path.  This
package provides the instruments the rest of ``repro`` reports to:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket histograms,
  and a nested-span tracer with bounded-memory aggregation;
* :class:`NullRegistry` — the disabled fast path (every operation a no-op);
* exporters — ``to_dict()`` snapshots, JSON / JSON-lines files, and the
  Prometheus text format.

Library code looks up the process default via :func:`get_registry` (a
``NullRegistry`` until one is installed), so importing ``repro`` costs
nothing; enable collection with::

    from repro.obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()) as registry:
        result = simulate(trace, policy)
    print(registry.to_prometheus())

``lfo simulate/compare/experiment --metrics-out m.json`` does exactly this
from the command line.

On top of the cumulative registry sits the streaming layer:

* :class:`WindowedRegistry` — delta-encoded telemetry windows in a
  bounded ring (``repro.obs.windows``);
* :class:`HealthMonitor` — EWMA / Page-Hinkley / PSI drift detectors
  over those windows (``repro.obs.health``);
* :class:`SloEngine` — declarative objectives with error-budget burn
  tracking (``repro.obs.slo``);
* :class:`MetricsServer` — stdlib HTTP export of ``/metrics``,
  ``/health``, ``/windows`` (``repro.obs.serve``).
"""

from .export import JsonlSink, render_prometheus, write_json
from .fold import fold_deltas
from .health import HealthAlert, HealthConfig, HealthMonitor
from .serve import MetricsServer
from .slo import SloEngine, SloObjective, SloSpec
from .windows import WindowedRegistry, WindowSnapshot, estimate_quantile
from .registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    traced,
    use_registry,
)
from .tracing import NullSpan, Span, SpanAggregate, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
    "traced",
    "Span",
    "NullSpan",
    "SpanAggregate",
    "Tracer",
    "JsonlSink",
    "fold_deltas",
    "render_prometheus",
    "write_json",
    "WindowedRegistry",
    "WindowSnapshot",
    "estimate_quantile",
    "HealthAlert",
    "HealthConfig",
    "HealthMonitor",
    "SloEngine",
    "SloObjective",
    "SloSpec",
    "MetricsServer",
]
