"""Zero-dependency live export: /metrics, /health, /windows over HTTP.

A stdlib ``http.server`` wrapper that makes a running registry scrapeable
without adding a single package: ``/metrics`` serves the Prometheus text
exposition, ``/health`` a JSON verdict combining the SLO engine and
health monitor (HTTP 503 while unhealthy, so a plain liveness probe
works), and ``/windows`` the telemetry ring dump.

The server runs on a daemon thread and reads only snapshot methods that
take the registry lock briefly — the simulation hot path never blocks on
a scrape.  ``port=0`` binds an ephemeral port (tests); the bound port is
on :attr:`MetricsServer.port` after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .health import HealthMonitor
from .registry import MetricsRegistry, NullRegistry
from .slo import SloEngine

__all__ = ["MetricsServer"]


class MetricsServer:
    """Serve a registry's export surfaces over HTTP.

    Args:
        registry: any registry; windowed ones also populate ``/windows``.
        port: TCP port (0 = ephemeral, read :attr:`port` after start).
        host: bind address (loopback by default — this is a diagnostics
            port, not a public service).
        health: optional :class:`~repro.obs.health.HealthMonitor` whose
            status feeds ``/health``.
        slo: optional :class:`~repro.obs.slo.SloEngine` whose verdict
            feeds ``/health`` and decides the 200-vs-503 status code.
        prefix: Prometheus metric-name prefix for ``/metrics``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        health: HealthMonitor | None = None,
        slo: SloEngine | None = None,
        prefix: str = "repro",
    ) -> None:
        self.registry = registry
        self.health = health
        self.slo = slo
        self.prefix = prefix
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    # -- request handling ----------------------------------------------------

    def health_payload(self) -> tuple[bool, dict]:
        """``(ok, body)`` for the ``/health`` endpoint (also used by the
        CLI's one-shot ``--check`` so both agree on the verdict)."""
        ok = True
        body: dict = {}
        if self.slo is not None:
            verdict = self.slo.verdict()
            ok = ok and verdict["ok"]
            body["slo"] = verdict
        if self.health is not None:
            status = self.health.status()
            ok = ok and status["ok"]
            body["health"] = status
        body["ok"] = ok
        return ok, body

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    text = server.registry.to_prometheus(
                        prefix=server.prefix
                    )
                    self._reply(
                        200, text, "text/plain; version=0.0.4; charset=utf-8"
                    )
                elif path == "/health":
                    ok, body = server.health_payload()
                    self._reply(
                        200 if ok else 503,
                        json.dumps(body, indent=2),
                        "application/json",
                    )
                elif path == "/windows":
                    windows = getattr(
                        server.registry, "to_windows_dict", None
                    )
                    body = windows() if windows is not None else {
                        "mode": "disabled",
                        "windows": [],
                    }
                    self._reply(
                        200, json.dumps(body, indent=2), "application/json"
                    )
                else:
                    self._reply(
                        404,
                        json.dumps(
                            {
                                "error": "not found",
                                "endpoints": [
                                    "/metrics",
                                    "/health",
                                    "/windows",
                                ],
                            }
                        ),
                        "application/json",
                    )

            def _reply(
                self, status: int, body: str, content_type: str
            ) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, format: str, *args) -> None:
                pass  # scrapes are not run output

        return Handler

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound TCP port (resolves ``port=0``)."""
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._thread is not None:
            # shutdown() blocks until serve_forever acknowledges, so it
            # must only run when the serving thread actually exists.
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
