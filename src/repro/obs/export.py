"""Exporters for registry snapshots: JSON file, JSON-lines sink, Prometheus.

All exporters consume the plain-dict snapshot shape produced by
``MetricsRegistry.to_dict()`` rather than the registry itself, so snapshots
can be exported long after the run (e.g. from a ``SimResult.metrics``
field or a benchmark record).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Union

__all__ = ["render_prometheus", "write_json", "JsonlSink"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(prefix: str, name: str) -> str:
    """Sanitise a dotted metric name into a Prometheus identifier."""
    return f"{prefix}_{_NAME_RE.sub('_', name)}"


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Counters and gauges map directly; histograms emit the standard
    cumulative ``_bucket{le=...}`` / ``_sum`` / ``_count`` series; span
    aggregates are exposed as ``<prefix>_span_seconds_{count,sum,max}``
    keyed by a ``span`` label.
    """
    lines: list[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in hist["buckets"]:
            cumulative += count
            le = "+Inf" if bound == "+Inf" else repr(float(bound))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {hist['total']}")
        lines.append(f"{metric}_count {hist['count']}")

    spans = snapshot.get("spans", {})
    if spans:
        base = f"{prefix}_span_seconds"
        lines.append(f"# TYPE {base} summary")
        for name, agg in sorted(spans.items()):
            label = f'{{span="{name}"}}'
            lines.append(f"{base}_count{label} {agg['count']}")
            lines.append(f"{base}_sum{label} {agg['total_seconds']}")
            lines.append(f"{base}_max{label} {agg['max_seconds']}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_json(snapshot: dict, path: Union[str, Path]) -> None:
    """Write one snapshot as a pretty-printed JSON document."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")


class JsonlSink:
    """Append-mode JSON-lines sink for periodic snapshots.

    One ``write(snapshot)`` appends one line, so a long run can be sampled
    (say once per window) and replayed later with any JSONL tooling.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, snapshot: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(snapshot, separators=(",", ":")))
            handle.write("\n")
