"""Exporters for registry snapshots: JSON file, JSON-lines sink, Prometheus.

All exporters consume the plain-dict snapshot shape produced by
``MetricsRegistry.to_dict()`` rather than the registry itself, so snapshots
can be exported long after the run (e.g. from a ``SimResult.metrics``
field or a benchmark record).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # annotation only; registry does not import exporters.
    from .registry import MetricsRegistry, NullRegistry

__all__ = ["prom_series_name", "render_prometheus", "write_json", "JsonlSink"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LEADING_DIGIT_RE = re.compile(r"^[0-9]")


def _prom_name(prefix: str, name: str) -> str:
    """Sanitise a dotted metric name into a valid Prometheus identifier.

    Invalid characters collapse to ``_``; a name that would start with a
    digit (possible with an empty prefix) gets a leading underscore, per
    the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric-name grammar.
    """
    flat = _NAME_RE.sub("_", f"{prefix}_{name}" if prefix else name)
    if _LEADING_DIGIT_RE.match(flat):
        flat = "_" + flat
    return flat


def prom_series_name(name: str, kind: str, prefix: str = "repro") -> str:
    """The exposition-format series name for one instrument.

    Counters carry the conventional ``_total`` suffix; gauges expose the
    sanitised name directly; histograms return the metric *family* base
    name (the ``_bucket``/``_sum``/``_count`` series hang off it).  This
    is the single naming authority shared by :func:`render_prometheus`
    and the ``xf-metric-surface`` deep-lint rule, so the documented
    exposition names cannot drift from what the exporter emits.
    """
    base = _prom_name(prefix, name)
    return base + "_total" if kind == "counter" else base


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote, and line feed are the three characters with escape sequences."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Conformance notes (pinned by ``tests/test_obs.py``):

    * counters get the ``_total`` suffix;
    * histogram ``_bucket`` series are *cumulative*, always end with a
      ``le="+Inf"`` bucket equal to ``_count``, and are joined by
      ``_sum``/``_count`` samples; a non-finite explicit bound (legacy
      snapshots) folds into the ``+Inf`` bucket instead of emitting an
      invalid ``le="inf"`` sample;
    * metric names are sanitised to the exposition grammar and label
      values (span names) are backslash-escaped.

    Span aggregates are exposed as a ``<prefix>_span_seconds`` summary
    keyed by a ``span`` label.
    """
    lines: list[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = prom_series_name(name, "counter", prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = prom_series_name(name, "gauge", prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")

    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = prom_series_name(name, "histogram", prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in hist["buckets"]:
            cumulative += count
            if bound == "+Inf" or not math.isfinite(float(bound)):
                # The overflow bucket (and any stray non-finite bound)
                # lands in the single trailing +Inf sample below.
                continue
            le = repr(float(bound))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {hist['total']}")
        lines.append(f"{metric}_count {hist['count']}")

    spans = snapshot.get("spans", {})
    if spans:
        base = f"{prefix}_span_seconds"
        lines.append(f"# TYPE {base} summary")
        for name, agg in sorted(spans.items()):
            label = f'{{span="{_escape_label_value(name)}"}}'
            lines.append(f"{base}_count{label} {agg['count']}")
            lines.append(f"{base}_sum{label} {agg['total_seconds']}")
            lines.append(f"{base}_max{label} {agg['max_seconds']}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_json(snapshot: dict, path: Union[str, Path]) -> None:
    """Write one snapshot as a pretty-printed JSON document."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")


class JsonlSink:
    """Append-mode JSON-lines sink for periodic snapshots.

    One ``write(snapshot)`` appends one line, so a long run can be sampled
    (say once per window) and replayed later with any JSONL tooling.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, snapshot: dict) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(snapshot, separators=(",", ":")))
            handle.write("\n")

    def attach(self, registry: "MetricsRegistry | NullRegistry") -> "JsonlSink":
        """Stream every closed window to the sink, one line per window.

        Subscribes to the registry's ``on_close`` hook, so lines appear
        as windows close — including the tail window closed by ``flush``,
        which fires callbacks exactly once even when shutdown paths race.
        On a non-windowed registry ``on_close`` is a parity no-op, so
        attaching is safe and writes nothing.
        """
        registry.on_close(lambda snapshot: self.write(snapshot.as_dict()))
        return self
