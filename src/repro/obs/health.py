"""Online model-health and drift detection over telemetry windows.

The paper's robustness claim is that LFO keeps working *while traffic
changes*.  Cumulative metrics cannot show the moment it stops working;
this module watches the :class:`~repro.obs.windows.WindowedRegistry`
ring and turns per-window deltas into typed alerts:

* **window BHR** — an EWMA baseline plus a one-sided Page-Hinkley test
  detect a sustained drop in the byte hit ratio (the serving-quality
  signal the whole system optimises);
* **admission-score drift** — the population-stability index between
  consecutive windows of the ``lfo.admission_score`` histogram (the
  model's score distribution over the ``CompiledPredictor`` score
  buckets — sigmoid-mapped raw-score edges).  A score distribution that
  jumps while the model is fixed means the *inputs* moved: classic
  covariate shift, visible before BHR sags;
* **feature drift** — EWMA deviation monitors on the
  ``online.feature_*`` arena-summary gauges published by
  :class:`repro.core.LFOOnline` at every window close (tracked objects,
  mean recency, mean cost from the :class:`repro.features.FeatureTracker`
  arena);
* **training posture** — staleness (``online.windows_since_model``) and
  the resilience halt flag (``resilience.training_halted``), lifted from
  the same gauges ``resilience_stats`` feeds.

Every detector is a pure function of window contents, so a seeded replay
produces the same alerts in the same windows (asserted by
``benchmarks/bench_ext_drift.py``).  Alerts are routed as counters plus
``registry.event()`` markers so the span ring shows *where* in the run a
detector fired, and retained on the monitor for the ``/health`` endpoint
and ``lfo health``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log
from typing import Sequence

from .registry import MetricsRegistry, NullRegistry
from .windows import WindowSnapshot, window_bhr

__all__ = [
    "EwmaDetector",
    "PageHinkley",
    "HealthAlert",
    "HealthConfig",
    "HealthMonitor",
    "population_stability_index",
]

#: Probability floor for PSI bins: empty bins would make the log diverge.
_PSI_EPS = 1e-6

#: Gauge names published by ``LFOOnline`` that describe the *workload*
#: (arena summaries).  The tracked-object count is deliberately absent:
#: it saturates at the cache/tracker capacity and would self-trigger.
FEATURE_GAUGES = ("online.feature_recency_mean", "online.feature_cost_mean")

STALENESS_GAUGE = "online.windows_since_model"
HALTED_GAUGE = "resilience.training_halted"
SCORE_HISTOGRAM = "lfo.admission_score"
MODEL_INSTALLS_COUNTER = "online.model_installs"


def population_stability_index(
    reference: Sequence[float], live: Sequence[float]
) -> float:
    """PSI between two aligned bucket-count vectors.

    ``sum((p - q) * ln(p / q))`` over the shared buckets, with counts
    normalised to probabilities and floored at ``1e-6``.  By convention
    PSI < 0.1 is stable, 0.1–0.25 moderate shift, > 0.25 major shift.
    """
    if len(reference) != len(live):
        raise ValueError("bucket vectors must be aligned")
    ref_total = float(sum(reference))
    live_total = float(sum(live))
    if ref_total <= 0.0 or live_total <= 0.0:
        return 0.0
    psi = 0.0
    for r, l in zip(reference, live):
        p = max(l / live_total, _PSI_EPS)
        q = max(r / ref_total, _PSI_EPS)
        psi += (p - q) * log(p / q)
    return psi


class EwmaDetector:
    """Exponentially weighted baseline with relative-deviation alerts.

    ``update(x)`` returns the relative deviation of ``x`` from the
    baseline *before* folding ``x`` in, so a step change scores against
    the pre-shift history.  The first ``warmup`` updates only build the
    baseline (deviation 0.0).
    """

    def __init__(self, alpha: float = 0.3, warmup: int = 3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.warmup = warmup
        self.mean: float | None = None
        self.n = 0

    def update(self, value: float) -> float:
        previous = self.mean
        self.n += 1
        if previous is None:
            self.mean = value
            return 0.0
        self.mean = previous + self.alpha * (value - previous)
        if self.n <= self.warmup:
            return 0.0
        scale = max(abs(previous), _PSI_EPS)
        return abs(value - previous) / scale


class PageHinkley:
    """One-sided Page-Hinkley test for a sustained *drop* in the mean.

    Accumulates ``mean_so_far - x_t - delta`` (clamped at zero), where
    ``delta`` absorbs benign noise; an alert fires when the accumulator
    exceeds ``lamb`` — i.e. the series has run below its historical mean
    by more than ``delta`` for long enough to integrate to ``lamb``.
    The accumulator and running mean reset after an alert so a single
    regime change raises one alert, not one per window.
    """

    def __init__(
        self, delta: float = 0.005, lamb: float = 0.1, warmup: int = 3
    ) -> None:
        if lamb <= 0.0:
            raise ValueError("lamb must be positive")
        self.delta = delta
        self.lamb = lamb
        self.warmup = warmup
        self.cumulative = 0.0
        self._sum = 0.0
        self.n = 0

    def update(self, value: float) -> bool:
        self.n += 1
        self._sum += value
        mean = self._sum / self.n
        if self.n <= self.warmup:
            return False
        self.cumulative = max(
            0.0, self.cumulative + (mean - value - self.delta)
        )
        if self.cumulative > self.lamb:
            self.reset()
            return True
        return False

    def reset(self) -> None:
        self.cumulative = 0.0
        self._sum = 0.0
        self.n = 0


@dataclass(frozen=True)
class HealthConfig:
    """Detector thresholds (all pure window functions — see module doc).

    Attributes:
        bhr_ph_delta: Page-Hinkley per-window noise tolerance on BHR.
        bhr_ph_lambda: cumulative BHR shortfall that raises an alert.
        bhr_warmup: windows used to build the BHR baseline before any
            alert may fire.
        score_psi_threshold: consecutive-window PSI on the admission
            score distribution above which score drift is alerted
            (0.25 = conventional "major shift").
        score_min_count: minimum scored requests per window for the PSI
            to be meaningful; thinner windows are skipped.
        feature_ewma_alpha / feature_deviation / feature_warmup: EWMA
            smoothing, relative-deviation threshold, and warmup for the
            arena-summary gauges.
        staleness_windows: alert once ``online.windows_since_model``
            reaches this (0 disables; latched — re-arms on recovery).
    """

    bhr_ph_delta: float = 0.01
    bhr_ph_lambda: float = 0.10
    bhr_warmup: int = 3
    score_psi_threshold: float = 0.25
    score_min_count: int = 200
    feature_ewma_alpha: float = 0.3
    feature_deviation: float = 2.0
    feature_warmup: int = 3
    staleness_windows: int = 0


@dataclass(frozen=True)
class HealthAlert:
    """One detector firing on one window."""

    kind: str
    window_index: int
    value: float
    threshold: float
    message: str

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "window_index": self.window_index,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


@dataclass
class _MonitorState:
    """Mutable detector state, split out so HealthMonitor reads clean."""

    bhr_ph: PageHinkley = field(default_factory=PageHinkley)
    bhr_ewma: EwmaDetector = field(default_factory=EwmaDetector)
    feature_ewma: dict[str, EwmaDetector] = field(default_factory=dict)
    prev_score_counts: list[float] | None = None
    score_burn_in: int = 0
    last_psi: float = 0.0
    stale_latched: bool = False
    halt_latched: bool = False


class HealthMonitor:
    """Feeds telemetry windows through the drift/health detectors.

    Attach to a windowed registry and every closed window is scored::

        registry = WindowedRegistry(every_requests=2_000)
        monitor = HealthMonitor().attach(registry)
        with use_registry(registry):
            simulate(trace, policy)
        registry.flush()          # close the partial tail window
        print(monitor.alerts)

    Attaching to a :class:`~repro.obs.NullRegistry` is a silent no-op
    (its ``on_close`` drops the subscription), so callers need no
    enabled-check.
    """

    def __init__(self, config: HealthConfig | None = None) -> None:
        self.config = config or HealthConfig()
        self.alerts: list[HealthAlert] = []
        self.windows_observed = 0
        self._registry = None
        cfg = self.config
        self._state = _MonitorState(
            bhr_ph=PageHinkley(
                delta=cfg.bhr_ph_delta,
                lamb=cfg.bhr_ph_lambda,
                warmup=cfg.bhr_warmup,
            ),
            bhr_ewma=EwmaDetector(warmup=cfg.bhr_warmup),
            feature_ewma={
                name: EwmaDetector(
                    alpha=cfg.feature_ewma_alpha, warmup=cfg.feature_warmup
                )
                for name in FEATURE_GAUGES
            },
        )

    def attach(
        self, registry: MetricsRegistry | NullRegistry
    ) -> "HealthMonitor":
        """Subscribe to a windowed registry's window-close stream."""
        self._registry = registry
        registry.on_close(self.observe_window)
        return self

    # -- detection -----------------------------------------------------------

    def observe_window(self, snapshot: WindowSnapshot) -> list[HealthAlert]:
        """Score one closed window; returns (and retains) new alerts."""
        self.windows_observed += 1
        new: list[HealthAlert] = []
        self._check_bhr(snapshot, new)
        self._check_score_distribution(snapshot, new)
        self._check_feature_summaries(snapshot, new)
        self._check_training_posture(snapshot, new)
        if new:
            self.alerts.extend(new)
            self._emit(new)
        return new

    def _check_bhr(self, snapshot: WindowSnapshot, out: list) -> None:
        bhr = window_bhr(snapshot)
        if bhr is None:
            return
        baseline = self._state.bhr_ewma.mean
        self._state.bhr_ewma.update(bhr)
        if self._state.bhr_ph.update(bhr):
            out.append(
                HealthAlert(
                    kind="bhr_drift",
                    window_index=snapshot.index,
                    value=bhr,
                    threshold=self.config.bhr_ph_lambda,
                    message=(
                        f"window BHR {bhr:.4f} ran below its EWMA baseline "
                        f"{(baseline if baseline is not None else bhr):.4f} "
                        "past the Page-Hinkley budget"
                    ),
                )
            )

    def _check_score_distribution(
        self, snapshot: WindowSnapshot, out: list
    ) -> None:
        hist = snapshot.histograms.get(SCORE_HISTOGRAM)
        if hist is None or hist["count"] < self.config.score_min_count:
            return
        if snapshot.delta(MODEL_INSTALLS_COUNTER) > 0:
            # A fresh model landed somewhere in this window, so its score
            # distribution is a mix of two models and legitimately breaks.
            # Drop the baseline AND burn one more window: the first full
            # window under a new model is still transient (the feature
            # state the model scores against was accumulated for its
            # predecessor), so PSI only ever compares windows scored by
            # one settled model.
            self._state.prev_score_counts = None
            self._state.score_burn_in = 1
            return
        if self._state.score_burn_in > 0:
            self._state.score_burn_in -= 1
            return
        counts = hist["counts"]
        previous = self._state.prev_score_counts
        self._state.prev_score_counts = list(counts)
        if previous is None:
            return
        psi = population_stability_index(previous, counts)
        self._state.last_psi = psi
        if psi > self.config.score_psi_threshold:
            out.append(
                HealthAlert(
                    kind="score_drift",
                    window_index=snapshot.index,
                    value=psi,
                    threshold=self.config.score_psi_threshold,
                    message=(
                        f"admission-score PSI {psi:.3f} vs previous window "
                        "— input distribution shifted under a fixed model"
                    ),
                )
            )

    def _check_feature_summaries(
        self, snapshot: WindowSnapshot, out: list
    ) -> None:
        for name, detector in self._state.feature_ewma.items():
            value = snapshot.gauges.get(name)
            if value is None:
                continue
            deviation = detector.update(value)
            if deviation > self.config.feature_deviation:
                out.append(
                    HealthAlert(
                        kind="feature_drift",
                        window_index=snapshot.index,
                        value=deviation,
                        threshold=self.config.feature_deviation,
                        message=(
                            f"arena summary {name} moved {deviation:.2f}x "
                            "from its EWMA baseline"
                        ),
                    )
                )

    def _check_training_posture(
        self, snapshot: WindowSnapshot, out: list
    ) -> None:
        limit = self.config.staleness_windows
        stale = snapshot.gauges.get(STALENESS_GAUGE, 0.0)
        if limit > 0:
            if stale >= limit and not self._state.stale_latched:
                self._state.stale_latched = True
                out.append(
                    HealthAlert(
                        kind="staleness",
                        window_index=snapshot.index,
                        value=stale,
                        threshold=float(limit),
                        message=(
                            f"{stale:.0f} training windows since the last "
                            "model install"
                        ),
                    )
                )
            elif stale < limit:
                self._state.stale_latched = False
        halted = snapshot.gauges.get(HALTED_GAUGE, 0.0)
        if halted >= 1.0 and not self._state.halt_latched:
            self._state.halt_latched = True
            out.append(
                HealthAlert(
                    kind="training_halted",
                    window_index=snapshot.index,
                    value=halted,
                    threshold=1.0,
                    message=(
                        "retraining halted after repeated failures; "
                        "serving continues without fresh models"
                    ),
                )
            )
        elif halted < 1.0:
            self._state.halt_latched = False

    # -- alert routing -------------------------------------------------------

    def _emit(self, alerts: list[HealthAlert]) -> None:
        registry = self._registry
        if registry is None or not registry.enabled:
            return
        registry.counter("health.alerts").inc(len(alerts))
        for alert in alerts:
            if alert.kind == "bhr_drift":
                registry.counter("health.bhr_alerts").inc()
                registry.event("health.bhr_drift")
            elif alert.kind == "score_drift":
                registry.counter("health.score_alerts").inc()
                registry.event("health.score_drift")
            elif alert.kind == "feature_drift":
                registry.counter("health.feature_alerts").inc()
                registry.event("health.feature_drift")
            elif alert.kind == "staleness":
                registry.counter("health.staleness_alerts").inc()
                registry.event("health.staleness")
            else:
                registry.counter("health.training_halt_alerts").inc()
                registry.event("health.training_halt")

    # -- reporting -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True while no alert has fired."""
        return not self.alerts

    def status(self) -> dict:
        """JSON-safe posture summary (the ``/health`` endpoint's block)."""
        kinds: dict[str, int] = {}
        for alert in self.alerts:
            kinds[alert.kind] = kinds.get(alert.kind, 0) + 1
        return {
            "ok": self.ok,
            "windows_observed": self.windows_observed,
            "alerts": len(self.alerts),
            "alerts_by_kind": kinds,
            "bhr_baseline": self._state.bhr_ewma.mean,
            "last_score_psi": self._state.last_psi,
            "recent_alerts": [a.as_dict() for a in self.alerts[-10:]],
        }
