"""Extension experiment: training/serving interference (Fig. 7 remark).

The paper: "a production implementation would need to carefully optimize
priorities such that training tasks do not interfere with the request
traffic."  Two measurements:

1. The queueing model of :mod:`repro.sim.server`: periodic training jobs
   either share the FIFO queue with requests or run strictly backgrounded,
   across a load sweep.  Expected shape: under FIFO, request p99 latency
   explodes once a training job can starve the workers; under strict
   priorities the p99 stays at the no-training baseline while training
   completion is only modestly delayed.

2. The *real* pipeline: wall-clock per-request latency of ``LFOOnline``
   with inline window retraining (label solve + GBDT fit on the request
   path — the seed behaviour) versus ``background=True`` (snapshot +
   submit only).  Expected shape: inline stalls every window boundary by
   the full training time; in background mode the boundary request costs
   about the same as any other request.
"""

from __future__ import annotations

import time

import numpy as np
from common import cache_for, cdn_mix_trace, report, table

from repro.core import LFOOnline, OptLabelConfig
from repro.gbdt import GBDTParams
from repro.sim import ServerConfig, simulate_server

LOADS = [0.4, 0.6, 0.8]
CAPACITY = 2_000.0  # 2 workers x 1 ms predictions

STALL_WINDOW = 3_000
STALL_REQUESTS = 9_000


def run_sweep():
    rows = []
    stats = {}
    for load in LOADS:
        common = dict(
            arrival_rate=load * CAPACITY,
            n_workers=2,
            prediction_time=1e-3,
            training_time=1.0,
            window=5_000,
            n_requests=30_000,
        )
        baseline = simulate_server(
            ServerConfig(discipline="fifo", window=0, **{
                k: v for k, v in common.items() if k != "window"
            })
        )
        fifo = simulate_server(ServerConfig(discipline="fifo", **common))
        prio = simulate_server(ServerConfig(discipline="priority", **common))
        rows.append([
            f"{load:.0%}",
            baseline.p99_latency * 1e3,
            fifo.p99_latency * 1e3,
            prio.p99_latency * 1e3,
            prio.max_training_delay,
        ])
        stats[load] = (baseline, fifo, prio)
    return rows, stats


def test_training_interference(benchmark):
    rows, stats = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "ext_training_interference",
        table(
            [
                "load", "p99 ms (no train)", "p99 ms (fifo)",
                "p99 ms (priority)", "train delay s",
            ],
            rows,
        ),
    )
    for load, (baseline, fifo, prio) in stats.items():
        # Priorities keep the request tail at the no-training baseline.
        assert prio.p99_latency <= baseline.p99_latency * 1.05 + 1e-4
        # Training still completes in bounded time.
        assert prio.max_training_delay < 120.0
    # At high load, FIFO-shared training visibly hurts the tail.
    _, fifo_hi, prio_hi = stats[0.8]
    assert fifo_hi.p99_latency > 5 * prio_hi.p99_latency


def run_request_path_stall():
    trace = cdn_mix_trace(n_requests=STALL_REQUESTS, seed=11)
    cache = cache_for(trace, 10)
    stats = {}
    for mode in ("inline", "background"):
        policy = LFOOnline(
            cache,
            window=STALL_WINDOW,
            gbdt_params=GBDTParams(num_iterations=15),
            n_gaps=10,
            label_config=OptLabelConfig(mode="segmented", segment_length=750),
            background=(mode == "background"),
        )
        latencies = np.empty(len(trace))
        for i, request in enumerate(trace):
            t0 = time.perf_counter()
            policy.on_request(request)
            latencies[i] = time.perf_counter() - t0
        policy.finish_training()
        policy.close()
        boundary = latencies[
            np.arange(len(trace)) % STALL_WINDOW == STALL_WINDOW - 1
        ]
        stats[mode] = (latencies, boundary, dict(policy.training_stats))
    return stats


def test_request_path_stall(benchmark):
    """Background retraining removes the window-boundary stall from the
    real (not modelled) request path."""
    stats = benchmark.pedantic(run_request_path_stall, rounds=1, iterations=1)
    rows = []
    for mode, (lat, boundary, train) in stats.items():
        rows.append([
            mode,
            float(np.median(lat) * 1e6),
            float(np.percentile(lat, 99) * 1e6),
            float(boundary.max() * 1e3),
            train["n_retrains"],
            train["n_skipped_retrains"],
            train["last_training_seconds"],
        ])
    report(
        "ext_training_interference_stall",
        table(
            [
                "mode", "median us", "p99 us", "boundary max ms",
                "retrains", "skipped", "last train s",
            ],
            rows,
        ),
    )
    inline_lat, inline_boundary, _ = stats["inline"]
    bg_lat, bg_boundary, bg_train = stats["background"]
    # Inline retraining stalls the boundary request by orders of magnitude.
    assert inline_boundary.max() > 20 * np.median(inline_lat)
    # Backgrounded, the boundary request is an ordinary request: within
    # ~2x the median (plus scheduler-noise slack on loaded machines).
    assert bg_boundary.max() <= max(2 * np.median(bg_lat), 0.05)
    # And vastly below the inline stall.
    assert bg_boundary.max() < inline_boundary.max() / 10
    # Training really happened off-path (or was skipped, never inlined).
    assert bg_train["n_retrains"] + bg_train["n_skipped_retrains"] >= 2
