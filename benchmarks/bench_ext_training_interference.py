"""Extension experiment: training/serving interference (Fig. 7 remark).

The paper: "a production implementation would need to carefully optimize
priorities such that training tasks do not interfere with the request
traffic."  We quantify that with the queueing model of
:mod:`repro.sim.server`: periodic training jobs either share the FIFO queue
with requests or run strictly backgrounded, across a load sweep.

Expected shape: under FIFO, request p99 latency explodes once a training
job can starve the workers; under strict priorities the p99 stays at the
no-training baseline while training completion is only modestly delayed.
"""

from __future__ import annotations

from common import report, table

from repro.sim import ServerConfig, simulate_server

LOADS = [0.4, 0.6, 0.8]
CAPACITY = 2_000.0  # 2 workers x 1 ms predictions


def run_sweep():
    rows = []
    stats = {}
    for load in LOADS:
        common = dict(
            arrival_rate=load * CAPACITY,
            n_workers=2,
            prediction_time=1e-3,
            training_time=1.0,
            window=5_000,
            n_requests=30_000,
        )
        baseline = simulate_server(
            ServerConfig(discipline="fifo", window=0, **{
                k: v for k, v in common.items() if k != "window"
            })
        )
        fifo = simulate_server(ServerConfig(discipline="fifo", **common))
        prio = simulate_server(ServerConfig(discipline="priority", **common))
        rows.append([
            f"{load:.0%}",
            baseline.p99_latency * 1e3,
            fifo.p99_latency * 1e3,
            prio.p99_latency * 1e3,
            prio.max_training_delay,
        ])
        stats[load] = (baseline, fifo, prio)
    return rows, stats


def test_training_interference(benchmark):
    rows, stats = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "ext_training_interference",
        table(
            [
                "load", "p99 ms (no train)", "p99 ms (fifo)",
                "p99 ms (priority)", "train delay s",
            ],
            rows,
        ),
    )
    for load, (baseline, fifo, prio) in stats.items():
        # Priorities keep the request tail at the no-training baseline.
        assert prio.p99_latency <= baseline.p99_latency * 1.05 + 1e-4
        # Training still completes in bounded time.
        assert prio.max_training_delay < 120.0
    # At high load, FIFO-shared training visibly hurts the tail.
    _, fifo_hi, prio_hi = stats[0.8]
    assert fifo_hi.p99_latency > 5 * prio_hi.p99_latency
