"""Extension experiment: BHR under injected faults (the fault matrix).

The paper's "robust" claim is usually read as robustness to *workload*
(traffic mix, drift).  A production CDN cache also has to be robust to
*itself*: trainers crash, training jobs hang, segment solves die with
their worker process, and trace feeds deliver garbage lines.  This
benchmark drives the full LFO-online loop through one deterministic fault
scenario per failure mode — using :mod:`repro.resilience` fault plans and
the :class:`SimulatedTrainerExecutor` so every run replays identically —
and records the byte hit ratio under each fault next to the fault-free
baseline.

The headline gate: **every scenario finishes, and no single injected
fault moves BHR by more than 5 points** — the degradation machinery
(watchdog, backoff, retry-then-serial segment fallback, tolerant trace
reading) turns each fault into a counted, bounded event instead of an
outage.  The per-scenario ``resilience.*`` counters are asserted nonzero,
so the run also proves each degradation path actually engaged.

Results land in ``results/ext_fault_matrix.txt`` (table) and
``results/ext_fault_matrix.json`` (full counters; the CI artifact).
``FAULT_BENCH_REQUESTS`` scales the trace for smoke runs.
"""

from __future__ import annotations

import os

from common import RESULTS_DIR, cache_for, cdn_mix_trace, report, table

from repro.core import LFOOnline, OptLabelConfig
from repro.gbdt import GBDTParams
from repro.obs import MetricsRegistry, use_registry, write_json
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    SimulatedTrainerExecutor,
    use_fault_plan,
)
from repro.sim import simulate
from repro.trace import read_text_trace, write_text_trace

N_REQUESTS = int(os.environ.get("FAULT_BENCH_REQUESTS", "12000"))
WINDOW = 2_000
SEGMENT = 500
BHR_TOLERANCE = 0.05  # max |BHR - baseline| under any single fault

FAST_PARAMS = GBDTParams(num_iterations=10)


def _make_lfo(cache_size: int, *, n_jobs: int = 1, **kwargs) -> LFOOnline:
    """The scenario-standard online loop: background mode on the inline
    deterministic executor, with backoff and the staleness guard armed."""
    defaults = dict(
        window=WINDOW,
        gbdt_params=FAST_PARAMS,
        n_gaps=10,
        label_config=OptLabelConfig(
            mode="segmented", segment_length=SEGMENT, n_jobs=n_jobs
        ),
        background=True,
        executor=SimulatedTrainerExecutor(),
        staleness_limit=2,
        retry_backoff=1,
    )
    defaults.update(kwargs)
    return LFOOnline(cache_size, **defaults)


def _run(trace, lfo, plan):
    """Simulate one scenario under its plan; returns (result, counters)."""
    registry = MetricsRegistry()
    with use_registry(registry), use_fault_plan(plan):
        result = simulate(trace, lfo)
        lfo.finish_training(timeout=0)  # never blocks on a hung future
    lfo._executor.shutdown(cancel_futures=True)
    counters = registry.to_dict()["counters"]
    return result, counters


def _corrupted_trace(trace, plan, tmp_dir):
    """Round-trip the trace through text with corrupt-line injection on."""
    path = os.path.join(tmp_dir, "fault_matrix_trace.txt")
    write_text_trace(trace, path)
    registry = MetricsRegistry()
    with use_registry(registry), use_fault_plan(plan):
        reread = read_text_trace(path, tolerant=True)
    skipped = registry.to_dict()["counters"].get(
        "resilience.trace_lines_skipped", 0
    )
    return reread, skipped


def run_fault_matrix(tmp_dir: str):
    trace = cdn_mix_trace(N_REQUESTS)
    cache = cache_for(trace)
    scenarios: dict[str, dict] = {}

    # -- baseline: no faults -------------------------------------------------
    result, counters = _run(trace, _make_lfo(cache), None)
    baseline_bhr = result.bhr
    scenarios["baseline"] = {
        "result": result, "counters": counters, "engaged": True,
    }

    # -- trainer crash: second training attempt raises -----------------------
    plan = FaultPlan([
        FaultSpec(site="online.train_window", kind="crash", at=(1,))
    ])
    result, counters = _run(trace, _make_lfo(cache), plan)
    scenarios["trainer_crash"] = {
        "result": result, "counters": counters,
        "engaged": counters.get("online.failed_retrains", 0) >= 1
        and counters.get("resilience.backoff_skips", 0) >= 1,
    }

    # -- trainer hang: second submission never resolves; watchdog cancels ----
    plan = FaultPlan([
        FaultSpec(site="trainer.submit", kind="hang", at=(1,))
    ])
    result, counters = _run(
        trace, _make_lfo(cache, train_deadline=800), plan
    )
    scenarios["trainer_hang"] = {
        "result": result, "counters": counters,
        "engaged": counters.get("resilience.watchdog_cancels", 0) >= 1,
    }

    # -- flaky segment solves: one retried in-pool, one forced serial --------
    plan = FaultPlan([
        FaultSpec(site="opt.segment_solve", kind="crash", at=(0,), attempts=1),
        FaultSpec(site="opt.segment_solve", kind="crash", at=(2,), attempts=9),
    ])
    result, counters = _run(trace, _make_lfo(cache, n_jobs=2), plan)
    scenarios["segment_flaky"] = {
        "result": result, "counters": counters,
        "engaged": counters.get("resilience.segment_retries", 0) >= 1
        and counters.get("resilience.segment_serial_fallbacks", 0) >= 1,
    }

    # -- corrupt trace feed: tolerant reader skips mangled lines -------------
    plan = FaultPlan([
        FaultSpec(site="trace.read_line", kind="corrupt", every=397)
    ])
    dirty_trace, skipped = _corrupted_trace(trace, plan, tmp_dir)
    result, counters = _run(dirty_trace, _make_lfo(cache), None)
    counters["resilience.trace_lines_skipped"] = skipped
    scenarios["corrupt_trace"] = {
        "result": result, "counters": counters, "engaged": skipped >= 1,
    }

    # -- slow solves: injected latency on every training job -----------------
    plan = FaultPlan([
        FaultSpec(
            site="online.train_window", kind="latency",
            every=1, latency_seconds=0.02,
        )
    ])
    result, counters = _run(trace, _make_lfo(cache), plan)
    scenarios["solve_latency"] = {
        "result": result, "counters": counters,
        "engaged": result.training["n_retrains"] >= 1,
    }

    return baseline_bhr, scenarios


def test_fault_matrix(benchmark, tmp_path):
    baseline_bhr, scenarios = benchmark.pedantic(
        run_fault_matrix, args=(str(tmp_path),), rounds=1, iterations=1
    )

    rows = []
    document = {"n_requests": N_REQUESTS, "baseline_bhr": baseline_bhr,
                "scenarios": {}}
    for name, data in scenarios.items():
        result = data["result"]
        resilience_counters = {
            k: v for k, v in data["counters"].items()
            if k.startswith("resilience.") or k == "online.failed_retrains"
        }
        rows.append([
            name,
            result.n_requests,
            result.bhr,
            result.bhr - baseline_bhr,
            result.training["n_retrains"],
            "yes" if data["engaged"] else "NO",
        ])
        document["scenarios"][name] = {
            "bhr": result.bhr,
            "ohr": result.ohr,
            "delta_vs_baseline": result.bhr - baseline_bhr,
            "training": result.training,
            "resilience": result.resilience,
            "counters": resilience_counters,
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(document, RESULTS_DIR / "ext_fault_matrix.json")
    report(
        "ext_fault_matrix",
        table(
            ["scenario", "requests", "bhr", "delta", "retrains", "engaged"],
            rows,
        )
        + f"\n(gate: |delta| <= {BHR_TOLERANCE:.2f} under every single "
        "fault; 'engaged' = the scenario's degradation path fired)",
    )

    for name, data in scenarios.items():
        result = data["result"]
        assert result.n_requests > 0, name  # the loop finished the trace
        assert data["engaged"], (name, data["counters"])
        assert abs(result.bhr - baseline_bhr) <= BHR_TOLERANCE, (
            name, result.bhr, baseline_bhr
        )
