"""Extension experiment: parallel OPT labeling at the window boundary.

The Figure-2 loop pays one segmented OPT solve per closed window.  The
segments are independent min-cost-flow problems, so
:func:`repro.opt.solve_segmented_parallel` fans them out over a process
pool: labels stay bit-identical to the serial path while the boundary's
wall-clock drops by roughly the worker count on a multi-core machine.

This benchmark (a) proves label identity on the standard 16K-request CDN
mix, and (b) times a 10K-request training window for 1/2/4 workers.  The
speedup assertion is gated on the machine actually having the cores — on a
single-core container the pool only adds pickling overhead, which the
recorded table then documents honestly.
"""

from __future__ import annotations

import os
import time

from common import accuracy_trace, cache_for, report, table

from repro.opt import solve_segmented, solve_segmented_parallel

SEGMENT = 1_000
WINDOW = 10_000
N_JOBS = [2, 4]


def run_parallel_labeling():
    trace = accuracy_trace(16_000)
    cache = cache_for(trace, 12)

    # (a) Identity on the full 16K trace with 4 workers.
    serial_full = solve_segmented(trace, cache, SEGMENT)
    parallel_full = solve_segmented_parallel(trace, cache, SEGMENT, n_jobs=4)
    identical = bool(
        (serial_full.decisions == parallel_full.decisions).all()
        and serial_full.miss_cost == parallel_full.miss_cost
        and serial_full.solved_requests == parallel_full.solved_requests
    )

    # (b) Wall-clock on one 10K training window.
    window = trace[:WINDOW]
    t0 = time.perf_counter()
    solve_segmented(window, cache, SEGMENT)
    serial_time = time.perf_counter() - t0
    timings = {1: serial_time}
    for n_jobs in N_JOBS:
        t0 = time.perf_counter()
        solve_segmented_parallel(window, cache, SEGMENT, n_jobs=n_jobs)
        timings[n_jobs] = time.perf_counter() - t0
    return identical, timings


def test_parallel_labeling(benchmark):
    identical, timings = benchmark.pedantic(
        run_parallel_labeling, rounds=1, iterations=1
    )
    serial_time = timings[1]
    rows = [
        [n_jobs, elapsed, serial_time / elapsed]
        for n_jobs, elapsed in sorted(timings.items())
    ]
    report(
        "ext_parallel_labeling",
        f"labels identical to serial: {identical} "
        f"(16K CDN mix, segment {SEGMENT})\n"
        f"cores available: {os.cpu_count()}\n"
        + table(["n_jobs", "time_s", "speedup"], rows)
        + f"\n({WINDOW}-request window, segment {SEGMENT}, "
        "lookahead 500)",
    )
    # Correctness is unconditional: the fan-out must not move a single label.
    assert identical
    # The speedup claim needs the hardware to exist; with >= 4 cores the
    # 4-worker solve must at least halve the boundary wall-clock.
    if (os.cpu_count() or 1) >= 4:
        assert timings[4] < 0.5 * serial_time, timings
