"""Extension benchmark: sampled-candidate eviction cost and BHR ablation.

The eviction engine's claim is *minimal overhead*: picking a victim must
cost O(K) model evaluations regardless of how many objects are resident,
or eviction dominates the request path exactly where the paper's latency
budget is tightest (a 256GB CDN cache holds millions of objects).  Two
experiments back the claim:

* **cost**: time one sampled eviction plan at ``EVICT_BENCH_RESIDENTS``
  residents (default 10^6) and at 1% of that.  Machine-invariant gates:
  the large/small cost ratio stays under ``SCALING_CEILING`` (the plan
  does not scale with the resident set), and the speedup over a full
  resident rescore retains at least ``SPEEDUP_RETENTION`` of the
  committed baseline (``results/ext_evict.json``), measured at the same
  resident count.  The baseline JSON is rewritten on every run so a real
  improvement only needs to be committed to become the new floor.
* **ablation**: LFO-Online with sampled eviction (K in 16 and 64) must
  not trail full likelihood eviction by more than ``BHR_TOLERANCE``
  byte hit ratio on the Figure-6 workloads — sampling may change
  *which* of the near-worst objects goes first, but not cost hit ratio.
  (In practice it lands *above* full eviction: candidates are scored
  fresh at eviction time, while the pure heap rank is lazily stale.)
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np
from common import (
    RESULTS_DIR,
    cache_for,
    cdn_mix_trace,
    report,
    table,
    zipf_locality_trace,
)

from repro.core import (
    LFOCache,
    LFOModel,
    LFOOnline,
    OptLabelConfig,
    SampledEvictionConfig,
)
from repro.features import Dataset, feature_names
from repro.gbdt import GBDTParams
from repro.obs import write_json
from repro.sim import simulate
from repro.trace import Request

#: Smoke knobs for CI: resident-set scale, ablation trace length, repeats.
RESIDENTS = int(os.environ.get("EVICT_BENCH_RESIDENTS", "1000000"))
ABLATION_REQUESTS = int(os.environ.get("EVICT_BENCH_REQUESTS", "12000"))
ROUNDS = int(os.environ.get("EVICT_BENCH_ROUNDS", "3"))

SPEEDUP_RETENTION = 0.85
#: Plan cost may wobble with cache effects but must not scale with the
#: resident set: 100x the residents may cost at most this factor more.
SCALING_CEILING = 2.5
BHR_TOLERANCE = 0.01  # one BHR point
K_VALUES = (16, 64)
PLAN_K = 64
N_GAPS = 4  # small feature vector keeps the 10^6-resident setup light

BASELINE_PATH = RESULTS_DIR / "ext_evict.json"


def _toy_model() -> LFOModel:
    """A quickly trained size-rule model (admit-all cutoff)."""
    rng = np.random.default_rng(0)
    n = 2000
    names = feature_names(N_GAPS)
    X = np.zeros((n, len(names)))
    X[:, 0] = rng.integers(1, 100, size=n)
    X[:, 1] = X[:, 0]
    X[:, 2] = rng.integers(0, 1000, size=n)
    X[:, 3:] = rng.exponential(10, size=(n, N_GAPS))
    y = (X[:, 0] < 50).astype(float)
    return LFOModel.train(
        Dataset(X, y, names),
        params=GBDTParams(num_iterations=10),
        cutoff=0.0,
    )


def _populated_cache(model: LFOModel, n_residents: int) -> LFOCache:
    """An LFO cache holding ``n_residents`` objects, heap-ranked.

    Residents are installed directly (the tracker sees them as unknown
    objects and extracts missing-gap rows, which is exactly the cold end
    of the production distribution) — driving 10^6 admissions through the
    full request path would time the admission path, not eviction.
    """
    policy = LFOCache(
        cache_size=n_residents * 16,
        model=model,
        n_gaps=N_GAPS,
        eviction="sampled",
        sampled=SampledEvictionConfig(k=PLAN_K, seed=0),
    )
    for obj in range(n_residents):
        policy._insert(Request(float(obj), obj, 10))
        policy._rank(obj, 0.5)
    policy._now = float(n_residents)
    return policy


def _best_ns_per_call(fn, calls: int) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, perf_counter() - started)
    return best * 1e9 / calls


def run_eviction_cost():
    model = _toy_model()
    small_residents = max(1000, RESIDENTS // 100)

    large = _populated_cache(model, RESIDENTS)
    small = _populated_cache(model, small_residents)

    plan = large._sampled_plan()
    assert len(plan) <= PLAN_K + 1  # the K+1 candidate ceiling

    timings = {
        "sampled_plan_large_ns": _best_ns_per_call(
            large._sampled_plan, calls=50
        ),
        "sampled_plan_small_ns": _best_ns_per_call(
            small._sampled_plan, calls=50
        ),
        "full_rescore_small_ns": _best_ns_per_call(
            small._rescore_all, calls=2
        ),
    }
    timings["scaling_ratio_100x"] = (
        timings["sampled_plan_large_ns"] / timings["sampled_plan_small_ns"]
    )
    timings["sampled_vs_full_speedup"] = (
        timings["full_rescore_small_ns"] / timings["sampled_plan_small_ns"]
    )
    return timings


def test_eviction_cost(benchmark):
    timings = benchmark.pedantic(run_eviction_cost, rounds=1, iterations=1)

    baseline = None
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)

    rows = [[stage, value] for stage, value in timings.items()]
    report(
        "ext_evict",
        table(["stage", "value"], rows)
        + f"\nresidents: {RESIDENTS} (best of {ROUNDS} rounds)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(
        {"residents": RESIDENTS, "rounds": ROUNDS, **timings}, BASELINE_PATH
    )

    # Plan cost must not scale with the resident set (100x the objects).
    assert timings["scaling_ratio_100x"] < SCALING_CEILING, timings
    # Sampling must beat rescoring everything, even at 1% scale.
    assert timings["sampled_vs_full_speedup"] > 1.5, timings
    if baseline is not None and baseline.get("residents") == RESIDENTS:
        floor = SPEEDUP_RETENTION * baseline["sampled_vs_full_speedup"]
        assert timings["sampled_vs_full_speedup"] >= floor, (
            timings["sampled_vs_full_speedup"],
            floor,
        )


def _online(cache_size: int, eviction: str, k: int = 64) -> LFOOnline:
    return LFOOnline(
        cache_size,
        window=4_000,
        label_config=OptLabelConfig(mode="segmented", segment_length=1_000),
        eviction=eviction,
        sampled=SampledEvictionConfig(k=k, seed=0),
    )


def run_ablation():
    results = {}
    for name, trace in (
        ("cdn_mix", cdn_mix_trace(ABLATION_REQUESTS)),
        ("zipf_locality", zipf_locality_trace(ABLATION_REQUESTS)),
    ):
        cache_size = cache_for(trace, 12)
        rows = {
            "full": simulate(
                trace, _online(cache_size, "likelihood"),
                warmup_fraction=1 / 3,
            ).bhr
        }
        for k in K_VALUES:
            rows[f"sampled_k{k}"] = simulate(
                trace, _online(cache_size, "sampled", k=k),
                warmup_fraction=1 / 3,
            ).bhr
        results[name] = rows
    return results


def test_bhr_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for name, bhrs in results.items():
        for variant, bhr in bhrs.items():
            rows.append([name, variant, bhr, bhr - bhrs["full"]])
    report(
        "ext_evict_ablation",
        table(["trace", "eviction", "bhr", "delta_vs_full"], rows)
        + f"\nrequests per trace: {ABLATION_REQUESTS}",
    )

    for name, bhrs in results.items():
        for k in K_VALUES:
            shortfall = bhrs["full"] - bhrs[f"sampled_k{k}"]
            assert shortfall <= BHR_TOLERANCE, (name, k, bhrs)
