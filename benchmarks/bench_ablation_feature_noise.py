"""Section 2.2 claims: lower feature accuracy and small noise are cheap.

The paper: "we can likely decrease the feature accuracy without affecting
the learning results.  In fact, it has been shown that adding small amounts
of noise can actually be helpful in learning more robust models."

We train on (a) full-precision features, (b) features quantised to 8/4/2
significand bits, and (c) features with small multiplicative noise, and
compare eval prediction error.

Expected shape: 8- and 4-bit quantisation and mild noise cost almost no
accuracy; very aggressive quantisation (2 bits) degrades more.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.core import LFOModel, error_rates
from repro.features import Dataset, add_relative_noise, quantize_features
from repro.gbdt import GBDTParams


def run_ablation(acc_windows):
    variants = {
        "full precision": lambda X: X,
        "8-bit features": lambda X: quantize_features(X, 8),
        "4-bit features": lambda X: quantize_features(X, 4),
        "2-bit features": lambda X: quantize_features(X, 2),
        "noise 1%": lambda X: add_relative_noise(
            X, 0.01, np.random.default_rng(7)
        ),
        "noise 10%": lambda X: add_relative_noise(
            X, 0.10, np.random.default_rng(7)
        ),
    }
    results = {}
    for name, transform in variants.items():
        train = Dataset(
            transform(acc_windows.train.X), acc_windows.train.y,
            acc_windows.train.names,
        )
        model = LFOModel.train(train, params=GBDTParams(num_iterations=30))
        # Evaluation features go through the same (deployed) transform.
        test_X = transform(acc_windows.test.X)
        likelihoods = model.likelihood(test_X)
        error, _, _ = error_rates(likelihoods, acc_windows.test.y, 0.5)
        results[name] = error
    return results


def test_feature_noise(benchmark, acc_windows):
    errors = benchmark.pedantic(
        run_ablation, args=(acc_windows,), rounds=1, iterations=1
    )
    rows = [[name, err * 100] for name, err in errors.items()]
    report("ablation_feature_noise", table(["variant", "error%"], rows))

    base = errors["full precision"]
    # Moderate quantisation is nearly free (the paper's storage argument).
    assert errors["8-bit features"] < base + 0.01
    assert errors["4-bit features"] < base + 0.02
    # Mild noise is harmless.
    assert errors["noise 1%"] < base + 0.02
    # Aggressive quantisation costs at least as much as moderate.
    assert errors["2-bit features"] >= errors["8-bit features"] - 0.01
