"""Extension benchmark: per-request latency budget of the scoring hot path.

The paper's deployability argument is a latency budget: admission must
cost microseconds, not milliseconds, or the predictor throttles the CDN
it is supposed to speed up.  This benchmark times each stage of the
request path in isolation — feature extraction (scalar and batched),
single-row prediction, and batch prediction, plus the reference
(uncompiled) predictor for scale — and reports nanoseconds per request.

Two regression gates, both machine-invariant ratios rather than absolute
times (CI machines vary wildly):

* the compiled batch path must beat the reference tree-walk by at least
  ``0.85 ×`` the speedup recorded in the committed baseline
  (``results/ext_hotpath.json``), when the baseline was measured on the
  same backend;
* batched feature extraction must amortise to cheaper than scalar
  extraction per row.

The JSON baseline is rewritten on every run so a real improvement only
needs to be committed to become the new floor.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np
from common import RESULTS_DIR, report, table

from repro.features import FeatureTracker
from repro.obs import write_json

#: Smoke knob for CI: scales the repeat counts.
ROUNDS = int(os.environ.get("HOTPATH_BENCH_ROUNDS", "3"))
SPEEDUP_RETENTION = 0.85

BASELINE_PATH = RESULTS_DIR / "ext_hotpath.json"


def _best_ns_per(fn, count: int) -> float:
    """Best-of-ROUNDS wall-clock for ``fn``, in ns per inner item."""
    best = float("inf")
    for _ in range(ROUNDS):
        started = perf_counter()
        fn()
        best = min(best, perf_counter() - started)
    return best * 1e9 / count


def run_hotpath(acc_report, acc_windows, acc_trace, acc_cache):
    clf = acc_report.model.classifier
    predictor = clf.compiled()

    # A tracker warmed exactly as the simulator would warm it.
    tracker = FeatureTracker(n_gaps=50)
    warm, probe = acc_trace.requests[:8_000], acc_trace.requests[8_000:8_512]
    for request in warm:
        tracker.update(request)

    X = np.ascontiguousarray(acc_windows.test.X[:4_096])
    rows = [np.ascontiguousarray(x) for x in X[:256]]

    def extract_scalar():
        for request in probe:
            tracker.features(request, acc_cache)

    def extract_batch():
        tracker.features_batch(probe, acc_cache)

    def predict_single():
        for row in rows:
            predictor.predict_proba_single(row)

    def predict_batch():
        predictor.predict_proba(X)

    def predict_reference():
        clf.predict_proba(X)

    timings = {
        "extract_scalar_ns": _best_ns_per(extract_scalar, len(probe)),
        "extract_batch_ns": _best_ns_per(extract_batch, len(probe)),
        "predict_single_ns": _best_ns_per(predict_single, len(rows)),
        "predict_batch_ns": _best_ns_per(predict_batch, len(X)),
        "predict_reference_ns": _best_ns_per(predict_reference, len(X)),
    }
    timings["compiled_vs_reference_speedup"] = (
        timings["predict_reference_ns"] / timings["predict_batch_ns"]
    )
    return predictor.backend, timings


def test_hotpath(benchmark, acc_report, acc_windows, acc_trace, acc_cache):
    backend, timings = benchmark.pedantic(
        run_hotpath,
        args=(acc_report, acc_windows, acc_trace, acc_cache),
        rounds=1,
        iterations=1,
    )

    baseline = None
    if BASELINE_PATH.exists():
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)

    rows = [[stage, ns] for stage, ns in timings.items()]
    report(
        "ext_hotpath",
        table(["stage", "value"], rows)
        + f"\nbackend: {backend} (best of {ROUNDS} rounds)",
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(
        {"backend": backend, "rounds": ROUNDS, **timings}, BASELINE_PATH
    )

    # Batch extraction must amortise below the scalar path.
    assert timings["extract_batch_ns"] < timings["extract_scalar_ns"]
    # Compiled batch scoring must stay well ahead of the reference walk.
    assert timings["compiled_vs_reference_speedup"] > 2.0
    if baseline is not None and baseline.get("backend") == backend:
        floor = (
            SPEEDUP_RETENTION * baseline["compiled_vs_reference_speedup"]
        )
        assert timings["compiled_vs_reference_speedup"] >= floor, (
            timings["compiled_vs_reference_speedup"],
            floor,
        )
