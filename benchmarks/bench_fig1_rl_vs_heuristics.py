"""Figure 1: model-free RL caching vs simple heuristics (object hit ratio).

Paper's result (from HotNets'17 [48]): RL-based caching (RLC) performs
about as well as random (RND) and LRU, and all three are clearly beaten by
the GDSF heuristic.  The experiment uses the *object* hit ratio, so all
retrieval costs are set to 1 (OHR objective), which is what makes GDSF's
``freq/size`` priority size-aware.

Expected shape: OHR(GDSF) > OHR(RLC) ~ OHR(LRU) ~ OHR(RND).
"""

from __future__ import annotations

from common import cache_for, cdn_mix_trace, report, table

from repro.sim import compare_policies, policy_factories
from repro.trace import CostModel, Trace
from repro.viz import bar_chart

POLICIES = ["RND", "LRU", "RLC", "GDSF"]


def run_fig1(n_requests: int = 20_000) -> dict[str, float]:
    trace = cdn_mix_trace(n_requests)
    # OHR objective: every miss costs 1 (Section 2.1).
    trace = Trace(CostModel.apply(trace.requests, CostModel.OHR), name="ohr")
    cache_size = cache_for(trace, 12)
    results = compare_policies(
        trace, cache_size, factories=policy_factories(POLICIES),
        warmup_fraction=0.25,
    )
    return {name: results[name].ohr for name in POLICIES}


def test_fig1_rl_vs_heuristics(benchmark):
    ohr = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    report(
        "fig1_rl_vs_heuristics",
        table(
            ["policy", "OHR"],
            [[name, ohr[name]] for name in POLICIES],
        )
        + "\n\n" + bar_chart({name: ohr[name] for name in POLICIES}),
    )
    # The paper's qualitative claims:
    assert ohr["GDSF"] > ohr["RLC"], "GDSF must beat model-free RL"
    assert ohr["GDSF"] > ohr["LRU"]
    assert ohr["GDSF"] > ohr["RND"]
    # RLC lands in the RND/LRU neighbourhood, far from GDSF.
    spread = ohr["GDSF"] - min(ohr.values())
    assert abs(ohr["RLC"] - ohr["LRU"]) < 0.6 * spread
