"""Figure 5b: prediction error vs number of training samples.

Paper's result: the error is below 6.5% even with ~10K samples, decays
slightly until ~100K, and its *variance* shrinks as the training set grows
("prediction accuracy becomes more predictable").

Scaled to this repo's window sizes: we sweep training subsets from 250 to
8000 samples of the shared accuracy window.  Expected shape: error falls
(or stays flat) with sample count; the spread across repeated subsets
shrinks; the largest training set is within a small margin of the best.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.core import train_and_evaluate
from repro.gbdt import GBDTParams
from repro.viz import line_chart

SIZES = [250, 500, 1_000, 2_000, 4_000, 8_000]
REPEATS = 5


def run_sweep(acc_windows) -> dict[int, list[float]]:
    rng = np.random.default_rng(0)
    n_train = len(acc_windows.train)
    errors: dict[int, list[float]] = {}
    for size in SIZES:
        errors[size] = []
        repeats = 1 if size == n_train else REPEATS
        for _ in range(repeats):
            subset = rng.choice(n_train, size=size, replace=False)
            rep = train_and_evaluate(
                acc_windows,
                params=GBDTParams(num_iterations=30),
                train_subset=np.sort(subset),
            )
            errors[size].append(rep.prediction_error)
    return errors


def test_fig5b_training_size(benchmark, acc_windows):
    errors = benchmark.pedantic(
        run_sweep, args=(acc_windows,), rounds=1, iterations=1
    )
    rows = []
    for size in SIZES:
        e = np.array(errors[size])
        rows.append([size, float(e.mean()) * 100, float(e.std()) * 100])
    means_curve = [float(np.mean(errors[s])) * 100 for s in SIZES]
    report(
        "fig5b_training_size",
        table(["samples", "error% (mean)", "error% (std)"], rows)
        + "\n\n"
        + line_chart(
            np.log10(SIZES), {"error": means_curve},
            x_label="log10(samples)", y_label="error %",
        ),
    )

    means = {s: float(np.mean(errors[s])) for s in SIZES}
    # Error decays with training data: the largest set beats the smallest.
    assert means[SIZES[-1]] < means[SIZES[0]]
    # And stabilises: the two largest sets are close to each other.
    assert abs(means[SIZES[-1]] - means[SIZES[-2]]) < 0.03
    # Variance shrinks as the paper reports.
    assert np.std(errors[SIZES[0]]) >= np.std(errors[SIZES[-2]]) - 1e-9
