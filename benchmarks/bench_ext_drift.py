"""Extension experiment: drift-triggered early retraining.

The paper motivates LFO with content mixes that change "within minutes";
its fixed-window loop reacts only at the next boundary.  We place a hard
mix shift in the *middle* of a training window and compare standard
LFOOnline against AdaptiveLFOOnline (PSI drift monitor + early retrain).

Expected shape: the adaptive variant fires at least one drift retrain near
the shift and its post-shift BHR recovers at least as fast as (typically
faster than) the fixed-window variant's.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.core import AdaptiveLFOOnline, LFOOnline, OptLabelConfig
from repro.sim import simulate
from repro.trace import ContentClass, compute_stats, generate_mix_shift_trace
from repro.viz import sparkline

PHASE = 9_000
WINDOW = 6_000  # the shift at request 9000 falls mid-window (6000..12000)
SERIES = 1_500


def run_drift_experiment():
    web = ContentClass("web", 3_000, 1.0, 50, 1.0, 1_000)
    software = ContentClass("software", 300, 1.0, 2_000, 1.0, 20_000)
    trace = generate_mix_shift_trace(
        [web, software], [[0.9, 0.1], [0.2, 0.8]],
        requests_per_phase=PHASE, seed=3,
    )
    cache_size = compute_stats(trace).footprint_bytes // 10
    label_config = OptLabelConfig(mode="segmented", segment_length=1_000)

    fixed = LFOOnline(cache_size, window=WINDOW, label_config=label_config)
    adaptive = AdaptiveLFOOnline(
        cache_size, window=WINDOW, label_config=label_config,
        drift_threshold=0.25, check_interval=750,
    )
    series = {
        "fixed": simulate(trace, fixed, series_window=SERIES).series,
        "adaptive": simulate(trace, adaptive, series_window=SERIES).series,
    }
    return series, adaptive.n_drift_retrains, fixed.n_retrains


def test_drift_retraining(benchmark):
    series, drift_retrains, fixed_retrains = benchmark.pedantic(
        run_drift_experiment, rounds=1, iterations=1
    )
    shift_window = PHASE // SERIES
    rows = [
        [w if w != shift_window else f"{w}*", series["fixed"][w],
         series["adaptive"][w]]
        for w in range(len(series["fixed"]))
    ]
    sparks = "\n".join(
        f"{name:<9} {sparkline(s)}" for name, s in series.items()
    )
    report(
        "ext_drift",
        table(["window", "fixed LFO", "adaptive LFO"], rows)
        + f"\n(* = first window after the shift)\n\n{sparks}\n"
        + f"drift retrains: {drift_retrains}; "
        + f"fixed boundary retrains: {fixed_retrains}",
    )

    # The monitor actually fired around the shift.
    assert drift_retrains >= 1
    # Post-shift recovery: over the two windows after the shift the
    # adaptive variant is at least as good as the fixed-window one.
    post = slice(shift_window, shift_window + 2)
    assert float(np.mean(series["adaptive"][post])) >= float(
        np.mean(series["fixed"][post])
    ) - 0.02

# -- streaming health detection ----------------------------------------------
#
# The same mix shift, watched from the outside: a WindowedRegistry slices
# the run into fixed telemetry windows and a HealthMonitor scores each
# closed window (BHR Page-Hinkley + admission-score PSI).  The claim under
# test is the operational one — the health layer localises the shift to
# within a few windows, with zero false alarms on a stationary control.

HEALTH_WINDOW = 1_500
#: The shift lands at request PHASE, i.e. telemetry window PHASE/1500 = 6.
SHIFT_WINDOW = PHASE // HEALTH_WINDOW
#: Detection budget: the alert must land within this many windows of the
#: shift.  The BHR detector needs a few windows of sustained shortfall to
#: integrate past its Page-Hinkley budget, so "within 4" is the bound the
#: detectors are tuned to (and the paper's "minutes, not hours" scale).
DETECTION_BUDGET = 4


def _watched_run(transitions):
    from repro.core import LFOOnline as _LFO
    from repro.obs import (
        HealthConfig,
        HealthMonitor,
        WindowedRegistry,
        use_registry,
    )

    # The adaptive-LFO experiment above shifts to a *cache-friendly*
    # class (300 hot objects) because it studies recovery speed; byte
    # hit ratio barely moves through that shift, so it is exactly the
    # kind of change a BHR detector must NOT be expected to see.  The
    # health layer's claim is about detecting degradation, so its shift
    # goes to a cache-hostile class: a long-tail catalogue with flatter
    # popularity, which drives sustained misses the moment it dominates
    # the mix.
    web = ContentClass("web", 3_000, 1.0, 50, 1.0, 1_000)
    software = ContentClass("software", 30_000, 0.7, 2_000, 1.0, 20_000)
    trace = generate_mix_shift_trace(
        [web, software], transitions, requests_per_phase=PHASE, seed=3,
    )
    cache_size = compute_stats(trace).footprint_bytes // 10
    registry = WindowedRegistry(every_requests=HEALTH_WINDOW)
    monitor = HealthMonitor(
        HealthConfig(bhr_ph_delta=0.01, bhr_ph_lambda=0.10, bhr_warmup=3)
    ).attach(registry)
    policy = _LFO(
        cache_size, window=WINDOW,
        label_config=OptLabelConfig(mode="segmented", segment_length=1_000),
    )
    with use_registry(registry):
        simulate(trace, policy)
        registry.roll()
    bhr_series = [
        s.bhr if s.bhr is not None else 0.0 for s in registry.windows()
    ]
    return monitor.alerts, bhr_series


def run_health_detection():
    shifted_alerts, shifted_bhr = _watched_run(
        [[0.9, 0.1], [0.2, 0.8]]
    )
    control_alerts, control_bhr = _watched_run(
        [[0.9, 0.1], [0.9, 0.1]]  # same generator, no shift
    )
    return shifted_alerts, shifted_bhr, control_alerts, control_bhr


def test_health_detects_mix_shift(benchmark):
    shifted_alerts, shifted_bhr, control_alerts, control_bhr = (
        benchmark.pedantic(run_health_detection, rounds=1, iterations=1)
    )
    drift = [
        a for a in shifted_alerts if a.kind in ("bhr_drift", "score_drift")
    ]
    lines = [
        f"[{a.kind}] window {a.window_index}: {a.message}"
        for a in shifted_alerts
    ]
    report(
        "ext_drift_health",
        f"telemetry window {HEALTH_WINDOW} requests; shift enters at "
        f"window {SHIFT_WINDOW}\n"
        f"shifted  BHR {sparkline(shifted_bhr)}\n"
        f"control  BHR {sparkline(control_bhr)}\n"
        + "\n".join(lines)
        + f"\ncontrol alerts: {len(control_alerts)}",
    )

    # The health layer localised the shift: at least one BHR/score drift
    # alert inside the detection budget after the shift window.
    assert drift, "no drift alert raised on the mix-shift trace"
    first = min(a.window_index for a in drift)
    assert SHIFT_WINDOW <= first <= SHIFT_WINDOW + DETECTION_BUDGET, first
    # ... and stayed quiet on the stationary control: zero false alarms.
    assert control_alerts == []
