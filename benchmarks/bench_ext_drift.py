"""Extension experiment: drift-triggered early retraining.

The paper motivates LFO with content mixes that change "within minutes";
its fixed-window loop reacts only at the next boundary.  We place a hard
mix shift in the *middle* of a training window and compare standard
LFOOnline against AdaptiveLFOOnline (PSI drift monitor + early retrain).

Expected shape: the adaptive variant fires at least one drift retrain near
the shift and its post-shift BHR recovers at least as fast as (typically
faster than) the fixed-window variant's.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.core import AdaptiveLFOOnline, LFOOnline, OptLabelConfig
from repro.sim import simulate
from repro.trace import ContentClass, compute_stats, generate_mix_shift_trace
from repro.viz import sparkline

PHASE = 9_000
WINDOW = 6_000  # the shift at request 9000 falls mid-window (6000..12000)
SERIES = 1_500


def run_drift_experiment():
    web = ContentClass("web", 3_000, 1.0, 50, 1.0, 1_000)
    software = ContentClass("software", 300, 1.0, 2_000, 1.0, 20_000)
    trace = generate_mix_shift_trace(
        [web, software], [[0.9, 0.1], [0.2, 0.8]],
        requests_per_phase=PHASE, seed=3,
    )
    cache_size = compute_stats(trace).footprint_bytes // 10
    label_config = OptLabelConfig(mode="segmented", segment_length=1_000)

    fixed = LFOOnline(cache_size, window=WINDOW, label_config=label_config)
    adaptive = AdaptiveLFOOnline(
        cache_size, window=WINDOW, label_config=label_config,
        drift_threshold=0.25, check_interval=750,
    )
    series = {
        "fixed": simulate(trace, fixed, series_window=SERIES).series,
        "adaptive": simulate(trace, adaptive, series_window=SERIES).series,
    }
    return series, adaptive.n_drift_retrains, fixed.n_retrains


def test_drift_retraining(benchmark):
    series, drift_retrains, fixed_retrains = benchmark.pedantic(
        run_drift_experiment, rounds=1, iterations=1
    )
    shift_window = PHASE // SERIES
    rows = [
        [w if w != shift_window else f"{w}*", series["fixed"][w],
         series["adaptive"][w]]
        for w in range(len(series["fixed"]))
    ]
    sparks = "\n".join(
        f"{name:<9} {sparkline(s)}" for name, s in series.items()
    )
    report(
        "ext_drift",
        table(["window", "fixed LFO", "adaptive LFO"], rows)
        + f"\n(* = first window after the shift)\n\n{sparks}\n"
        + f"drift retrains: {drift_retrains}; "
        + f"fixed boundary retrains: {fixed_retrains}",
    )

    # The monitor actually fired around the shift.
    assert drift_retrains >= 1
    # Post-shift recovery: over the two windows after the shift the
    # adaptive variant is at least as good as the fixed-window one.
    post = slice(shift_window, shift_window + 2)
    assert float(np.mean(series["adaptive"][post])) >= float(
        np.mean(series["fixed"][post])
    ) - 0.02