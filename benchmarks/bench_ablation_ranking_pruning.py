"""Section 2.1 claim: ranking-axis pruning saves ~90% of OPT calculation.

The paper proposes splitting requests along a *ranking* axis
(``C_i / (S_i * L_i)``) instead of the time axis, solving the min-cost flow
only for the top-ranked requests.  We sweep the keep fraction and measure
(a) solve time relative to the full exact solve, and (b) agreement /
admission recall of the resulting labels.

Expected shape: time falls steeply with the keep fraction while recall of
OPT's admissions stays high at moderate fractions — because the requests
OPT admits are exactly the highly-ranked (short-reuse-distance) ones.
"""

from __future__ import annotations

import time

from common import accuracy_trace, cache_for, report, table

from repro.opt import solve_opt, solve_pruned

FRACTIONS = [0.1, 0.25, 0.5, 0.75]
N_REQUESTS = 5_000


def run_ablation():
    trace = accuracy_trace(N_REQUESTS)
    cache_size = cache_for(trace, 10)

    t0 = time.perf_counter()
    exact = solve_opt(trace, cache_size)
    exact_time = time.perf_counter() - t0

    rows = []
    stats = {}
    for fraction in FRACTIONS:
        t0 = time.perf_counter()
        pruned = solve_pruned(trace, cache_size, keep_fraction=fraction)
        elapsed = time.perf_counter() - t0
        agreement = float((pruned.decisions == exact.decisions).mean())
        admitted = exact.decisions
        recall = float(
            (pruned.decisions & admitted).sum() / max(1, admitted.sum())
        )
        rows.append(
            [fraction, elapsed, elapsed / exact_time, agreement, recall]
        )
        stats[fraction] = (elapsed, agreement, recall)
    return exact_time, rows, stats


def test_ranking_pruning_saves_time(benchmark):
    exact_time, rows, stats = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    report(
        "ablation_ranking_pruning",
        f"exact solve: {exact_time:.2f}s on {N_REQUESTS} requests\n"
        + table(
            ["keep", "time_s", "time/exact", "agreement", "admit recall"],
            rows,
        ),
    )
    # The paper's headline: a small keep fraction saves ~90% of the time.
    elapsed_10, _, _ = stats[0.1]
    assert elapsed_10 < 0.25 * exact_time, "pruning must save most solve time"
    # Time grows with the keep fraction.
    times = [stats[f][0] for f in FRACTIONS]
    assert times[0] < times[-1]
    # Label quality grows with the keep fraction.
    recalls = [stats[f][2] for f in FRACTIONS]
    assert recalls[-1] > recalls[0]
    assert stats[0.75][1] > 0.85, "3/4 keep fraction must agree closely"
