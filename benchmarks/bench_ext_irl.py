"""Extension experiment (paper §4): inverse-RL rewards learned from OPT.

The paper suggests its reduction (OPT as the expert) could also power IRL-
style systems.  This benchmark compares three learners that all consume the
same OPT demonstrations:

* LFO with boosted trees (the paper's design),
* a max-margin linear reward (apprenticeship-style IRL),
* plain LRU (no learning).

Expected shape: both learners beat LRU by exploiting OPT's admissions; the
nonlinear boosted trees match or beat the linear reward — supporting the
paper's claim that the *reduction* is the contribution, and lightweight
trees are a strong model class for it.
"""

from __future__ import annotations

from common import cache_for, cdn_mix_trace, report, table

from repro.cache import LRUCache
from repro.core import IRLOnline, LFOOnline, OptLabelConfig
from repro.sim import simulate

WARMUP = 1 / 3


def run_irl_comparison(n_requests: int = 20_000):
    trace = cdn_mix_trace(n_requests)
    cache_size = cache_for(trace, 12)
    label_config = OptLabelConfig(mode="segmented", segment_length=1_250)

    lfo = LFOOnline(cache_size, window=5_000, label_config=label_config)
    irl = IRLOnline(cache_size, window=5_000, label_config=label_config)

    results = {
        "LFO (boosted trees)": simulate(trace, lfo, warmup_fraction=WARMUP),
        "IRL (linear reward)": simulate(trace, irl, warmup_fraction=WARMUP),
        "LRU (no learning)": simulate(
            trace, LRUCache(cache_size), warmup_fraction=WARMUP
        ),
    }
    return {name: r.bhr for name, r in results.items()}


def test_irl_extension(benchmark):
    bhr = benchmark.pedantic(run_irl_comparison, rounds=1, iterations=1)
    rows = [[name, value] for name, value in bhr.items()]
    report("ext_irl", table(["learner", "BHR"], rows))

    # Both OPT-imitating learners beat the non-learning baseline.
    assert bhr["LFO (boosted trees)"] > bhr["LRU (no learning)"]
    assert bhr["IRL (linear reward)"] > bhr["LRU (no learning)"]
    # Nonlinear trees are at least as good as the linear reward.
    assert bhr["LFO (boosted trees)"] >= bhr["IRL (linear reward)"] - 0.01
