"""Section 2.2 claim: feature state costs ~208 B/object naively, and the
sparse representation plus an LRU cap keeps it bounded.

The paper: "The overhead of a naive implementation that tracks all these
features is 208 bytes per object ... in practice, the feature space is very
sparse (a large fraction of CDN objects receives fewer than 5 requests)".

We measure the tracker's accounting on the CDN mix and verify that the LRU
cap bounds state under an adversarial one-touch scan.
"""

from __future__ import annotations

from common import cdn_mix_trace, report, table

from repro.features import FeatureTracker
from repro.trace import compute_stats, generate_adversarial_scan


def run_measurement(n_requests: int = 20_000):
    trace = cdn_mix_trace(n_requests)
    stats = compute_stats(trace)

    unbounded = FeatureTracker(n_gaps=50)
    for request in trace:
        unbounded.update(request)

    capped = FeatureTracker(n_gaps=50, max_objects=2_000)
    for request in trace:
        capped.update(request)

    scan = generate_adversarial_scan(50_000, object_size=1_000)
    scanned = FeatureTracker(n_gaps=50, max_objects=2_000)
    for request in scan:
        scanned.update(request)

    return stats, unbounded, capped, scanned


def test_feature_memory(benchmark):
    stats, unbounded, capped, scanned = benchmark.pedantic(
        run_measurement, rounds=1, iterations=1
    )
    per_object = unbounded.memory_bytes_naive() / max(1, unbounded.n_tracked)
    rows = [
        ["objects in trace", stats.n_objects],
        ["tracked (unbounded)", unbounded.n_tracked],
        ["naive bytes/object", int(per_object)],
        ["naive total bytes", unbounded.memory_bytes_naive()],
        ["tracked (capped 2000)", capped.n_tracked],
        ["tracked after 50K-object scan", scanned.n_tracked],
        ["under-5-requests object share", f"{stats.under_five_requests_ratio:.0%}"],
    ]
    report("ablation_feature_memory", table(["metric", "value"], rows))

    # The paper's 208 B/object figure is the naive dense accounting.
    assert per_object == 208
    # The unbounded tracker holds exactly the distinct objects seen.
    assert unbounded.n_tracked == stats.n_objects
    # The LRU cap bounds state even under an adversarial scan.
    assert capped.n_tracked <= 2_000
    assert scanned.n_tracked <= 2_000
    # The sparsity argument: most objects get <5 requests on a CDN mix.
    assert stats.under_five_requests_ratio > 0.5
