"""Extension experiment: the serving harness under the fault matrix.

``bench_ext_fault_matrix`` proves the *simulated* online loop degrades
gracefully; this benchmark makes the same argument for the *serving*
shape — the asyncio loop behind ``lfo serve``: bounded ingestion queue,
speculative batched scoring, background retraining with warm model
handoff, and live SLO evaluation over telemetry windows.  Each fault
scenario from the matrix replays through :class:`repro.serve.ServingLoop`
with the full observability plane attached.

The headline gates:

* **zero dropped requests in every scenario** — backpressure and the
  shutdown drain are structural, and no injected fault may turn into
  silent loss;
* **decision-latency SLOs hold under every fault** — training crashes,
  hangs, and injected solve latency must never leak onto the scoring
  path (the inline executor runs training synchronously at window
  boundaries, *between* speculation windows, so even a 20 ms solve stall
  leaves per-decision latency untouched);
* **warm handoff raises no score-drift false alarm** — the health
  monitor's PSI burn-in absorbs each model install;
* **no single fault moves serving BHR more than 5 points** off the
  fault-free serving baseline, and each scenario's degradation path
  demonstrably engaged.

Results land in ``results/ext_serving.txt`` (table) and
``results/ext_serving.json`` (committed baseline; the CI artifact).
``SERVING_BENCH_REQUESTS`` scales the trace for smoke runs.
"""

from __future__ import annotations

import asyncio
import os

from common import RESULTS_DIR, cache_for, cdn_mix_trace, report, table

from repro.core import LFOOnline, OptLabelConfig
from repro.gbdt import GBDTParams
from repro.obs import (
    HealthConfig,
    HealthMonitor,
    MetricsRegistry,
    SloEngine,
    WindowedRegistry,
    use_registry,
    write_json,
)
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    SimulatedTrainerExecutor,
    use_fault_plan,
)
from repro.serve import ServingLoop, TraceReplayDriver, default_serving_slo
from repro.trace import read_text_trace, write_text_trace

N_REQUESTS = int(os.environ.get("SERVING_BENCH_REQUESTS", "12000"))
WINDOW = 2_000
SEGMENT = 500
TELEMETRY_WINDOW = 1_000
BHR_TOLERANCE = 0.05  # max |BHR - baseline| under any single fault

#: The latency objectives that must hold under every fault (BHR and
#: staleness verdicts are recorded in the JSON but gated only via the
#: BHR-delta tolerance — small smoke traces sit near the BHR floor).
LATENCY_OBJECTIVES = (
    "decision_latency_p50",
    "decision_latency_p99",
    "decision_latency_p999",
)

FAST_PARAMS = GBDTParams(num_iterations=10)


def _make_lfo(cache_size: int, *, n_jobs: int = 1, **kwargs) -> LFOOnline:
    """Scenario-standard policy: background mode on the inline executor."""
    defaults = dict(
        window=WINDOW,
        gbdt_params=FAST_PARAMS,
        n_gaps=10,
        label_config=OptLabelConfig(
            mode="segmented", segment_length=SEGMENT, n_jobs=n_jobs
        ),
        background=True,
        executor=SimulatedTrainerExecutor(),
        staleness_limit=2,
        retry_backoff=1,
    )
    defaults.update(kwargs)
    return LFOOnline(cache_size, **defaults)


def _serve(trace, lfo, plan):
    """One serving run under ``plan`` with the observability plane live."""
    registry = WindowedRegistry(
        every_requests=TELEMETRY_WINDOW, request_counter="serve.requests"
    )
    monitor = HealthMonitor(HealthConfig()).attach(registry)
    engine = SloEngine(default_serving_slo()).attach(registry)
    executor = lfo._executor
    with use_registry(registry), use_fault_plan(plan):
        loop = ServingLoop(lfo, TraceReplayDriver(trace))
        serve_report = asyncio.run(loop.run())
        executor.release_hung()  # end of drill: un-park hung futures
        lfo.finish_training(timeout=0)
    executor.shutdown(cancel_futures=True)
    counters = registry.to_dict()["counters"]
    return {
        "report": serve_report,
        "counters": counters,
        "slo": engine.verdict(),
        "health": monitor.status(),
    }


def _corrupted_trace(trace, plan, tmp_dir):
    """Round-trip the trace through text with corrupt-line injection on."""
    path = os.path.join(tmp_dir, "serving_trace.txt")
    write_text_trace(trace, path)
    registry = MetricsRegistry()
    with use_registry(registry), use_fault_plan(plan):
        reread = read_text_trace(path, tolerant=True)
    skipped = registry.to_dict()["counters"].get(
        "resilience.trace_lines_skipped", 0
    )
    return reread, skipped


def run_serving_matrix(tmp_dir: str):
    trace = list(cdn_mix_trace(N_REQUESTS))
    cache = cache_for(cdn_mix_trace(N_REQUESTS))
    scenarios: dict[str, dict] = {}

    # -- baseline: fault-free serving ----------------------------------------
    data = _serve(trace, _make_lfo(cache), None)
    baseline_bhr = data["report"].bhr
    data["engaged"] = data["report"].model_handoffs >= 1
    scenarios["baseline"] = data

    # -- trainer crash: second training attempt raises -----------------------
    plan = FaultPlan([
        FaultSpec(site="online.train_window", kind="crash", at=(1,))
    ])
    data = _serve(trace, _make_lfo(cache), plan)
    data["engaged"] = (
        data["counters"].get("online.failed_retrains", 0) >= 1
        and data["counters"].get("resilience.backoff_skips", 0) >= 1
    )
    scenarios["trainer_crash"] = data

    # -- trainer hang: second submission parks; watchdog cancels -------------
    plan = FaultPlan([
        FaultSpec(site="trainer.submit", kind="hang", at=(1,))
    ])
    data = _serve(trace, _make_lfo(cache, train_deadline=800), plan)
    data["engaged"] = (
        data["counters"].get("resilience.watchdog_cancels", 0) >= 1
    )
    scenarios["trainer_hang"] = data

    # -- flaky segment solves: one retried in-pool, one forced serial --------
    plan = FaultPlan([
        FaultSpec(site="opt.segment_solve", kind="crash", at=(0,), attempts=1),
        FaultSpec(site="opt.segment_solve", kind="crash", at=(2,), attempts=9),
    ])
    data = _serve(trace, _make_lfo(cache, n_jobs=2), plan)
    data["engaged"] = (
        data["counters"].get("resilience.segment_retries", 0) >= 1
        and data["counters"].get("resilience.segment_serial_fallbacks", 0) >= 1
    )
    scenarios["segment_flaky"] = data

    # -- corrupt trace feed: tolerant reader skips mangled lines -------------
    plan = FaultPlan([
        FaultSpec(site="trace.read_line", kind="corrupt", every=397)
    ])
    dirty_trace, skipped = _corrupted_trace(
        cdn_mix_trace(N_REQUESTS), plan, tmp_dir
    )
    data = _serve(list(dirty_trace), _make_lfo(cache), None)
    data["counters"]["resilience.trace_lines_skipped"] = skipped
    data["engaged"] = skipped >= 1
    scenarios["corrupt_trace"] = data

    # -- slow solves: injected latency on every training job -----------------
    plan = FaultPlan([
        FaultSpec(
            site="online.train_window", kind="latency",
            every=1, latency_seconds=0.02,
        )
    ])
    lfo = _make_lfo(cache)
    data = _serve(trace, lfo, plan)
    data["engaged"] = lfo.n_retrains >= 1
    scenarios["solve_latency"] = data

    return baseline_bhr, scenarios


def _latency_ok(slo_verdict: dict) -> bool:
    objectives = slo_verdict["objectives"]
    return all(objectives[name]["ok"] for name in LATENCY_OBJECTIVES)


def test_serving_matrix(benchmark, tmp_path):
    baseline_bhr, scenarios = benchmark.pedantic(
        run_serving_matrix, args=(str(tmp_path),), rounds=1, iterations=1
    )

    rows = []
    document = {"n_requests": N_REQUESTS, "baseline_bhr": baseline_bhr,
                "scenarios": {}}
    for name, data in scenarios.items():
        serve_report = data["report"]
        objectives = data["slo"]["objectives"]
        p999 = objectives["decision_latency_p999"]["last_value"]
        rows.append([
            name,
            serve_report.requests,
            serve_report.bhr,
            serve_report.bhr - baseline_bhr,
            serve_report.model_handoffs,
            serve_report.dropped,
            p999 * 1e6,
            "ok" if _latency_ok(data["slo"]) else "BREACH",
            "yes" if data["engaged"] else "NO",
        ])
        document["scenarios"][name] = {
            "serve": serve_report.as_dict(),
            "delta_vs_baseline": serve_report.bhr - baseline_bhr,
            "slo": data["slo"],
            "health": {
                "ok": data["health"]["ok"],
                "alerts_by_kind": data["health"]["alerts_by_kind"],
            },
            "counters": {
                k: v for k, v in data["counters"].items()
                if k.startswith(("resilience.", "serve.", "online."))
            },
        }

    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(document, RESULTS_DIR / "ext_serving.json")
    report(
        "ext_serving",
        table(
            ["scenario", "requests", "bhr", "delta", "handoffs",
             "dropped", "p999_us", "slo", "engaged"],
            rows,
        )
        + f"\n(gates: dropped == 0 and latency SLOs ok in every scenario; "
        f"|delta| <= {BHR_TOLERANCE:.2f}; baseline handoffs >= 1 with "
        "zero score-drift alerts)",
    )

    for name, data in scenarios.items():
        serve_report = data["report"]
        assert serve_report.requests > 0, name
        assert serve_report.dropped == 0, (name, serve_report.as_dict())
        assert serve_report.drained, name
        assert _latency_ok(data["slo"]), (name, data["slo"])
        assert data["engaged"], (name, data["counters"])
        assert abs(serve_report.bhr - baseline_bhr) <= BHR_TOLERANCE, (
            name, serve_report.bhr, baseline_bhr
        )
    # Warm handoff must not read as score drift: the PSI burn-in resets
    # the baseline at each install window.
    baseline = scenarios["baseline"]
    assert baseline["report"].model_handoffs >= 1
    assert baseline["health"]["alerts_by_kind"].get("score_drift", 0) == 0
