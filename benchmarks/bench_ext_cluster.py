"""Extension experiment: req/s-vs-shards scaling of the cache cluster.

``bench_fig7_throughput`` sweeps predictor *threads* over a static
feature matrix; this benchmark extends the sweep to the full cluster
data plane — consistent-hash routing, shard worker processes, the
shared-memory model slab, and striped telemetry buffers — and gates two
properties at once:

* **near-linear scaling** — each shard worker accumulates
  ``process_time`` CPU seconds around its scoring loop only (attach,
  pickling, and pipe waits excluded), so ``requests / cpu_seconds`` is
  the service rate a dedicated core would sustain.  The *modeled
  aggregate* — the sum of per-shard rates, i.e. the one-core-per-shard
  deployment the paper's Figure-7 arithmetic assumes — must reach
  >= 1.7x the single-shard rate at 2 shards and >= 3x at 4.  Because the
  gate is CPU-time based it measures real serialization overhead (lock
  contention, per-request routing cost leaking into shards) and holds on
  a single-core CI host, where wall-clock scaling is physically
  impossible; wall-clock aggregates are reported alongside, labeled.
* **bit-identical scores** — every shard's running ``blake2b`` score
  digest must equal an in-process :func:`repro.cluster.replay_scored`
  replay of the same trace split, and the shard's hit decisions must
  equal single-process ``simulate`` over that split.  Sharding changes
  where a request is served, never what the model says about it.

Results land in ``results/ext_cluster.txt`` (table) and
``results/ext_cluster.json`` (committed baseline; the CI artifact).
``CLUSTER_BENCH_REQUESTS`` scales the trace and ``CLUSTER_BENCH_SHARDS``
(comma-separated) the sweep for smoke runs.
"""

from __future__ import annotations

import os
from hashlib import blake2b
from time import perf_counter

from common import RESULTS_DIR, cache_for, cdn_mix_trace, report, table

from repro.cluster import CacheCluster, HashRing, replay_scored
from repro.core import LFOCache, LFOModel, LFOOnline, OptLabelConfig
from repro.gbdt import GBDTParams
from repro.obs import write_json
from repro.sim import simulate
from repro.trace import Trace

N_REQUESTS = int(os.environ.get("CLUSTER_BENCH_REQUESTS", "20000"))
SHARD_COUNTS = tuple(
    int(s)
    for s in os.environ.get("CLUSTER_BENCH_SHARDS", "1,2,4").split(",")
)
RING_SEED = 42
BATCH = 2_048

#: Modeled-aggregate speedup floors vs 1 shard (ISSUE acceptance gates).
SCALING_GATES = {2: 1.7, 4: 3.0}

FAST_PARAMS = GBDTParams(num_iterations=10)


def _train_model(requests: list, cache_size: int) -> LFOModel:
    """One warm model for every sweep point, trained on a trace prefix."""
    prefix = requests[: min(len(requests), 8_000)]
    online = LFOOnline(
        cache_size,
        window=len(prefix) // 2,
        gbdt_params=FAST_PARAMS,
        label_config=OptLabelConfig(mode="greedy"),
    )
    for request in prefix:
        online.on_request(request)
    online.finish_training()
    assert online.model is not None, "degenerate training window"
    return online.model


def _run_cluster(requests, cache_size, n_shards, model):
    """One sweep point: route the trace, return rates + digests + hits."""
    cluster = CacheCluster(cache_size, n_shards, seed=RING_SEED)
    hits: list[bool] = []
    began = perf_counter()
    with cluster:
        cluster.publish(model)
        for start in range(0, len(requests), BATCH):
            hits.extend(cluster.process(requests[start:start + BATCH]))
        wall = perf_counter() - began
        shards = cluster.shard_stats()
    cpu_rates = [s["requests"] / s["cpu_seconds"] for s in shards]
    return {
        "n_shards": n_shards,
        "requests": len(requests),
        "hits": sum(hits),
        "hit_list": hits,
        "wall_seconds": wall,
        "wall_rate": len(requests) / wall,
        "modeled_rate": sum(cpu_rates),
        "shard_cpu_seconds": [s["cpu_seconds"] for s in shards],
        "shard_requests": [s["requests"] for s in shards],
        "shard_digests": [s["score_digest"] for s in shards],
        "shard_generations": [s["generation"] for s in shards],
    }


def _reference_split(requests, cache_size, n_shards, model):
    """In-process per-shard replays: digests + hits, the identity oracle."""
    ring = HashRing(n_shards, seed=RING_SEED)
    digests, sim_hits = [], []
    for bucket in ring.partition(requests):
        split = [request for _index, request in bucket]
        digest = blake2b(digest_size=16)
        replay_scored(
            LFOCache(cache_size // n_shards, model=model), split,
            digest=digest,
        )
        digests.append(digest.hexdigest())
        # Independent oracle: the stock simulator over the same split.
        result = simulate(
            Trace(split, name="split"),
            LFOCache(cache_size // n_shards, model=model),
        )
        sim_hits.append(
            {index: hit for (index, _r), hit in zip(bucket, result.hits)}
        )
    return digests, sim_hits


def run_cluster_sweep():
    trace = cdn_mix_trace(N_REQUESTS)
    requests = list(trace)
    cache_size = cache_for(trace)
    model = _train_model(requests, cache_size)
    points = []
    for n_shards in SHARD_COUNTS:
        point = _run_cluster(requests, cache_size, n_shards, model)
        point["ref_digests"], point["ref_hits"] = _reference_split(
            requests, cache_size, n_shards, model
        )
        points.append(point)
    return points


def test_cluster_scaling(benchmark):
    points = benchmark.pedantic(run_cluster_sweep, rounds=1, iterations=1)
    base = next(p for p in points if p["n_shards"] == 1)

    rows = []
    document = {
        "n_requests": N_REQUESTS,
        "ring_seed": RING_SEED,
        "batch": BATCH,
        "host_cores": os.cpu_count(),
        "points": [],
    }
    for point in points:
        speedup = point["modeled_rate"] / base["modeled_rate"]
        identical = point["shard_digests"] == point["ref_digests"]
        rows.append([
            point["n_shards"],
            int(point["modeled_rate"]),
            round(speedup, 2),
            int(point["wall_rate"]),
            round(point["hits"] / point["requests"], 4),
            "yes" if identical else "NO",
        ])
        document["points"].append({
            "n_shards": point["n_shards"],
            "modeled_rate_rps": point["modeled_rate"],
            "modeled_speedup": speedup,
            "wall_rate_rps": point["wall_rate"],
            "wall_seconds": point["wall_seconds"],
            "shard_cpu_seconds": point["shard_cpu_seconds"],
            "shard_requests": point["shard_requests"],
            "hits": point["hits"],
            "score_digests": point["shard_digests"],
            "digests_bit_identical": identical,
        })

    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(document, RESULTS_DIR / "ext_cluster.json")
    report(
        "ext_cluster",
        table(
            ["shards", "modeled req/s", "speedup", "wall req/s",
             "ohr", "bit-identical"],
            rows,
        )
        + f"\nhost cores: {os.cpu_count()} — modeled req/s sums per-shard "
        "CPU-time service rates (one core per shard); wall req/s is this "
        "host's wall clock.\n"
        + "(gates: "
        + ", ".join(
            f">={gate}x @ {n} shards" for n, gate in SCALING_GATES.items()
        )
        + "; every shard digest bit-identical to in-process replay)",
    )

    for point in points:
        # Tentpole acceptance: shard scores bit-identical to the
        # single-process replay AND hit decisions identical to simulate
        # over the same split.
        assert point["shard_digests"] == point["ref_digests"], (
            point["n_shards"], point["shard_digests"], point["ref_digests"]
        )
        expected = {}
        for per_shard in point["ref_hits"]:
            expected.update(per_shard)
        assert point["hit_list"] == [
            expected[i] for i in range(point["requests"])
        ], point["n_shards"]
        assert all(g >= 1 for g in point["shard_generations"]), (
            "a shard never attached the published model"
        )
        gate = SCALING_GATES.get(point["n_shards"])
        if gate is not None:
            speedup = point["modeled_rate"] / base["modeled_rate"]
            assert speedup >= gate, (
                f"{point['n_shards']} shards reached only "
                f"{speedup:.2f}x modeled aggregate (gate {gate}x)"
            )
