"""Figure 8 discussion: thinning the gap features (1, 2, 4, 8, 16, ...).

The paper suggests "artificially thinning out the time gap feature space"
as a model speed-up, since importances concentrate on early gaps.  We train
with the full 50 gaps, the exponential subset, and only gap 1, comparing
prediction error and training time.

Expected shape: exponential thinning costs little accuracy vs the full set,
while a single gap is clearly worse; training gets faster as features drop.
"""

from __future__ import annotations

import time

from common import report, table

from repro.core import LFOModel, error_rates
from repro.features import thin_gaps
from repro.gbdt import GBDTParams

VARIANTS = {
    "all 50 gaps": list(range(1, 51)),
    "1,2,4,...,32": [1, 2, 4, 8, 16, 32],
    "gap 1 only": [1],
}


def run_ablation(acc_windows):
    results = {}
    for name, gaps in VARIANTS.items():
        train = thin_gaps(acc_windows.train, gaps)
        test = thin_gaps(acc_windows.test, gaps)
        t0 = time.perf_counter()
        model = LFOModel.train(train, params=GBDTParams(num_iterations=30))
        train_time = time.perf_counter() - t0
        likelihoods = model.likelihood(test.X)
        error, _, _ = error_rates(likelihoods, test.y, 0.5)
        results[name] = (len(train.names), error, train_time)
    return results


def test_gap_thinning(benchmark, acc_windows):
    results = benchmark.pedantic(
        run_ablation, args=(acc_windows,), rounds=1, iterations=1
    )
    rows = [
        [name, n_features, error * 100, t]
        for name, (n_features, error, t) in results.items()
    ]
    report(
        "ablation_gap_thinning",
        table(["variant", "features", "error%", "train_s"], rows),
    )
    full_error = results["all 50 gaps"][1]
    thin_error = results["1,2,4,...,32"][1]
    one_error = results["gap 1 only"][1]
    # Exponential thinning keeps accuracy close to the full feature set.
    assert thin_error < full_error + 0.03
    # A single gap loses real signal relative to the thinned set.
    assert one_error >= thin_error - 0.005
    # Fewer features -> faster training.
    assert results["1,2,4,...,32"][2] < results["all 50 gaps"][2]
