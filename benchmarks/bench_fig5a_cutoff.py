"""Figure 5a: false positive / false negative rates vs likelihood cutoff.

Paper's result: both error rates are roughly stable for cutoffs between
0.25 and 0.75; below 0.25 the false-negative... (note: the paper's text has
FP/FN conventions such that below 0.25 one rate blows up and above 0.75 the
other does); LFO is biased toward admitting (more false positives than
false negatives at 0.5), and FP = FN near cutoff ~0.65.

Expected shape: FP monotonically falls with the cutoff, FN rises; a wide
plateau in total error between ~0.25 and ~0.75; the crossing sits between
0.5 and 0.9.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.core import cutoff_sweep, equal_error_cutoff
from repro.viz import line_chart


def test_fig5a_cutoff_sweep(benchmark, acc_report):
    sweep = benchmark.pedantic(
        cutoff_sweep,
        args=(acc_report.likelihoods, acc_report.labels),
        kwargs={"cutoffs": np.linspace(0.0, 1.0, 21)},
        rounds=1,
        iterations=1,
    )
    eq = equal_error_cutoff(acc_report.likelihoods, acc_report.labels)
    rows = [
        [f"{c:.2f}", fp * 100, fn * 100, (fp + fn) * 100]
        for c, fp, fn in zip(
            sweep.cutoffs, sweep.false_positive, sweep.false_negative
        )
    ]
    report(
        "fig5a_cutoff",
        table(["cutoff", "FP%", "FN%", "error%"], rows)
        + f"\nequal-error cutoff: {eq:.2f} (paper: ~0.65)\n\n"
        + line_chart(
            sweep.cutoffs,
            {
                "positive (FP)": sweep.false_positive * 100,
                "negative (FN)": sweep.false_negative * 100,
            },
            x_label="cutoff",
            y_label="error %",
        ),
    )

    # Shape assertions.
    assert (np.diff(sweep.false_positive) <= 1e-12).all(), "FP must fall"
    assert (np.diff(sweep.false_negative) >= -1e-12).all(), "FN must rise"
    # Plateau: total error varies little between cutoff 0.3 and 0.7 ...
    mid = (sweep.cutoffs >= 0.3) & (sweep.cutoffs <= 0.7)
    plateau = sweep.prediction_error[mid]
    assert plateau.max() - plateau.min() < 0.10
    # ... and explodes at the extremes relative to the plateau.
    extreme = max(
        sweep.prediction_error[0], sweep.prediction_error[-1]
    )
    assert extreme > plateau.mean() * 1.5
