"""Ablation: the training-window size ``W`` (the paper's Figure 2 knob).

The paper retrains on 1M-request windows.  The window trades off label
quality and sample count (bigger is better) against adaptation lag and
cold-start time (smaller is better).  We sweep W on the standard CDN mix
and report online BHR and retrain counts.

Expected shape: tiny windows underperform (weak models, noisy labels);
performance rises and then flattens — at our trace length very large
windows start to lose again because fewer retrains happen within the
horizon.
"""

from __future__ import annotations

from common import cache_for, cdn_mix_trace, report, table

from repro.core import LFOOnline, OptLabelConfig
from repro.sim import simulate

WINDOWS = [1_000, 2_500, 5_000, 10_000]
WARMUP = 1 / 3


def run_sweep(n_requests: int = 30_000):
    trace = cdn_mix_trace(n_requests)
    cache_size = cache_for(trace, 12)
    results = {}
    for window in WINDOWS:
        lfo = LFOOnline(
            cache_size,
            window=window,
            label_config=OptLabelConfig(
                mode="segmented",
                segment_length=min(1_250, max(250, window // 4)),
            ),
        )
        sim = simulate(trace, lfo, warmup_fraction=WARMUP)
        results[window] = (sim.bhr, lfo.n_retrains)
    return results


def test_window_size(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [window, bhr, retrains]
        for window, (bhr, retrains) in results.items()
    ]
    report("ablation_window_size", table(["window", "BHR", "retrains"], rows))

    bhr = {w: r[0] for w, r in results.items()}
    best = max(bhr.values())
    # The sweet spot is an interior window, or at least the tiny window is
    # not the best configuration.
    assert bhr[1_000] < best
    # All configurations stay in a sane band (the system never collapses).
    assert min(bhr.values()) > 0.5 * best
