"""Ablation: how should OPT labels be computed at scale?

The paper's pipeline needs OPT decisions per window; this repo offers four
generators of decreasing cost: the exact min-cost flow, time-axis
segmentation (with lookahead), the paper's ranking-axis pruning, and the
rank-greedy interval packing.  We measure label time, agreement with the
exact decisions, and the prediction error of an LFO model trained on each.

Expected shape: cost drops by orders of magnitude down the list while the
downstream model's eval error moves only modestly — the reduction to
supervised learning is robust to label approximation.
"""

from __future__ import annotations

import time

import numpy as np
from common import accuracy_trace, cache_for, report, table

from repro.core import LFOModel, error_rates
from repro.features import Dataset
from repro.gbdt import GBDTParams
from repro.opt import solve_greedy, solve_opt, solve_pruned, solve_segmented

N_REQUESTS = 10_000  # 5K train + 5K eval


def run_ablation(acc_windows):
    # Use the prepared 8K/8K windows' features but re-label the train half
    # with each generator on a 5K sub-window for tractable exact solves.
    trace = accuracy_trace()
    cache_size = cache_for(trace, 12)
    train_trace = trace[:5_000]

    generators = {
        "exact": lambda: solve_opt(train_trace, cache_size).decisions,
        "segmented (1K+lookahead)": lambda: solve_segmented(
            train_trace, cache_size, 1_000
        ).decisions,
        "pruned (keep 30%)": lambda: solve_pruned(
            train_trace, cache_size, keep_fraction=0.3, segment_length=1_000
        ).decisions,
        "greedy": lambda: solve_greedy(train_trace, cache_size).decisions,
    }

    X_train = acc_windows.train.X[:5_000]
    results = {}
    exact_decisions = None
    for name, generate in generators.items():
        t0 = time.perf_counter()
        decisions = generate()
        label_time = time.perf_counter() - t0
        if name == "exact":
            exact_decisions = decisions
        agreement = float((decisions == exact_decisions).mean())
        model = LFOModel.train(
            Dataset(
                X_train, decisions.astype(np.float64), acc_windows.train.names
            ),
            params=GBDTParams(num_iterations=30),
        )
        likelihoods = model.likelihood(acc_windows.test.X)
        error, _, _ = error_rates(likelihoods, acc_windows.test.y, 0.5)
        results[name] = (label_time, agreement, error)
    return results


def test_label_modes(benchmark, acc_windows):
    results = benchmark.pedantic(
        run_ablation, args=(acc_windows,), rounds=1, iterations=1
    )
    rows = [
        [name, t, agreement, error * 100]
        for name, (t, agreement, error) in results.items()
    ]
    report(
        "ablation_label_modes",
        table(["labels", "time_s", "agree(exact)", "eval error%"], rows),
    )

    exact_time, _, exact_error = results["exact"]
    greedy_time, greedy_agree, greedy_error = results["greedy"]
    # Greedy labels are orders of magnitude cheaper ...
    assert greedy_time < 0.1 * exact_time
    # ... agree substantially with the exact decisions ...
    assert greedy_agree > 0.75
    # ... and train models within a few points of exact-label models.
    assert greedy_error < exact_error + 0.06
    seg_time, seg_agree, _ = results["segmented (1K+lookahead)"]
    assert seg_agree > 0.85
    assert seg_time < exact_time
