"""Extension experiment: request-path cost of the observability layer.

The paper's "lightweight" claim makes instrumentation a deployment
question: metrics are only admissible if collecting them does not disturb
the request path they measure.  ``repro.obs`` is designed for that —
counters fold in after the simulation loop from vectorised hit flags,
spans wrap *stages* (never individual requests), and the per-request
feature-extraction histogram is the single instrument on the hot path.

This benchmark measures end-to-end ``simulate`` throughput twice per
policy — under the default ``NullRegistry`` (observability off) and under
a live ``MetricsRegistry`` — and asserts the enabled overhead stays below
3%.  Two policies bracket the cost:

* **LRU** — the cheapest per-request work, so the worst case for relative
  simulator-loop overhead;
* **LFO-online** (serial) — exercises every instrumented stage: tracker
  latency, the window-close -> label-solve -> gbdt-fit -> model-install
  span chain, and the per-iteration GBDT histogram.

Each mode is timed ``ROUNDS`` times interleaved (fresh policy per round,
best-of taken) to suppress scheduler noise.  The enabled LFO run's full
registry snapshot is written to ``results/ext_obs_overhead.json`` — the
artifact CI uploads — alongside the usual text table.
"""

from __future__ import annotations

import os
from time import perf_counter

from common import RESULTS_DIR, cdn_mix_trace, report, stage_table, table

from repro.cache import LRUCache
from repro.core import LFOOnline, OptLabelConfig
from repro.gbdt import GBDTParams
from repro.obs import MetricsRegistry, NullRegistry, use_registry, write_json
from repro.sim import simulate

#: Smoke knobs for CI: OBS_BENCH_REQUESTS scales both traces, OBS_BENCH_ROUNDS
#: the repeat count.
N_REQUESTS = int(os.environ.get("OBS_BENCH_REQUESTS", "20000"))
N_LFO_REQUESTS = max(2_000, N_REQUESTS // 2)
ROUNDS = int(os.environ.get("OBS_BENCH_ROUNDS", "3"))
OVERHEAD_LIMIT = 0.03

FAST_PARAMS = GBDTParams(num_iterations=10)


def _policies(trace, lfo_trace):
    cache = trace.footprint() // 10
    lfo_cache = lfo_trace.footprint() // 10
    return {
        "LRU": (trace, lambda: LRUCache(cache)),
        "LFO-online": (
            lfo_trace,
            lambda: LFOOnline(
                lfo_cache,
                window=max(1_000, len(lfo_trace) // 3),
                gbdt_params=FAST_PARAMS,
                n_gaps=10,
                label_config=OptLabelConfig(
                    mode="segmented", segment_length=1_000
                ),
            ),
        ),
    }


def _best_time(trace, factory, registry) -> float:
    """Best-of-ROUNDS wall-clock for one (policy, registry) combination."""
    best = float("inf")
    for _ in range(ROUNDS):
        policy = factory()
        with use_registry(registry):
            started = perf_counter()
            simulate(trace, policy)
            best = min(best, perf_counter() - started)
    return best


def run_obs_overhead():
    trace = cdn_mix_trace(N_REQUESTS)
    lfo_trace = cdn_mix_trace(N_LFO_REQUESTS, seed=43)
    rows = []
    overheads = {}
    snapshot = None
    for name, (bench_trace, factory) in _policies(trace, lfo_trace).items():
        null_registry = NullRegistry()
        live_registry = MetricsRegistry()
        t_null = _best_time(bench_trace, factory, null_registry)
        t_live = _best_time(bench_trace, factory, live_registry)
        overhead = (t_live - t_null) / t_null
        overheads[name] = overhead
        n = len(bench_trace)
        rows.append(
            [name, n, n / t_null, n / t_live, 100.0 * overhead]
        )
        snapshot = live_registry  # the LFO registry (last) goes to JSON
    return rows, overheads, snapshot


def test_obs_overhead(benchmark):
    rows, overheads, registry = benchmark.pedantic(
        run_obs_overhead, rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(registry.to_dict(), RESULTS_DIR / "ext_obs_overhead.json")
    report(
        "ext_obs_overhead",
        table(
            ["policy", "requests", "null_req_s", "enabled_req_s", "ovh_pct"],
            rows,
        )
        + f"\n(best of {ROUNDS} rounds per mode; limit "
        f"{100 * OVERHEAD_LIMIT:.0f}%)\n\n"
        "per-stage breakdown of the instrumented LFO run:\n"
        + stage_table(registry),
    )
    # The deployability gate: observability must stay in the noise floor.
    for name, overhead in overheads.items():
        assert overhead < OVERHEAD_LIMIT, (name, overhead)
