"""Extension experiment: request-path cost of the observability layer.

The paper's "lightweight" claim makes instrumentation a deployment
question: metrics are only admissible if collecting them does not disturb
the request path they measure.  ``repro.obs`` is designed for that —
counters fold in after the simulation loop from vectorised hit flags,
spans wrap *stages* (never individual requests), and the per-request
feature-extraction histogram is the single instrument on the hot path.

This benchmark runs end-to-end ``simulate`` three ways per policy —
under the default ``NullRegistry`` (observability off), under a live
``MetricsRegistry``, and under a ``WindowedRegistry`` with the full
streaming stack attached (telemetry windows scaled to the trace,
``HealthMonitor`` drift detectors, ``SloEngine`` on the default spec) —
and gates on the registry's *self-accounted* request-path bill: the
``sim.metrics_fold`` and ``sim.latency_cluster`` spans divided by run
wall time must stay below 3% in both enabled modes.  Direct accounting
is deliberate: subtracting a null-mode wall time from an enabled-mode
wall time needs both numbers stable to well under the 3% budget, and on
shared CI hosts the run-to-run spread of identical code exceeds that by
an order of magnitude.  The null-mode column remains in the table as
throughput context.  Two policies bracket the cost:

* **LRU** — the cheapest per-request work, so the worst case for relative
  simulator-loop overhead;
* **LFO-online** (serial) — exercises every instrumented stage: tracker
  latency, the window-close -> label-solve -> gbdt-fit -> model-install
  span chain, and the per-iteration GBDT histogram.

Each mode is timed ``ROUNDS`` times interleaved (fresh policy per
round, registry reused so its spans accumulate the bill for exactly the
timed runs).  The enabled LFO registry's full snapshot — summed over
its rounds — is written to ``results/ext_obs_overhead.json``, the
artifact CI uploads, alongside the usual text table.
"""

from __future__ import annotations

import os
from time import perf_counter

from common import RESULTS_DIR, cdn_mix_trace, report, stage_table, table

from repro.cache import LRUCache
from repro.core import LFOOnline, OptLabelConfig
from repro.gbdt import GBDTParams
from repro.obs import (
    HealthMonitor,
    MetricsRegistry,
    NullRegistry,
    SloEngine,
    SloSpec,
    WindowedRegistry,
    use_registry,
    write_json,
)
from repro.sim import simulate

#: Smoke knobs for CI: OBS_BENCH_REQUESTS scales both traces, OBS_BENCH_ROUNDS
#: the repeat count.
N_REQUESTS = int(os.environ.get("OBS_BENCH_REQUESTS", "20000"))
N_LFO_REQUESTS = max(2_000, N_REQUESTS // 2)
ROUNDS = int(os.environ.get("OBS_BENCH_ROUNDS", "3"))
OVERHEAD_LIMIT = 0.03
#: Streaming-telemetry window for the "windowed" mode.  Scaled with the
#: trace so smoke runs still roll complete windows; window work is
#: O(trace), so the per-window length sets how often the cold-cache
#: fold/roll price is paid, not how much total work is done.
TELEMETRY_WINDOW = max(2_000, N_REQUESTS // 2)

FAST_PARAMS = GBDTParams(num_iterations=10)


def _policies(trace, lfo_trace):
    cache = trace.footprint() // 10
    lfo_cache = lfo_trace.footprint() // 10
    return {
        "LRU": (trace, lambda: LRUCache(cache)),
        "LFO-online": (
            lfo_trace,
            lambda: LFOOnline(
                lfo_cache,
                window=max(1_000, len(lfo_trace) // 3),
                gbdt_params=FAST_PARAMS,
                n_gaps=10,
                label_config=OptLabelConfig(
                    mode="segmented", segment_length=1_000
                ),
            ),
        ),
    }


def _run_rounds(trace, factory, registries: dict, rounds: int) -> dict:
    """Per registry mode: (best single-run wall, summed wall), rounds
    interleaved.

    Interleaving (null, enabled, windowed, null, enabled, ...) matters on
    a shared host: back-to-back blocks would fold any slow load drift
    entirely into one mode's numbers, while interleaved rounds expose
    every mode to the same noise.  The best-of is reported as throughput
    context; the summed wall is the denominator for the self-accounted
    overhead gate (see :func:`_accounted_overhead`).
    """
    times = {name: (float("inf"), 0.0) for name in registries}
    for _ in range(rounds):
        for name, registry in registries.items():
            policy = factory()
            with use_registry(registry):
                started = perf_counter()
                simulate(trace, policy)
                elapsed = perf_counter() - started
            best, total = times[name]
            times[name] = (min(best, elapsed), total + elapsed)
    return times


def _accounted_overhead(registry, total_wall: float) -> float:
    """Telemetry seconds actually spent on the request path, as a
    fraction of the mode's total (summed) run time.

    The registry bills its own request-path work: every mid-run fold and
    window roll runs inside the ``sim.metrics_fold`` span, and each
    timed latency cluster inside ``sim.latency_cluster`` (whose pure
    policy time is subtracted back out via the latency histogram's
    ``total``).  Numerator and denominator come from the *same* runs, so
    host frequency drift and interference cancel — unlike the
    difference-of-totals estimator, which on a busy shared host shows a
    per-round spread an order of magnitude above the 3% budget it is
    supposed to resolve.  What this direct bill excludes (folder setup,
    the end-of-run snapshot, diffuse cache effects on the bulk loop) is
    bounded well under half a percent: setup and export are O(10us)
    one-offs, and the bulk loop's per-request time under telemetry
    matches the null path to within measurement noise.
    """
    snapshot = registry.to_dict()
    spans = snapshot["spans"]
    cluster = spans.get("sim.latency_cluster", {}).get("total_seconds", 0.0)
    fold = spans.get("sim.metrics_fold", {}).get("total_seconds", 0.0)
    hist = snapshot["histograms"].get("sim.decision_latency_seconds", {})
    policy_time_in_clusters = hist.get("total", 0.0)
    return (fold + max(0.0, cluster - policy_time_in_clusters)) / total_wall


def _windowed_registry() -> WindowedRegistry:
    """The full streaming stack: windows + drift detectors + SLO engine."""
    registry = WindowedRegistry(every_requests=TELEMETRY_WINDOW)
    HealthMonitor().attach(registry)
    SloEngine(SloSpec.default()).attach(registry)
    return registry


def run_obs_overhead():
    trace = cdn_mix_trace(N_REQUESTS)
    lfo_trace = cdn_mix_trace(N_LFO_REQUESTS, seed=43)
    rows = []
    overheads = {}
    snapshot = None
    for name, (bench_trace, factory) in _policies(trace, lfo_trace).items():
        live_registry = MetricsRegistry()
        windowed_registry = _windowed_registry()
        # A full LRU pass is ~20ms, so extra rounds are nearly free there
        # — and LRU is the stress case: the cheapest per-request work, so
        # the telemetry bill is largest *relative* to the run.
        rounds = ROUNDS if name != "LRU" else max(3 * ROUNDS, 9)
        times = _run_rounds(
            bench_trace,
            factory,
            {
                "null": NullRegistry(),
                "enabled": live_registry,
                "windowed": windowed_registry,
            },
            rounds,
        )
        t_null, _ = times["null"]
        t_live, live_total = times["enabled"]
        t_windowed, win_total = times["windowed"]
        # The registries were reused across rounds, so their spans hold
        # the summed telemetry bill for exactly the runs behind *_total.
        overheads[f"{name}/enabled"] = _accounted_overhead(
            live_registry, live_total
        )
        overheads[f"{name}/windowed"] = _accounted_overhead(
            windowed_registry, win_total
        )
        n = len(bench_trace)
        rows.append(
            [
                name, n, n / t_null, n / t_live, n / t_windowed,
                100.0 * overheads[f"{name}/enabled"],
                100.0 * overheads[f"{name}/windowed"],
            ]
        )
        snapshot = live_registry  # the LFO registry (last) goes to JSON
    return rows, overheads, snapshot


def test_obs_overhead(benchmark):
    rows, overheads, registry = benchmark.pedantic(
        run_obs_overhead, rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_json(registry.to_dict(), RESULTS_DIR / "ext_obs_overhead.json")
    report(
        "ext_obs_overhead",
        table(
            [
                "policy", "requests", "null_req_s", "enabled_req_s",
                "windowed_req_s", "ovh_pct", "win_ovh_pct",
            ],
            rows,
        )
        + f"\n(req/s = best of {ROUNDS} interleaved rounds per mode, 3x "
        "for LRU; ovh_pct = self-accounted telemetry seconds "
        "(fold/roll + latency-cluster spans, policy time subtracted) "
        f"over total run wall; limit {100 * OVERHEAD_LIMIT:.0f}%; "
        f"windowed = telemetry ring every {TELEMETRY_WINDOW} requests + "
        "health detectors + SLO engine)\n\n"
        "per-stage breakdown of the instrumented LFO run:\n"
        + stage_table(registry),
    )
    # The deployability gate: observability must stay in the noise floor.
    for name, overhead in overheads.items():
        assert overhead < OVERHEAD_LIMIT, (name, overhead)
