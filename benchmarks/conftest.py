"""Benchmark-suite pytest configuration.

Expensive fixtures (the shared trace, featurised windows, a trained model)
are module-scoped or session-scoped so each figure's benchmark pays only
for what it measures.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from common import accuracy_trace, cache_for  # noqa: E402

from repro.core import OptLabelConfig, prepare_windows, train_and_evaluate


@pytest.fixture(scope="session")
def acc_trace():
    """Shared trace for the accuracy experiments (Figs 5a-c, 8)."""
    return accuracy_trace()


@pytest.fixture(scope="session")
def acc_cache(acc_trace):
    return cache_for(acc_trace, 12)


@pytest.fixture(scope="session")
def acc_windows(acc_trace, acc_cache):
    """Featurised + labelled train/eval windows (8K + 8K requests)."""
    return prepare_windows(
        acc_trace, acc_cache, train_size=8_000, test_size=8_000,
        label_config=OptLabelConfig(mode="segmented", segment_length=1_000),
    )


@pytest.fixture(scope="session")
def acc_report(acc_windows):
    """A model trained with the paper's defaults plus its eval predictions."""
    return train_and_evaluate(acc_windows)
