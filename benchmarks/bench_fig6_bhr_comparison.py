"""Figure 6: byte hit ratio of LFO vs state-of-the-art caching systems.

Paper's result on the production trace (256GB cache):

* ranking: OPT > LFO > S4LRU > LFUDA/LRU-K/GD-Wheel/... > LRU;
* LFO improves BHR ~6% over the next-best system (S4LRU);
* AdaptSize, Hyperbolic and LHD optimise the *object* hit ratio and pay
  with very low BHRs;
* on OHR, LFO is nevertheless close to LHD (the best OHR system).

Scaled here to a 30K-request CDN-like mix with cache = footprint/12.
Expected shape: same ordering between those groups; LFO above every
online heuristic and below OPT.
"""

from __future__ import annotations

from common import cache_for, cdn_mix_trace, report, table

from repro.core import LFOOnline, OptLabelConfig
from repro.opt import solve_segmented
from repro.sim import (
    compare_policies,
    paired_bootstrap_diff,
    policy_factories,
    simulate,
)
from repro.trace import CostModel, Trace
from repro.viz import bar_chart

WARMUP = 1 / 3

#: The paper's Figure 6 policy set (we add RND, GDSF, TinyLFU and RLC for
#: context; extras like FIFO/CLOCK/GDS/2Q stay out to keep the table the
#: paper's).
FIG6_POLICIES = [
    "RND", "LRU", "LRU-K", "LFUDA", "S4LRU", "GDSF", "GD-Wheel",
    "AdaptSize", "Hyperbolic", "LHD", "TinyLFU", "RLC",
]


def run_fig6(n_requests: int = 30_000):
    trace = cdn_mix_trace(n_requests)
    cache_size = cache_for(trace, 12)

    results = compare_policies(
        trace, cache_size, factories=policy_factories(FIG6_POLICIES),
        warmup_fraction=WARMUP,
    )

    lfo = LFOOnline(
        cache_size, window=5_000,
        label_config=OptLabelConfig(mode="segmented", segment_length=1_250),
    )
    results["LFO"] = simulate(trace, lfo, warmup_fraction=WARMUP)

    # LFO trained for the OHR objective (unit costs), for the OHR claim.
    ohr_trace = Trace(CostModel.apply(trace.requests, CostModel.OHR))
    lfo_ohr = LFOOnline(
        cache_size, window=5_000,
        label_config=OptLabelConfig(mode="segmented", segment_length=1_250),
    )
    results["LFO(OHR)"] = simulate(ohr_trace, lfo_ohr, warmup_fraction=WARMUP)

    seg = solve_segmented(trace, cache_size, segment_length=2_500)
    opt_bhr_bound = 1.0 - seg.miss_cost / float(trace.sizes.sum())
    return results, opt_bhr_bound, trace


def test_fig6_bhr_comparison(benchmark):
    results, opt_bhr, trace = benchmark.pedantic(
        run_fig6, rounds=1, iterations=1
    )
    ordering = sorted(results, key=lambda k: -results[k].bhr)
    rows = [["OPT (bound)", opt_bhr, float("nan")]] + [
        [name, results[name].bhr, results[name].ohr] for name in ordering
    ]
    chart = bar_chart(
        [("OPT (bound)", opt_bhr)]
        + [(name, results[name].bhr) for name in ordering]
    )
    # Is LFO's lead over the best heuristic statistically real?  Paired
    # block bootstrap over the post-warmup requests.
    warm = int(WARMUP * len(trace))
    heuristic_names = [
        n for n in results if n not in ("LFO", "LFO(OHR)")
    ]
    best = max(heuristic_names, key=lambda n: results[n].bhr)
    ci = paired_bootstrap_diff(
        results["LFO"].hits[warm:],
        results[best].hits[warm:],
        trace.sizes[warm:],
    )
    verdict = (
        f"LFO - {best} BHR diff: {ci.estimate:+.4f} "
        f"[{ci.lower:+.4f}, {ci.upper:+.4f}] (95% CI, "
        f"{'significant' if ci.excludes_zero() else 'not significant'})"
    )
    report(
        "fig6_bhr_comparison",
        table(["policy", "BHR", "OHR"], rows) + "\n\n" + chart
        + "\n\n" + verdict,
    )
    assert ci.estimate > 0 and ci.excludes_zero(), verdict

    bhr = {name: r.bhr for name, r in results.items()}
    ohr = {name: r.ohr for name, r in results.items()}
    heuristics = [
        name for name in bhr if name not in ("LFO", "LFO(OHR)")
    ]
    best_heuristic = max(heuristics, key=lambda n: bhr[n])

    # Headline claim: LFO beats every online heuristic on BHR.
    assert bhr["LFO"] > bhr[best_heuristic], (
        f"LFO {bhr['LFO']:.4f} must beat {best_heuristic} "
        f"{bhr[best_heuristic]:.4f}"
    )
    # ... and stays below (approximately) OPT.
    assert bhr["LFO"] < opt_bhr + 0.02
    # The OHR-focused systems pay with low BHRs (bottom of the table).
    for name in ("AdaptSize", "Hyperbolic", "LHD"):
        assert bhr[name] < bhr["S4LRU"]
        assert ohr[name] > ohr["LRU"]
    # OHR-objective LFO is competitive with the best OHR heuristic.
    best_ohr_heuristic = max(heuristics, key=lambda n: ohr[n])
    assert ohr["LFO(OHR)"] > 0.8 * ohr[best_ohr_heuristic]
