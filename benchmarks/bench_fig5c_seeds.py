"""Figure 5c: sensitivity to random seeds and trace subsets.

Paper's result: across 100 random seeds on 100 trace subsets, LFO's
prediction error stays within a band of ~0.5% — i.e. the method is robust
to the randomness that plagues model-free RL (the paper's central
robustness argument).

Here: 25 (seed, subset) combinations on the shared accuracy window, with
bagging/feature subsampling enabled so the seed actually enters training.
Expected shape: the error band (max - min) is small in absolute terms.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.core import train_and_evaluate
from repro.gbdt import GBDTParams

N_RUNS = 25
SUBSET_FRACTION = 0.75


def run_seeds(acc_windows) -> list[float]:
    n_train = len(acc_windows.train)
    size = int(SUBSET_FRACTION * n_train)
    errors = []
    for seed in range(N_RUNS):
        rng = np.random.default_rng(1_000 + seed)
        subset = np.sort(rng.choice(n_train, size=size, replace=False))
        rep = train_and_evaluate(
            acc_windows,
            params=GBDTParams(
                num_iterations=30,
                bagging_fraction=0.8,
                feature_fraction=0.9,
                seed=seed,
            ),
            train_subset=subset,
        )
        errors.append(rep.prediction_error)
    return errors


def test_fig5c_seed_robustness(benchmark, acc_windows):
    errors = benchmark.pedantic(
        run_seeds, args=(acc_windows,), rounds=1, iterations=1
    )
    arr = np.array(errors)
    rows = [
        ["best", float(arr.min()) * 100],
        ["worst", float(arr.max()) * 100],
        ["mean", float(arr.mean()) * 100],
        ["std", float(arr.std()) * 100],
        ["band (max-min)", float(arr.max() - arr.min()) * 100],
    ]
    report("fig5c_seeds", table(["statistic", "error%"], rows))

    # The paper's band is 0.5% on 1M-request windows; with 6K-sample
    # training subsets we allow a proportionally wider but still tight band.
    assert arr.max() - arr.min() < 0.04, "seed sensitivity too high"
    assert arr.std() < 0.015
