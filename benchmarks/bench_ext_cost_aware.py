"""Extension experiment: heterogeneous retrieval costs (paper §2.1).

Section 2.1 notes the cost can be instantiated "from an object's average
retrieval latency", and Figure 8 observes that under BHR costs LFO ignores
the cost feature because it is redundant with size.  The natural corollary,
tested here: with genuinely heterogeneous costs (two content classes with
identical size/popularity profiles but 10x different origin latency),

* cost-aware heuristics (GDSF, GD-Wheel) save far more retrieval cost than
  cost-blind LRU;
* LFO trained on cost-aware OPT labels closes most of that gap (within
  ~10% of the specialised heuristics' cost hit ratio) while *dominating*
  them on BHR and OHR — the learned policy balances the objectives instead
  of sacrificing everything to one;
* the cost feature's importance in LFO's trees rises from ~nothing
  (Fig. 8) to a meaningful share of splits.
"""

from __future__ import annotations

from common import report, table

from repro.cache import GDSFCache, GDWheelCache, LRUCache
from repro.core import LFOOnline, OptLabelConfig
from repro.sim import simulate
from repro.trace import ContentClass, compute_stats, generate_mixed_trace

WARMUP = 1 / 3

#: Identical size/popularity, 10x different retrieval cost (origin latency).
NEAR = ContentClass(
    "near-origin", 4_000, 0.8, 100, 0.8, 2_000, cost_median=10.0
)
FAR = ContentClass(
    "far-origin", 4_000, 0.8, 100, 0.8, 2_000, cost_median=100.0
)


def run_cost_experiment(n_requests: int = 24_000):
    trace = generate_mixed_trace([NEAR, FAR], [0.5, 0.5], n_requests, seed=6)
    # Strong contention (footprint/60): only under pressure does the cost
    # dimension drive OPT's choices — with a roomy cache everything worth
    # caching fits and cost is irrelevant.
    cache_size = compute_stats(trace).footprint_bytes // 60

    lfo = LFOOnline(
        cache_size, window=4_000,
        label_config=OptLabelConfig(mode="segmented", segment_length=1_000),
    )
    results = {
        "LFO": simulate(trace, lfo, warmup_fraction=WARMUP),
        "GDSF": simulate(trace, GDSFCache(cache_size), warmup_fraction=WARMUP),
        "GD-Wheel": simulate(
            trace, GDWheelCache(cache_size), warmup_fraction=WARMUP
        ),
        "LRU": simulate(trace, LRUCache(cache_size), warmup_fraction=WARMUP),
    }
    cost_importance = 0.0
    if lfo.model is not None:
        fractions = lfo.model.classifier.feature_importance_fraction()
        cost_importance = float(fractions[1])  # column 1 = cost
    return results, cost_importance


def test_cost_aware(benchmark):
    results, cost_importance = benchmark.pedantic(
        run_cost_experiment, rounds=1, iterations=1
    )
    rows = [
        [name, r.chr, r.bhr, r.ohr] for name, r in results.items()
    ]
    report(
        "ext_cost_aware",
        table(["policy", "cost HR", "BHR", "OHR"], rows)
        + f"\nLFO cost-feature importance: {cost_importance:.1%} of splits"
        " (vs ~0 under BHR costs, Fig. 8)",
    )

    cost_hr = {name: r.chr for name, r in results.items()}
    bhr = {name: r.bhr for name, r in results.items()}
    # Cost-aware heuristics beat cost-blind LRU on saved retrieval cost.
    assert cost_hr["GDSF"] > cost_hr["LRU"]
    # LFO learns most of the cost sensitivity: far above LRU, within ~10%
    # of the specialised heuristics...
    assert cost_hr["LFO"] > 1.5 * cost_hr["LRU"]
    assert cost_hr["LFO"] >= 0.85 * max(
        cost_hr["GDSF"], cost_hr["GD-Wheel"]
    )
    # ... while dominating them on byte hit ratio (balanced objectives).
    assert bhr["LFO"] > bhr["GDSF"]
    # The cost feature is now informative (Fig. 8 inversion).
    assert cost_importance > 0.02
