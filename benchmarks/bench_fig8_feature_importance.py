"""Figure 8: relative importance of LFO's features (split counts).

Paper's result: object size dominates (~28% of tree branches), the free
cache space feature is used in ~10% of branches, the cost feature is unused
(it is redundant with size under the BHR objective), gap features 1-4 are
used heavily, with meaningful use extending out to gap ~16 and sporadic use
at higher gaps.

Expected shape here: size + free_bytes among the top features; cost (which
equals size under BHR costs) contributes ~nothing extra; early gaps
dominate later gaps.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.viz import bar_chart


def test_fig8_feature_importance(benchmark, acc_report, acc_windows):
    model = acc_report.model
    fractions = benchmark.pedantic(
        model.classifier.feature_importance_fraction, rounds=1, iterations=1
    )
    names = acc_windows.train.names
    order = np.argsort(-fractions)
    rows = [
        [names[i], fractions[i] * 100]
        for i in order
        if fractions[i] > 0 or names[i] in ("size", "cost", "free_bytes")
    ]
    chart = bar_chart(
        [(names[i], float(fractions[i]) * 100) for i in order[:15]],
        fmt="{:.1f}%",
    )
    report(
        "fig8_feature_importance",
        table(["feature", "% of splits"], rows) + "\n\ntop 15:\n" + chart,
    )

    by_name = dict(zip(names, fractions))
    # Size is a headline feature.
    assert by_name["size"] >= 0.03
    # The free-bytes feature carries real weight (paper: ~10%).
    assert by_name["free_bytes"] >= 0.03
    # Cost is redundant with size under BHR costs: the learner leans on one
    # of the two identical columns, so together they behave like "size".
    # Early gaps dominate late gaps.
    early = sum(by_name[f"gap_{k}"] for k in range(1, 5))
    late = sum(by_name[f"gap_{k}"] for k in range(40, 51))
    assert early > late
    # Gap features beyond the first few still see *some* use (the paper's
    # argument for keeping a long history).
    mid = sum(by_name[f"gap_{k}"] for k in range(5, 17))
    assert mid > 0
