"""Figure 7: prediction throughput vs number of predictor threads.

Paper's result (44-core Xeon, C++/LightGBM): ~300K predictions/s on one
thread, scaling almost linearly to >11M/s on 44 threads; two threads
suffice for a 40 Gbit/s link at 32KB mean object size, while 500B objects
need all 44 threads.

Here: batch scoring through the flattened
:class:`repro.gbdt.CompiledPredictor` (C kernel when a toolchain is
present, vectorised numpy otherwise) over a worker pool on whatever
cores the host has.  Absolute rates differ from the paper's hardware,
but we reproduce (a) the rate measurement, (b) the worker sweep, and
(c) the Gbit/s arithmetic for 32KB and 500B objects.  Expected shape:
throughput does not degrade as workers are added, and the Gbit/s
conversion shows large objects need far fewer workers than tiny ones.
"""

from __future__ import annotations

import os

from common import report, table

from repro.core import gbits_served, measure_throughput
from repro.viz import line_chart

THREADS = [1, 2, 4]


def run_fig7(acc_report, acc_windows):
    X = acc_windows.test.X
    points = [
        measure_throughput(
            acc_report.model, X, threads=t, batch_size=4_096,
            min_duration=0.6, mode="process",
        )
        for t in THREADS
    ]
    return points


def test_fig7_throughput(benchmark, acc_report, acc_windows):
    points = benchmark.pedantic(
        run_fig7, args=(acc_report, acc_windows), rounds=1, iterations=1
    )
    rows = [
        [
            p.threads,
            int(p.requests_per_second),
            gbits_served(p.requests_per_second, 32_000),
            gbits_served(p.requests_per_second, 500),
        ]
        for p in points
    ]
    report(
        "fig7_throughput",
        table(
            ["threads", "req/s", "Gbit/s @32KB", "Gbit/s @500B"], rows
        )
        + f"\nhost cores: {os.cpu_count()}\n\n"
        + line_chart(
            THREADS,
            {"throughput": [p.requests_per_second for p in points]},
            x_label="workers", y_label="req/s",
        ),
    )

    rates = {p.threads: p.requests_per_second for p in points}
    # Positive throughput at every worker count.
    assert all(r > 0 for r in rates.values())
    # Adding a second worker must not collapse throughput (workers are
    # processes, so they scale with physical cores); allow generous noise
    # margins on a small shared machine.
    assert rates[2] > 0.8 * rates[1]
    # The paper's bandwidth arithmetic: at equal request rate, 32KB objects
    # fill 64x the bandwidth of 500B objects.
    assert gbits_served(rates[1], 32_000) / gbits_served(rates[1], 500) == 64
