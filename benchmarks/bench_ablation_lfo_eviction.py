"""Section 5 ("policy design"): how much does the eviction rule matter?

The paper finds a 20% gap between LFO and OPT despite 93% prediction
accuracy and attributes it to *policy design* — how a ranking of objects is
turned into admission+eviction behaviour.  We isolate that effect by
replaying the exact same OPT admission decisions with different eviction
rules (oracle farthest-in-future vs LRU), and by running LFO with its
likelihood-ranked eviction vs an admit-only variant.

Expected shape: with identical (perfect) admissions, oracle eviction beats
LRU eviction — i.e. the knowledge gap is not only about admission — and
LFO's likelihood eviction lands between LRU and the oracle.
"""

from __future__ import annotations

from common import cache_for, cdn_mix_trace, report, table

from repro.cache import OptReplayCache
from repro.core import LFOOnline, OptLabelConfig
from repro.opt import solve_segmented
from repro.sim import simulate

WARMUP = 1 / 3


def run_ablation(n_requests: int = 20_000):
    trace = cdn_mix_trace(n_requests)
    cache_size = cache_for(trace, 12)
    decisions = solve_segmented(trace, cache_size, 2_500).decisions

    results = {}
    for eviction in ("belady", "lru"):
        replay = OptReplayCache(cache_size, decisions, trace, eviction=eviction)
        results[f"OPT-admission + {eviction}-eviction"] = simulate(
            trace, replay, warmup_fraction=WARMUP
        ).bhr

    label_config = OptLabelConfig(mode="segmented", segment_length=1_250)
    variants = {
        "LFO (likelihood eviction)": dict(),
        "LFO (admission-only, LRU eviction)": dict(eviction="lru"),
        "LFO (batch rescore every 500)": dict(rescore_interval=500),
    }
    for name, kwargs in variants.items():
        lfo = LFOOnline(
            cache_size, window=5_000, label_config=label_config, **kwargs
        )
        results[name] = simulate(trace, lfo, warmup_fraction=WARMUP).bhr
    return results


def test_lfo_eviction_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = [[name, bhr] for name, bhr in results.items()]
    report("ablation_lfo_eviction", table(["configuration", "BHR"], rows))

    oracle = results["OPT-admission + belady-eviction"]
    lru = results["OPT-admission + lru-eviction"]
    lfo = results["LFO (likelihood eviction)"]
    # With admissions held fixed at OPT's, oracle eviction is at least on
    # par with LRU eviction (they converge when OPT's admissions alone
    # already fit the working set; the oracle never does *worse* than noise).
    assert oracle >= lru - 0.01
    # LFO (imperfect admissions, learned eviction) is within reach of the
    # oracle-evicted replay and not catastrophically below it.
    assert lfo > 0.75 * oracle
    # The §5 policy-design variants stay within the same band: neither
    # admission-only LFO nor batch rescoring collapses performance.
    for variant in (
        "LFO (admission-only, LRU eviction)",
        "LFO (batch rescore every 500)",
    ):
        assert results[variant] > 0.85 * lfo, (variant, results[variant])
