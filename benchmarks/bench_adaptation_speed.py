"""Section 3 claim: LFO "adapts to new request traffic with speeds
comparable to state-of-the-art research systems [AdaptSize, LHD]".

We flip the content mix mid-trace (web-dominated -> software-download-
dominated, the Section 1 load-balancing scenario) and compare the windowed
BHR of online LFO against the two self-tuning research systems and LRU.
``LFO-bg`` runs the same loop with ``background=True`` — retraining off the
request path — to show what the non-blocking hand-over costs in adaptation
lag (model swaps land one trainer-latency later; windows closing while the
trainer is busy are dropped and counted).

Expected shape: all adaptive systems dip at the shift and recover; LFO's
post-shift steady-state BHR is at least on par with the self-tuning
heuristics (its window retraining bounds the adaptation delay), and clearly
above un-tuned LRU behaviour is not required — LRU adapts trivially — but
LFO must not be left behind after retraining.
"""

from __future__ import annotations

import numpy as np
from common import report, table

from repro.cache import AdaptSizeCache, LHDCache, LRUCache
from repro.core import LFOOnline, OptLabelConfig
from repro.sim import simulate
from repro.trace import ContentClass, compute_stats, generate_mix_shift_trace
from repro.viz import sparkline

WINDOW = 3_000
PHASE = 12_000


def run_adaptation():
    web = ContentClass("web", 3_000, 1.0, 50, 1.0, 1_000)
    software = ContentClass("software", 300, 1.0, 2_000, 1.0, 20_000)
    trace = generate_mix_shift_trace(
        [web, software],
        phase_shares=[[0.9, 0.1], [0.2, 0.8]],
        requests_per_phase=PHASE,
        seed=3,
    )
    cache_size = compute_stats(trace).footprint_bytes // 10

    policies = {
        "LFO": LFOOnline(
            cache_size, window=WINDOW,
            label_config=OptLabelConfig(mode="segmented", segment_length=1_000),
        ),
        "LFO-bg": LFOOnline(
            cache_size, window=WINDOW,
            label_config=OptLabelConfig(mode="segmented", segment_length=1_000),
            background=True,
        ),
        "AdaptSize": AdaptSizeCache(cache_size, tuning_interval=WINDOW),
        "LHD": LHDCache(cache_size, reconfigure_interval=WINDOW),
        "LRU": LRUCache(cache_size),
    }
    series = {}
    training = {}
    for name, policy in policies.items():
        series[name] = simulate(trace, policy, series_window=WINDOW).series
        if isinstance(policy, LFOOnline):
            policy.finish_training()
            policy.close()
            training[name] = dict(policy.training_stats)
    return series, training


def test_adaptation_speed(benchmark):
    series, training = benchmark.pedantic(
        run_adaptation, rounds=1, iterations=1
    )
    n_windows = len(next(iter(series.values())))
    shift_window = PHASE // WINDOW
    rows = []
    for w in range(n_windows):
        rows.append(
            [w if w != shift_window else f"{w}*"]
            + [series[name][w] for name in series]
        )
    sparks = "\n".join(
        f"{name:<10} {sparkline(s)}" for name, s in series.items()
    )
    counters = "\n".join(
        f"{name:<10} retrains={t['n_retrains']} "
        f"skipped={t['n_skipped_retrains']} "
        f"last_train={t['last_training_seconds']:.2f}s"
        for name, t in training.items()
    )
    report(
        "adaptation_speed",
        table(["window"] + list(series), rows)
        + "\n(* = first window after the mix shift)\n\n" + sparks
        + "\n\n" + counters,
    )

    # Post-shift steady state: the last two windows of phase 2.
    post = {name: float(np.mean(s[-2:])) for name, s in series.items()}
    # LFO keeps pace with the self-tuning research systems after the shift.
    assert post["LFO"] >= 0.9 * max(post["AdaptSize"], post["LHD"]), post
    # Non-blocking retraining still adapts: it retrains at least once and
    # lands near the inline loop's post-shift regime (swaps lag one
    # trainer-latency; busy-trainer windows are dropped, so the bar is
    # deliberately loose).
    assert training["LFO-bg"]["n_retrains"] >= 1, training
    assert post["LFO-bg"] >= 0.6 * post["LFO"], post
    # And the shift really is a shock: every policy's post-shift BHR regime
    # differs from the pre-shift windows (sanity check on the workload).
    pre = {name: float(np.mean(s[1:shift_window])) for name, s in series.items()}
    assert any(abs(pre[n] - post[n]) > 0.02 for n in series)
