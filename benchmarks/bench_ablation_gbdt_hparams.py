"""Section 3 hyperparameter claims.

The paper: with LightGBM defaults minus iterations=30, accuracy is >93%;
"for larger iteration counts and lower learning rates, LFO's accuracy
improves somewhat (to 95%); for larger tree sizes, LFO is prone to
overfitting, which decreases the accuracy (to 88%)".

We sweep (iterations, learning rate, num_leaves) around the paper's
configuration.  Expected shape: more iterations + lower rate >= baseline;
much larger trees do not improve and tend to hurt generalisation.
"""

from __future__ import annotations

from common import report, table

from repro.core import train_and_evaluate
from repro.gbdt import GBDTParams

CONFIGS = {
    "paper (30 it)": GBDTParams(num_iterations=30),
    "more+slower (100 it, lr .05)": GBDTParams(
        num_iterations=100, learning_rate=0.05
    ),
    "fewer (10 it)": GBDTParams(num_iterations=10),
    "huge trees (511 leaves)": GBDTParams(
        num_iterations=30, num_leaves=511, min_data_in_leaf=2
    ),
}


def run_ablation(acc_windows):
    return {
        name: train_and_evaluate(acc_windows, params=params).prediction_error
        for name, params in CONFIGS.items()
    }


def test_gbdt_hparams(benchmark, acc_windows):
    errors = benchmark.pedantic(
        run_ablation, args=(acc_windows,), rounds=1, iterations=1
    )
    rows = [[name, err * 100] for name, err in errors.items()]
    report("ablation_gbdt_hparams", table(["config", "error%"], rows))

    base = errors["paper (30 it)"]
    # More iterations at a lower rate matches or improves the baseline.
    assert errors["more+slower (100 it, lr .05)"] <= base + 0.01
    # Severely truncated boosting is worse than (or equal to) the baseline.
    assert errors["fewer (10 it)"] >= base - 0.01
    # Giant trees overfit: they must not be meaningfully better, and are
    # usually worse (the paper's 93% -> 88% observation).
    assert errors["huge trees (511 leaves)"] >= base - 0.005
