"""Shared workloads and reporting helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Scales are
reduced relative to the paper's 500M-request production trace (see
DESIGN.md "Scale notes"): windows are 10^4-ish requests and the cache is
sized as a fixed fraction of the trace footprint, which preserves the
hit-ratio regime.

Results are printed *and* appended to ``benchmarks/results/<name>.txt`` so
that ``pytest benchmarks/ --benchmark-only`` leaves a readable record.
"""

from __future__ import annotations

import io
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs import MetricsRegistry, use_registry
from repro.trace import (
    ContentClass,
    SyntheticConfig,
    Trace,
    compute_stats,
    generate_mixed_trace,
    generate_trace,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: The canonical CDN-like mix used across benchmarks: hot small web objects,
#: a long tail of rarely re-requested photos (~60% one-hit wonders), and a
#: small set of large software downloads.
WEB = ContentClass("web", 2_000, 1.1, 40, 1.0, 800)
PHOTO = ContentClass("photo", 15_000, 0.6, 100, 0.8, 2_000)
SOFTWARE = ContentClass("software", 150, 0.9, 3_000, 1.0, 30_000)


def cdn_mix_trace(n_requests: int = 30_000, seed: int = 42) -> Trace:
    """The benchmark suite's standard CDN-like mixed workload."""
    return generate_mixed_trace(
        [WEB, PHOTO, SOFTWARE], [0.55, 0.35, 0.10],
        n_requests=n_requests, seed=seed,
    )


def accuracy_trace(n_requests: int = 16_000, seed: int = 42) -> Trace:
    """Workload for the accuracy experiments (Figures 5a-5c, 8).

    Uses the same CDN mix as the hit-ratio benchmarks: its OPT labels are
    both balanced (roughly half the requests are admitted) and learnable
    (~89% eval accuracy with the paper's training configuration, vs the
    paper's 93% on the production trace).
    """
    return cdn_mix_trace(n_requests=n_requests, seed=seed)


def zipf_locality_trace(n_requests: int = 16_000, seed: int = 17) -> Trace:
    """Single-class Zipf trace with temporal locality (secondary workload
    for robustness checks)."""
    return generate_trace(
        SyntheticConfig(
            n_requests=n_requests, n_objects=max(500, n_requests // 5),
            alpha=0.9, size_median=40, size_sigma=1.2, size_max=4_000,
            locality=0.25, seed=seed,
        )
    )


def cache_for(trace: Trace, fraction: int = 10) -> int:
    """Cache sized as footprint / ``fraction`` (the paper's 256GB server
    similarly holds a small fraction of the week's working set)."""
    return compute_stats(trace).footprint_bytes // fraction


def report(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "w") as handle:
        handle.write(text + "\n")


@contextmanager
def observed(ring_size: int = 256) -> Iterator[MetricsRegistry]:
    """Install a fresh :class:`repro.obs.MetricsRegistry` for the block.

    Benchmarks that want per-stage breakdowns wrap the measured run::

        with observed() as registry:
            simulate(trace, policy)
        report("my_bench", stage_table(registry))

    instead of sprinkling their own ``time.perf_counter()`` pairs.
    """
    registry = MetricsRegistry(ring_size=ring_size)
    with use_registry(registry):
        yield registry


def stage_table(registry: MetricsRegistry) -> str:
    """Render a registry's span aggregates as a per-stage breakdown table."""
    spans = registry.to_dict()["spans"]
    rows = [
        [
            name,
            stats["count"],
            stats["total_seconds"],
            stats["mean_seconds"],
            stats["max_seconds"],
        ]
        for name, stats in sorted(spans.items())
    ]
    return table(["stage", "calls", "total_s", "mean_s", "max_s"], rows)


def table(header: list[str], rows: list[list]) -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in header]
    rendered_rows = []
    for row in rows:
        rendered = [
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row
        ]
        widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
        rendered_rows.append(rendered)
    out = io.StringIO()
    out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    for rendered in rendered_rows:
        out.write("  ".join(c.rjust(w) for c, w in zip(rendered, widths)) + "\n")
    return out.getvalue().rstrip()
