"""Tests for the LFO model and cache policy."""

import numpy as np
import pytest

from repro.core import LFOCache, LFOModel
from repro.features import Dataset, FeatureTracker, feature_names
from repro.gbdt import GBDTParams
from repro.trace import Request


def _toy_model(cutoff=0.5, n_gaps=4, positive_small=True):
    """A model trained to admit small objects (or large, when inverted)."""
    rng = np.random.default_rng(0)
    n = 2000
    names = feature_names(n_gaps)
    X = np.zeros((n, len(names)))
    X[:, 0] = rng.integers(1, 100, size=n)  # size
    X[:, 1] = X[:, 0]
    X[:, 2] = rng.integers(0, 1000, size=n)
    X[:, 3:] = rng.exponential(10, size=(n, n_gaps))
    if positive_small:
        y = (X[:, 0] < 50).astype(float)
    else:
        y = (X[:, 0] >= 50).astype(float)
    ds = Dataset(X, y, names)
    return LFOModel.train(
        ds, params=GBDTParams(num_iterations=10), cutoff=cutoff
    )


class TestLFOModel:
    def test_likelihood_shape(self):
        model = _toy_model()
        X = np.zeros((5, 3 + 4))
        X[:, 0] = [10, 20, 60, 80, 90]
        p = model.likelihood(X)
        assert p.shape == (5,)

    def test_learned_size_rule(self):
        model = _toy_model()
        small = np.zeros(7)
        small[0] = 10
        small[1] = 10
        big = small.copy()
        big[0] = 90
        big[1] = 90
        assert model.admit(small)
        assert not model.admit(big)

    def test_prediction_error_zero_on_learnable_rule(self):
        model = _toy_model()
        X = np.zeros((100, 7))
        X[:, 0] = np.linspace(1, 99, 100)
        X[:, 1] = X[:, 0]
        y = (X[:, 0] < 50).astype(float)
        assert model.prediction_error(X, y) < 0.05

    def test_cutoff_changes_decisions(self):
        lenient = _toy_model(cutoff=0.01)
        strict = _toy_model(cutoff=0.99)
        borderline = np.zeros(7)
        borderline[0] = 49
        borderline[1] = 49
        assert lenient.admit(borderline) or not strict.admit(borderline)


class TestLFOCache:
    def test_cold_start_behaves_like_lru(self):
        policy = LFOCache(cache_size=20, model=None, n_gaps=4)
        policy.on_request(Request(0, 1, 10))
        policy.on_request(Request(1, 2, 10))
        policy.on_request(Request(2, 1, 10))  # refresh 1
        policy.on_request(Request(3, 3, 10))  # evicts 2 (LRU)
        assert policy.contains(1)
        assert not policy.contains(2)

    def test_admission_follows_model(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(cache_size=1000, model=model, n_gaps=4)
        policy.on_request(Request(0, 1, 10))   # small: admitted
        policy.on_request(Request(1, 2, 90))   # large: rejected
        assert policy.contains(1)
        assert not policy.contains(2)

    def test_eviction_targets_lowest_likelihood(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(cache_size=70, model=model, n_gaps=4)
        policy.on_request(Request(0, 1, 40))  # small-ish: mid likelihood
        policy.on_request(Request(1, 2, 10))  # small: high likelihood
        policy.on_request(Request(2, 3, 30))  # forces eviction of obj 1
        assert not policy.contains(1)
        assert policy.contains(2)
        assert policy.contains(3)

    def test_rescore_on_hit(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(cache_size=100, model=model, n_gaps=4)
        policy.on_request(Request(0, 1, 10))
        before = policy._score[1]
        policy.on_request(Request(50.0, 1, 10))
        after = policy._score[1]
        # The score was recomputed (gap features changed the input).
        assert before != after or policy._stamp[1] == policy._counter

    def test_capacity_invariant_with_model(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(cache_size=150, model=model, n_gaps=4)
        rng = np.random.default_rng(1)
        sizes = {}
        for t in range(400):
            obj = int(rng.integers(0, 60))
            size = sizes.setdefault(obj, int(rng.integers(1, 80)))
            policy.on_request(Request(float(t), obj, size))
            assert 0 <= policy.used_bytes <= 150

    def test_set_model_swaps_behaviour(self):
        policy = LFOCache(cache_size=1000, model=None, n_gaps=4)
        policy.on_request(Request(0, 1, 90))  # cold start admits anything
        assert policy.contains(1)
        policy.set_model(_toy_model(n_gaps=4))
        policy.on_request(Request(1, 2, 90))  # now rejected: too large
        assert not policy.contains(2)

    def test_last_features_exposed(self):
        policy = LFOCache(cache_size=100, n_gaps=4)
        policy.on_request(Request(0, 1, 10))
        assert policy.last_features is not None
        assert policy.last_features[0] == 10

    def test_reset(self):
        policy = LFOCache(cache_size=100, model=_toy_model(n_gaps=4), n_gaps=4)
        policy.on_request(Request(0, 1, 10))
        policy.reset()
        assert policy.used_bytes == 0
        assert policy.last_features is None

    def test_tracker_shared(self):
        tracker = FeatureTracker(n_gaps=4)
        policy = LFOCache(cache_size=100, n_gaps=4, tracker=tracker)
        policy.on_request(Request(0, 1, 10))
        assert tracker.n_tracked == 1


class TestLFOVariants:
    def test_invalid_eviction_mode(self):
        with pytest.raises(ValueError):
            LFOCache(cache_size=100, eviction="random")

    def test_invalid_rescore_interval(self):
        with pytest.raises(ValueError):
            LFOCache(cache_size=100, rescore_interval=-1)

    def test_lru_eviction_ignores_scores(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(
            cache_size=70, model=model, n_gaps=4, eviction="lru"
        )
        policy.on_request(Request(0, 1, 40))  # mid likelihood, oldest
        policy.on_request(Request(1, 2, 10))  # high likelihood
        policy.on_request(Request(2, 3, 30))  # needs space -> evict LRU (1)
        assert not policy.contains(1)
        assert policy.contains(2)

    def test_rescore_refreshes_stale_ranks(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(
            cache_size=1000, model=model, n_gaps=4, rescore_interval=3
        )
        policy.on_request(Request(0.0, 1, 10))
        stale = policy._score[1]
        # Two more requests trigger the batch rescore at request #3.
        policy.on_request(Request(50.0, 2, 10))
        policy.on_request(Request(100.0, 3, 10))
        refreshed = policy._score[1]
        # Object 1's gap_1 grew from 0 to 100: the score must have been
        # recomputed (stamp advanced even if the value barely moved).
        assert policy._stamp[1] > 1
        assert isinstance(refreshed, float) and isinstance(stale, float)

    def test_rescore_capacity_invariant(self):
        model = _toy_model(n_gaps=4)
        policy = LFOCache(
            cache_size=150, model=model, n_gaps=4, rescore_interval=10
        )
        rng = np.random.default_rng(3)
        sizes = {}
        for t in range(300):
            obj = int(rng.integers(0, 40))
            size = sizes.setdefault(obj, int(rng.integers(1, 60)))
            policy.on_request(Request(float(t), obj, size))
            assert 0 <= policy.used_bytes <= 150


class TestHeapBounded:
    """Regression: hit-heavy traffic used to grow the likelihood heap
    without bound (one stale tuple per re-rank, never reclaimed)."""

    def test_heap_stays_proportional_to_residents(self):
        from repro.core.lfo import _COMPACT_MIN_HEAP

        model = _toy_model(cutoff=0.0, n_gaps=4)
        policy = LFOCache(cache_size=10_000, model=model, n_gaps=4)
        for t in range(5000):
            policy.on_request(Request(float(t), t % 25, 10))
            live = len(policy._stamp)
            assert len(policy._heap) <= max(_COMPACT_MIN_HEAP, 2 * live + 1)
        assert policy.n_objects == 25

    def test_compaction_preserves_victim_choice(self):
        model = _toy_model(cutoff=0.0, n_gaps=4)
        policy = LFOCache(cache_size=10_000, model=model, n_gaps=4)
        for t in range(500):
            policy.on_request(Request(float(t), t % 10, 10))
        before = policy._heap_min()
        policy._compact_heap()
        assert policy._heap_min() == before
        assert len(policy._heap) == len(policy._stamp)


class TestMissHookParity:
    """``apply_scored`` must honour the base-class miss-observation
    contract (regression: LFO skipped ``_on_miss_observed`` entirely)."""

    def _observing(self, policy):
        observed = []
        original = type(policy)._on_miss_observed

        def patched(self_, request):
            observed.append(request.obj)
            original(self_, request)

        policy._on_miss_observed = patched.__get__(policy)
        return observed

    def _assert_one_call_per_miss(self, policy):
        observed = self._observing(policy)
        rng = np.random.default_rng(17)
        sizes = {}
        misses = 0
        for t in range(500):
            obj = int(rng.integers(0, 60))
            size = sizes.setdefault(obj, int(rng.integers(1, 80)))
            if not policy.on_request(Request(float(t), obj, size)):
                misses += 1
        assert misses > 0
        assert len(observed) == misses

    def test_model_mode_observes_every_miss(self):
        model = _toy_model(n_gaps=4)
        self._assert_one_call_per_miss(
            LFOCache(cache_size=300, model=model, n_gaps=4)
        )

    def test_cold_start_observes_every_miss(self):
        self._assert_one_call_per_miss(LFOCache(cache_size=300, n_gaps=4))

    def test_refused_admission_still_observed(self):
        model = _toy_model(n_gaps=4)  # rejects large objects
        policy = LFOCache(cache_size=1000, model=model, n_gaps=4)
        observed = self._observing(policy)
        policy.on_request(Request(0, 1, 90))  # rejected by the model
        assert not policy.contains(1)
        assert observed == [1]


class TestEvictionAbortRestore:
    """LFO shares the base eviction plan: an aborted plan restores victims
    *and* re-ranks them so they stay visible to likelihood eviction."""

    def _refusing_after(self, policy, n):
        original = type(policy)._select_victim
        state = {"left": n}

        def patched(self_, incoming):
            if state["left"] <= 0:
                return None
            state["left"] -= 1
            return original(self_, incoming)

        policy._select_victim = patched.__get__(policy)
        return state

    def test_cold_start_abort_restores_lru_state(self):
        policy = LFOCache(cache_size=100)  # model None: admit-all LRU
        policy.on_request(Request(0, 1, 60))
        policy.on_request(Request(1, 2, 40))
        self._refusing_after(policy, 1)
        policy.on_request(Request(2, 3, 90))
        assert policy.contains(1) and policy.contains(2)
        assert not policy.contains(3)
        assert policy.used_bytes == 100
        assert set(policy._lru) == {1, 2}

    def test_model_mode_abort_reranks_restored_victims(self):
        model = _toy_model(cutoff=0.0)  # admit everything, rank by score
        policy = LFOCache(cache_size=100, model=model, n_gaps=4)
        policy.on_request(Request(0, 1, 60))
        policy.on_request(Request(1, 2, 40))
        assert policy.used_bytes == 100
        state = self._refusing_after(policy, 1)
        policy.on_request(Request(2, 3, 90))
        assert policy.contains(1) and policy.contains(2)
        assert policy.used_bytes == 100
        # The restored victim must be re-ranked: victim selection still
        # reaches both residents once the refusal is lifted.
        state["left"] = 10
        policy.on_request(Request(3, 3, 90))
        assert policy.contains(3)
        assert not policy.contains(1) and not policy.contains(2)
