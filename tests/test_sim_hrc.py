"""Tests for hit-ratio curves and cache provisioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import LRUCache
from repro.sim import (
    che_hit_ratio_curve,
    lru_hit_ratio_curve,
    partition_cache,
    reuse_distance_bytes,
    simulate,
)
from repro.trace import Request, SyntheticConfig, Trace, generate_trace


class TestReuseDistance:
    def test_first_access_is_minus_one(self):
        t = Trace([Request(0, 1, 5), Request(1, 2, 3)])
        assert reuse_distance_bytes(t).tolist() == [-1, -1]

    def test_immediate_reuse_equals_own_size(self):
        t = Trace([Request(0, 1, 5), Request(1, 1, 5)])
        assert reuse_distance_bytes(t).tolist() == [-1, 5]

    def test_intervening_objects_counted_once(self):
        # 1, 2, 2, 1: reuse of 1 spans object 2 (3 bytes, counted once).
        t = Trace(
            [Request(0, 1, 5), Request(1, 2, 3), Request(2, 2, 3),
             Request(3, 1, 5)]
        )
        d = reuse_distance_bytes(t)
        assert d[3] == 3 + 5  # distinct bytes (obj 2) + own size

    def test_paper_trace_known_values(self, paper_trace):
        d = reuse_distance_bytes(paper_trace)
        # Request 3 is b after c: distinct bytes since b = c(1) + b(1) = 2.
        assert d[3] == 2
        # Request 5 is a after b,c,b,d: 1 + 1 + 2 + 3 = 7.
        assert d[5] == 7

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_matches_naive_computation(self, seed):
        rng = np.random.default_rng(seed)
        sizes = {o: int(rng.integers(1, 8)) for o in range(10)}
        objs = rng.integers(0, 10, size=80)
        t = Trace([Request(i, int(o), sizes[int(o)]) for i, o in enumerate(objs)])
        fast = reuse_distance_bytes(t)
        # Naive O(n^2) reference.
        for i in range(len(t)):
            prev = None
            for j in range(i - 1, -1, -1):
                if objs[j] == objs[i]:
                    prev = j
                    break
            if prev is None:
                assert fast[i] == -1
            else:
                distinct = {int(objs[k]) for k in range(prev + 1, i)}
                expected = sum(sizes[o] for o in distinct) + sizes[int(objs[i])]
                assert fast[i] == expected


class TestLRUHitRatioCurve:
    @pytest.fixture(scope="class")
    def zipf(self):
        return generate_trace(
            SyntheticConfig(
                n_requests=6000, n_objects=500, alpha=1.0,
                size_median=30, size_sigma=0.8, size_max=500, seed=6,
            )
        )

    def test_monotone_nondecreasing(self, zipf):
        curve = lru_hit_ratio_curve(zipf)
        assert (np.diff(curve.bhr) >= -1e-12).all()

    def test_bounded(self, zipf):
        curve = lru_hit_ratio_curve(zipf)
        assert curve.bhr.min() >= 0.0
        assert curve.bhr.max() <= 1.0

    def test_matches_simulation(self, zipf):
        """The analytic curve agrees with actually simulating LRU."""
        curve = lru_hit_ratio_curve(zipf)
        for cache_size in (2_000, 10_000):
            simulated = simulate(
                zipf, LRUCache(cache_size), warmup_fraction=0.0
            ).bhr
            assert curve.at(cache_size) == pytest.approx(simulated, abs=0.02)

    def test_huge_cache_reaches_compulsory_limit(self, zipf):
        curve = lru_hit_ratio_curve(zipf)
        # At the curve's right end, only compulsory misses remain.
        prv = zipf.prev_occurrence()
        compulsory_bytes = float(zipf.sizes[prv < 0].sum())
        limit = 1.0 - compulsory_bytes / float(zipf.sizes.sum())
        assert curve.bhr[-1] == pytest.approx(limit, abs=1e-9)

    def test_che_approximation_tracks_exact(self, zipf):
        exact = lru_hit_ratio_curve(zipf)
        che = che_hit_ratio_curve(zipf)
        for c in (2_000, 8_000, 20_000):
            assert che.at(c) == pytest.approx(exact.at(c), abs=0.08)


class TestPartitionCache:
    def _curves(self):
        hot = generate_trace(
            SyntheticConfig(
                n_requests=4000, n_objects=100, alpha=1.2,
                size_median=50, size_sigma=0.5, size_max=500, seed=1,
            )
        )
        cold = generate_trace(
            SyntheticConfig(
                n_requests=4000, n_objects=4000, alpha=0.1,
                size_median=50, size_sigma=0.5, size_max=500, seed=2,
            )
        )
        return lru_hit_ratio_curve(hot), lru_hit_ratio_curve(cold)

    def test_hot_tenant_gets_space_first(self):
        hot, cold = self._curves()
        alloc = partition_cache([hot, cold], [1.0, 1.0], total_bytes=6_000)
        assert alloc[0] > alloc[1]

    def test_allocation_within_budget(self):
        hot, cold = self._curves()
        alloc = partition_cache([hot, cold], [1.0, 1.0], total_bytes=9_999)
        assert sum(alloc) <= 9_999

    def test_beats_even_split(self):
        hot, cold = self._curves()
        budget = 6_000
        alloc = partition_cache([hot, cold], [1.0, 1.0], budget)
        optimised = hot.at(alloc[0]) + cold.at(alloc[1])
        even = hot.at(budget / 2) + cold.at(budget / 2)
        assert optimised >= even - 1e-9

    def test_validation(self):
        hot, _ = self._curves()
        with pytest.raises(ValueError):
            partition_cache([hot], [1.0, 2.0], 100)
        with pytest.raises(ValueError):
            partition_cache([hot], [1.0], 0)
