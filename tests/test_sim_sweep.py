"""Tests for cache-size sweeps and crossover analysis."""

import numpy as np
import pytest

from repro.cache import LRUCache, S4LRUCache
from repro.sim import (
    HitRatioCurve,
    crossover_size,
    lru_hit_ratio_curve,
    policy_hit_ratio_curve,
    sweep_policies,
)


class TestPolicyCurve:
    def test_lru_sweep_matches_analytic_curve(self, small_zipf_trace):
        sizes = [300, 1_000, 3_000]
        measured = policy_hit_ratio_curve(
            small_zipf_trace, LRUCache, sizes, warmup_fraction=0.0
        )
        analytic = lru_hit_ratio_curve(small_zipf_trace)
        for s in sizes:
            assert measured.at(s) == pytest.approx(analytic.at(s), abs=0.02)

    def test_monotone_for_stack_policies(self, small_zipf_trace):
        curve = policy_hit_ratio_curve(
            small_zipf_trace, LRUCache, [200, 500, 2_000, 8_000]
        )
        assert (np.diff(curve.bhr) >= -1e-12).all()

    def test_metric_selection(self, small_zipf_trace):
        bhr = policy_hit_ratio_curve(small_zipf_trace, LRUCache, [500])
        ohr = policy_hit_ratio_curve(
            small_zipf_trace, LRUCache, [500], metric="ohr"
        )
        assert bhr.bhr[0] != ohr.bhr[0]

    def test_validation(self, small_zipf_trace):
        with pytest.raises(ValueError):
            policy_hit_ratio_curve(small_zipf_trace, LRUCache, [])
        with pytest.raises(ValueError):
            policy_hit_ratio_curve(
                small_zipf_trace, LRUCache, [100], metric="latency"
            )

    def test_sweep_policies_returns_all(self, small_zipf_trace):
        curves = sweep_policies(
            small_zipf_trace,
            {"LRU": LRUCache, "S4LRU": S4LRUCache},
            [500, 2_000],
        )
        assert set(curves) == {"LRU", "S4LRU"}


class TestCrossover:
    def test_crossing_curves(self):
        a = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.0, 1.0]))
        b = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.5, 0.5]))
        x = crossover_size(a, b)
        assert x == pytest.approx(5.0)

    def test_a_always_leads(self):
        a = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.6, 0.9]))
        b = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.1, 0.2]))
        assert crossover_size(a, b) == 0.0

    def test_a_never_catches(self):
        a = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.1, 0.2]))
        b = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.6, 0.9]))
        assert crossover_size(a, b) is None

    def test_different_grids(self):
        a = HitRatioCurve(np.array([0.0, 4.0, 8.0]), np.array([0.0, 0.4, 0.8]))
        b = HitRatioCurve(np.array([0.0, 10.0]), np.array([0.3, 0.3]))
        x = crossover_size(a, b)
        assert x == pytest.approx(3.0)
