"""Tests for trace statistics."""

import numpy as np
import pytest

from repro.trace import (
    Request,
    Trace,
    compute_stats,
    popularity_histogram,
    reuse_distances,
)


class TestComputeStats:
    def test_paper_trace(self, paper_trace):
        stats = compute_stats(paper_trace)
        assert stats.n_requests == 12
        assert stats.n_objects == 4
        assert stats.footprint_bytes == 7
        assert stats.one_hit_wonder_ratio == 0.0
        # All four objects have < 5 requests.
        assert stats.under_five_requests_ratio == 1.0

    def test_one_hit_wonders_counted(self):
        t = Trace([Request(0, 1, 1), Request(1, 2, 1), Request(2, 1, 1)])
        stats = compute_stats(t)
        assert stats.one_hit_wonder_ratio == 0.5  # object 2 of 2 objects

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            compute_stats(Trace())

    def test_as_dict_complete(self, paper_trace):
        d = compute_stats(paper_trace).as_dict()
        assert d["n_requests"] == 12
        assert "p99_size" in d


class TestPopularityHistogram:
    def test_bucket_assignment(self):
        # Object 0: 1 request (bucket 0); object 1: 5 requests (bucket 2).
        reqs = [Request(0, 0, 1)] + [Request(i + 1, 1, 1) for i in range(5)]
        hist = popularity_histogram(Trace(reqs))
        assert hist[0] == 1
        assert hist[2] == 1
        assert hist.sum() == 2


class TestReuseDistances:
    def test_paper_trace(self, paper_trace):
        d = reuse_distances(paper_trace)
        assert d[0] == 5  # a at 0, next a at 5
        assert d[11] == -1  # final request never reused

    def test_all_unique_trace(self):
        t = Trace([Request(i, i, 1) for i in range(5)])
        assert (reuse_distances(t) == -1).all()
