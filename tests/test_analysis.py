"""Tests for the static-analysis framework (``repro.analysis``).

Every rule gets at least one *bad* fixture (must fire) and one *good*
fixture (must stay silent), compiled from strings so the fixtures cannot
drift with the repo.  The last test runs ``lfo lint --format json`` over
the actual repo tree and requires it to exit 0 — the shipped code is lint
clean by construction.
"""

from __future__ import annotations

import json
import os
import textwrap
import unittest
from pathlib import Path

from repro.analysis import (
    check_source,
    render_json,
    render_text,
    rule_ids,
    run_analysis,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def violations(
    source: str, module: str = "repro.sim.fake", select: list[str] | None = None
) -> list[str]:
    """Rule ids fired on a dedented source snippet."""
    found = check_source(
        textwrap.dedent(source), module=module, select=select
    )
    return [v.rule_id for v in found]


class DeterminismRngRuleTest(unittest.TestCase):
    def test_bad_stdlib_random_import(self) -> None:
        self.assertIn(
            "det-rng",
            violations("import random\nx = random.random()\n"),
        )

    def test_bad_legacy_numpy_singleton(self) -> None:
        self.assertIn(
            "det-rng",
            violations(
                "import numpy as np\nx = np.random.rand(3)\n",
                module="repro.opt.fake",
            ),
        )

    def test_bad_unseeded_default_rng(self) -> None:
        self.assertIn(
            "det-rng",
            violations(
                "import numpy as np\nrng = np.random.default_rng()\n",
                module="benchmarks.bench_fake",
            ),
        )

    def test_good_seeded_generator(self) -> None:
        self.assertNotIn(
            "det-rng",
            violations(
                """
                import numpy as np

                def draw(seed: int) -> float:
                    rng = np.random.default_rng(seed)
                    return float(rng.random())
                """
            ),
        )

    def test_out_of_scope_module_ignored(self) -> None:
        # repro.cache draws from per-policy seeded RNGs; the determinism
        # scope covers sim/opt/gbdt/features/core/trace.synthetic and
        # benchmarks, not the policy zoo.
        self.assertEqual(
            [],
            violations(
                "import random\n",
                module="repro.cache.fake",
                select=["det-rng"],
            ),
        )

    def test_core_module_in_scope(self) -> None:
        # repro.core entered the deterministic scope with sampled
        # eviction: the candidate sampler's draws decide victim sequences.
        self.assertIn(
            "det-rng",
            violations(
                "import numpy as np\nrng = np.random.default_rng()\n",
                module="repro.core.fake",
            ),
        )


class DeterminismWallClockRuleTest(unittest.TestCase):
    def test_bad_time_time(self) -> None:
        self.assertIn(
            "det-wallclock",
            violations("import time\nstamp = time.time()\n"),
        )

    def test_bad_datetime_now(self) -> None:
        self.assertIn(
            "det-wallclock",
            violations(
                "from datetime import datetime\nt = datetime.now()\n",
                module="repro.trace.synthetic",
            ),
        )

    def test_good_perf_counter(self) -> None:
        self.assertEqual(
            [],
            violations(
                "from time import perf_counter\nt0 = perf_counter()\n",
                select=["det-wallclock"],
            ),
        )


class ExecutorSharedStateRuleTest(unittest.TestCase):
    def test_bad_bound_method_submit(self) -> None:
        self.assertIn(
            "conc-submit-shared",
            violations(
                """
                class Trainer:
                    def kick(self):
                        self.pool.submit(self._train, 1)
                """,
                module="repro.core.fake",
            ),
        )

    def test_bad_lambda_over_self(self) -> None:
        self.assertIn(
            "conc-submit-shared",
            violations(
                """
                class Trainer:
                    def kick(self):
                        self.pool.submit(lambda: self.train())
                """,
                module="repro.core.fake",
            ),
        )

    def test_bad_self_as_argument(self) -> None:
        self.assertIn(
            "conc-submit-shared",
            violations(
                """
                class Trainer:
                    def kick(self):
                        self.pool.submit(train_fn, self.buffer)
                """,
                module="repro.core.fake",
            ),
        )

    def test_good_module_level_function_of_snapshots(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                class Trainer:
                    def kick(self):
                        args = (list(self.buffer), self.cache_size)
                        self.pool.submit(train_fn, *args)
                """,
                module="repro.core.fake",
                select=["conc-submit-shared"],
            ),
        )


class RequestPathLockRuleTest(unittest.TestCase):
    def test_bad_with_lock_in_on_request(self) -> None:
        self.assertIn(
            "conc-lock-request-path",
            violations(
                """
                class Cache:
                    def on_request(self, request):
                        with self._lock:
                            return True
                """,
                module="repro.core.fake",
            ),
        )

    def test_bad_acquire_in_on_request(self) -> None:
        self.assertIn(
            "conc-lock-request-path",
            violations(
                """
                class Cache:
                    def on_request(self, request):
                        self._mutex.acquire()
                        return True
                """,
                module="repro.core.fake",
            ),
        )

    def test_good_lock_outside_request_path(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                class Registry:
                    def create(self, name):
                        with self._lock:
                            return self._make(name)
                """,
                module="repro.obs.fake",
                select=["conc-lock-request-path"],
            ),
        )


class ObsLiteralNameRuleTest(unittest.TestCase):
    def test_bad_fstring_name(self) -> None:
        self.assertIn(
            "obs-literal-name",
            violations(
                """
                def record(registry, obj_id):
                    registry.counter(f"hits.{obj_id}").inc()
                """,
                module="repro.core.fake",
            ),
        )

    def test_bad_variable_name(self) -> None:
        self.assertIn(
            "obs-literal-name",
            violations(
                """
                def record(registry, which):
                    registry.histogram(which).observe(1.0)
                """,
                module="repro.core.fake",
            ),
        )

    def test_good_literal_name(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def record(registry):
                    registry.counter("sim.hits").inc()
                """,
                module="repro.core.fake",
                select=["obs-literal-name"],
            ),
        )

    def test_good_registry_forwarding_layer(self) -> None:
        # The registry implementation itself forwards a `name` parameter;
        # that is the wrapper layer, not an instrumentation call site.
        self.assertEqual(
            [],
            violations(
                """
                class Registry:
                    def span(self, name: str):
                        return self.tracer.span(name)
                """,
                module="repro.obs.fake",
                select=["obs-literal-name"],
            ),
        )


class ObsNameStyleRuleTest(unittest.TestCase):
    def test_bad_camel_case(self) -> None:
        self.assertIn(
            "obs-name-style",
            violations(
                'def f(registry):\n    registry.counter("SimHits").inc()\n',
                module="repro.core.fake",
            ),
        )

    def test_good_dotted_snake_case(self) -> None:
        self.assertEqual(
            [],
            violations(
                'def f(registry):\n'
                '    registry.counter("online.failed_retrains").inc()\n',
                module="repro.core.fake",
                select=["obs-name-style"],
            ),
        )


class ObsNameUniqueRuleTest(unittest.TestCase):
    def test_bad_same_name_two_kinds(self) -> None:
        fired = violations(
            """
            def f(registry):
                registry.counter("sim.latency").inc()
                registry.histogram("sim.latency").observe(0.1)
            """,
            module="repro.core.fake",
        )
        self.assertEqual(
            2, sum(1 for rule in fired if rule == "obs-name-unique")
        )

    def test_good_one_kind_many_sites(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f(registry):
                    registry.counter("sim.hits").inc()
                    registry.counter("sim.hits").inc(5)
                """,
                module="repro.core.fake",
                select=["obs-name-unique"],
            ),
        )


class BroadExceptRuleTest(unittest.TestCase):
    def test_bad_silent_broad_except(self) -> None:
        self.assertIn(
            "rob-broad-except",
            violations(
                """
                def f():
                    try:
                        work()
                    except Exception:
                        pass
                """,
                module="repro.core.fake",
            ),
        )

    def test_bad_bare_except(self) -> None:
        self.assertIn(
            "rob-broad-except",
            violations(
                "def f():\n    try:\n        work()\n    except:\n        x = 1\n",
                module="repro.core.fake",
            ),
        )

    def test_bad_logs_but_never_counts(self) -> None:
        self.assertIn(
            "rob-broad-except",
            violations(
                """
                def f(logger):
                    try:
                        work()
                    except Exception as exc:
                        logger.warning("failed", exc_info=exc)
                """,
                module="repro.core.fake",
            ),
        )

    def test_good_logs_and_counts(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f(logger, registry):
                    try:
                        work()
                    except Exception as exc:
                        logger.warning("failed (%s)", type(exc).__name__)
                        registry.counter("online_trainer_errors").inc()
                """,
                module="repro.core.fake",
                select=["rob-broad-except"],
            ),
        )

    def test_good_reraise(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f():
                    try:
                        work()
                    except Exception:
                        cleanup()
                        raise
                """,
                module="repro.core.fake",
                select=["rob-broad-except"],
            ),
        )

    def test_good_narrow_except(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f():
                    try:
                        work()
                    except (RuntimeError, ValueError):
                        pass
                """,
                module="repro.core.fake",
                select=["rob-broad-except"],
            ),
        )


class SilentDegradeRuleTest(unittest.TestCase):
    def test_bad_silent_narrow_handler(self) -> None:
        # Unlike rob-broad-except, even a *narrow* handler in core/opt/
        # trace must be observable.
        self.assertIn(
            "rob-silent-degrade",
            violations(
                """
                def f():
                    try:
                        work()
                    except KeyError:
                        pass
                """,
                module="repro.core.fake",
            ),
        )

    def test_bad_silent_fallback_branch(self) -> None:
        self.assertIn(
            "rob-silent-degrade",
            violations(
                """
                def read(line, tolerant):
                    if tolerant:
                        return None
                    return parse(line)
                """,
                module="repro.trace.fake",
            ),
        )

    def test_bad_silent_flag_flip(self) -> None:
        self.assertIn(
            "rob-silent-degrade",
            violations(
                """
                def solve(pool):
                    pool_broken = True
                    return pool_broken
                """,
                module="repro.opt.fake",
            ),
        )

    def test_good_handler_logs(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f(logger):
                    try:
                        work()
                    except KeyError:
                        logger.debug("key missing; using default")
                """,
                module="repro.core.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_good_handler_counts(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f(registry):
                    try:
                        work()
                    except KeyError:
                        registry.counter("resilience.key_misses").inc()
                """,
                module="repro.core.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_good_handler_reraises(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f():
                    try:
                        work()
                    except KeyError:
                        raise ValueError("bad key") from None
                """,
                module="repro.trace.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_good_fallback_branch_with_event(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def read(line, tolerant, registry):
                    if tolerant:
                        registry.counter("resilience.skips").inc()
                        return None
                    return parse(line)
                """,
                module="repro.trace.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_good_flag_flip_in_loud_function(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def solve(pool, logger):
                    pool_broken = True
                    logger.warning("pool broke; going serial")
                    return pool_broken
                """,
                module="repro.opt.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_attribute_flag_tests_are_exempt(self) -> None:
        # `self._degraded` guards the per-request hot path; the flip site
        # is counted instead, so the attribute test itself stays quiet.
        self.assertEqual(
            [],
            violations(
                """
                class Cache:
                    def should_admit(self, score):
                        if self._degraded:
                            return True
                        return score > 0.5
                """,
                module="repro.core.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_exception_class_names_are_not_flags(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f(exc):
                    if isinstance(exc, BrokenExecutor):
                        return None
                    return exc
                """,
                module="repro.opt.fake",
                select=["rob-silent-degrade"],
            ),
        )

    def test_out_of_scope_module_ignored(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f():
                    try:
                        work()
                    except KeyError:
                        pass
                """,
                module="repro.sim.fake",
                select=["rob-silent-degrade"],
            ),
        )


class MutableDefaultRuleTest(unittest.TestCase):
    def test_bad_list_default(self) -> None:
        self.assertIn(
            "rob-mutable-default",
            violations(
                "def f(items=[]):\n    items.append(1)\n",
                module="repro.core.fake",
            ),
        )

    def test_bad_dict_call_default(self) -> None:
        self.assertIn(
            "rob-mutable-default",
            violations(
                "def f(*, options=dict()):\n    return options\n",
                module="repro.core.fake",
            ),
        )

    def test_good_none_default(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def f(items=None):
                    items = [] if items is None else items
                    return items
                """,
                module="repro.core.fake",
                select=["rob-mutable-default"],
            ),
        )


class FloatEqualityRuleTest(unittest.TestCase):
    def test_bad_float_literal_eq_in_gbdt(self) -> None:
        self.assertIn(
            "rob-float-eq",
            violations(
                "def split(gain):\n    return gain == 0.5\n",
                module="repro.gbdt.fake",
            ),
        )

    def test_good_tolerance_compare(self) -> None:
        self.assertEqual(
            [],
            violations(
                "def split(gain):\n    return abs(gain - 0.5) < 1e-9\n",
                module="repro.gbdt.fake",
                select=["rob-float-eq"],
            ),
        )

    def test_good_out_of_scope(self) -> None:
        self.assertEqual(
            [],
            violations(
                "def f(x):\n    return x == 0.5\n",
                module="repro.sim.fake",
                select=["rob-float-eq"],
            ),
        )


class PublicApiAnnotationRuleTest(unittest.TestCase):
    def test_bad_unannotated_public_function(self) -> None:
        fired = violations(
            "def simulate(trace, policy):\n    return None\n",
            module="repro.sim.fake",
        )
        self.assertIn("api-annotations", fired)

    def test_bad_missing_return_annotation(self) -> None:
        self.assertIn(
            "api-annotations",
            violations(
                "def simulate(trace: object, policy: object):\n    return None\n",
                module="repro.sim.fake",
            ),
        )

    def test_good_fully_annotated(self) -> None:
        self.assertEqual(
            [],
            violations(
                """
                def simulate(trace: object, policy: object) -> None:
                    return None
                """,
                module="repro.sim.fake",
                select=["api-annotations"],
            ),
        )

    def test_good_private_function_exempt(self) -> None:
        self.assertEqual(
            [],
            violations(
                "def _helper(x):\n    return x\n",
                module="repro.sim.fake",
                select=["api-annotations"],
            ),
        )


class SuppressionTest(unittest.TestCase):
    def test_file_wide_suppression(self) -> None:
        source = (
            "# lint: ignore[det-rng]  # fixture: suppression mechanics\n"
            "import random\n"
        )
        self.assertEqual([], violations(source))

    def test_suppression_is_per_rule(self) -> None:
        source = (
            "# lint: ignore[det-wallclock]  # fixture\n"
            "import random\n"
        )
        self.assertIn("det-rng", violations(source))

    def test_line_scoped_suppression(self) -> None:
        source = (
            "import numpy as np\n"
            "# lint: ignore-next-line[det-rng]  # fixture\n"
            "rng = np.random.default_rng()\n"
        )
        self.assertEqual([], violations(source, select=["det-rng"]))

    def test_line_scoped_suppression_only_covers_next_line(self) -> None:
        source = (
            "import numpy as np\n"
            "# lint: ignore-next-line[det-rng]  # fixture\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng()\n"
        )
        found = check_source(
            textwrap.dedent(source),
            module="repro.sim.fake",
            select=["det-rng"],
        )
        self.assertEqual([4], [v.line for v in found])

    def test_line_scoped_suppression_is_per_rule(self) -> None:
        source = (
            "# lint: ignore-next-line[det-wallclock]  # fixture\n"
            "import random\n"
            "x = random.random()\n"
        )
        self.assertIn("det-rng", violations(source, select=["det-rng"]))

    def test_line_scoped_marker_does_not_suppress_file_wide(self) -> None:
        # The file-wide regex must not also match the next-line form.
        source = (
            "# lint: ignore-next-line[det-rng]  # fixture\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        self.assertIn("det-rng", violations(source, select=["det-rng"]))


class EngineTest(unittest.TestCase):
    def test_unknown_select_rejected(self) -> None:
        with self.assertRaises(ValueError):
            check_source("x = 1\n", select=["no-such-rule"])

    def test_rule_ids_are_stable_and_unique(self) -> None:
        ids = rule_ids()
        self.assertEqual(len(ids), len(set(ids)))
        self.assertIn("det-rng", ids)
        self.assertIn("api-annotations", ids)

    def test_reporters(self) -> None:
        report = run_analysis(
            [REPO_ROOT / "src" / "repro" / "analysis"], root=REPO_ROOT
        )
        text = render_text(report)
        self.assertIn("clean", text)
        document = json.loads(render_json(report))
        self.assertTrue(document["ok"])
        self.assertGreater(document["files_checked"], 0)

    def test_violation_positions_reported(self) -> None:
        found = check_source(
            "import numpy as np\nrng = np.random.default_rng()\n",
            module="repro.sim.fake",
            select=["det-rng"],
        )
        self.assertEqual(1, len(found))
        self.assertEqual(2, found[0].line)
        self.assertIn("det-rng", found[0].render())


class LintCliTest(unittest.TestCase):
    def test_repo_tree_is_lint_clean_json(self) -> None:
        """`lfo lint --format json` on the repo tree exits 0."""
        cwd = os.getcwd()
        try:
            os.chdir(REPO_ROOT)
            import contextlib
            import io

            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                code = main(["lint", "--format", "json"])
            self.assertEqual(0, code, stdout.getvalue())
            document = json.loads(stdout.getvalue())
            self.assertTrue(document["ok"])
            self.assertEqual([], document["violations"])
            self.assertGreater(document["files_checked"], 50)
        finally:
            os.chdir(cwd)

    def test_select_subset_and_explicit_path(self) -> None:
        import contextlib
        import io

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(
                [
                    "lint",
                    "--select", "det-rng,det-wallclock",
                    str(REPO_ROOT / "src" / "repro" / "sim"),
                ]
            )
        self.assertEqual(0, code, stdout.getvalue())

    def test_unknown_rule_id_is_usage_error(self) -> None:
        import contextlib
        import io

        stderr = io.StringIO()
        with contextlib.redirect_stderr(stderr):
            code = main(["lint", "--select", "bogus-rule"])
        self.assertEqual(2, code)
        self.assertIn("bogus-rule", stderr.getvalue())


if __name__ == "__main__":
    unittest.main()
