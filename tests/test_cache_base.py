"""Invariant tests that every cache policy must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    AdaptSizeCache,
    ClockCache,
    FIFOCache,
    GDSCache,
    GDSFCache,
    GDWheelCache,
    HyperbolicCache,
    LFUCache,
    LFUDACache,
    LHDCache,
    LRUCache,
    LRUKCache,
    RandomCache,
    RLCache,
    S4LRUCache,
    TinyLFUCache,
    TwoQCache,
)
from repro.trace import Request, SyntheticConfig, Trace, generate_trace

ALL_POLICIES = [
    RandomCache,
    LRUCache,
    LRUKCache,
    LFUCache,
    LFUDACache,
    S4LRUCache,
    GDSFCache,
    GDWheelCache,
    AdaptSizeCache,
    HyperbolicCache,
    LHDCache,
    TinyLFUCache,
    RLCache,
    FIFOCache,
    ClockCache,
    GDSCache,
    TwoQCache,
]


def _drive(policy, trace):
    hits = []
    for request in trace:
        hits.append(policy.on_request(request))
    return np.array(hits)


@pytest.fixture(scope="module")
def drive_trace():
    return generate_trace(
        SyntheticConfig(
            n_requests=3000, n_objects=250, alpha=0.9,
            size_median=15, size_sigma=1.0, size_max=300, seed=77,
        )
    )


@pytest.mark.parametrize("policy_cls", ALL_POLICIES)
class TestPolicyInvariants:
    def test_capacity_never_exceeded(self, policy_cls, drive_trace):
        policy = policy_cls(cache_size=1000)
        for request in drive_trace:
            policy.on_request(request)
            assert policy.used_bytes <= policy.cache_size
            assert policy.used_bytes >= 0

    def test_hit_requires_prior_request(self, policy_cls, drive_trace):
        policy = policy_cls(cache_size=1000)
        seen = set()
        for request in drive_trace:
            hit = policy.on_request(request)
            if hit:
                assert request.obj in seen
            seen.add(request.obj)

    def test_oversized_object_bypassed(self, policy_cls):
        policy = policy_cls(cache_size=100)
        assert policy.on_request(Request(0, 1, 200)) is False
        assert not policy.contains(1)
        assert policy.used_bytes == 0

    def test_repeated_requests_eventually_hit(self, policy_cls):
        """Any sane policy caches a monomaniac workload."""
        policy = policy_cls(cache_size=1000)
        hits = [policy.on_request(Request(t, 1, 10)) for t in range(50)]
        assert sum(hits) >= 25  # RL explores; others hit ~49 times

    def test_used_bytes_matches_entries(self, policy_cls, drive_trace):
        policy = policy_cls(cache_size=2000)
        _drive(policy, drive_trace)
        assert policy.used_bytes == sum(policy._entries.values())
        assert policy.n_objects == len(policy._entries)

    def test_reset_clears_state(self, policy_cls, drive_trace):
        policy = policy_cls(cache_size=2000)
        _drive(policy, drive_trace[:500])
        policy.reset()
        assert policy.used_bytes == 0
        assert policy.n_objects == 0
        # The policy still works after a reset.
        policy.on_request(Request(0, 1, 10))

    def test_invalid_cache_size(self, policy_cls):
        with pytest.raises(ValueError):
            policy_cls(cache_size=0)

    def test_beats_no_cache(self, policy_cls, drive_trace):
        """Every policy gets a nonzero hit ratio on a Zipf workload with a
        reasonably sized cache."""
        policy = policy_cls(cache_size=3000)
        hits = _drive(policy, drive_trace)
        assert hits.mean() > 0.05

    def test_miss_hook_fires_once_per_miss(self, policy_cls, drive_trace):
        """Hook contract: every observed miss — refused, oversized, or
        admitted — reaches ``_on_miss_observed`` exactly once."""
        policy = policy_cls(cache_size=1000)
        observed = []
        original = policy._on_miss_observed

        def patched(request):
            observed.append(request.obj)
            original(request)

        policy._on_miss_observed = patched
        misses = sum(
            0 if policy.on_request(request) else 1
            for request in drive_trace[:800]
        )
        assert misses > 0
        assert len(observed) == misses


@pytest.mark.parametrize("policy_cls", ALL_POLICIES)
@given(seed=st.integers(0, 100))
@settings(max_examples=5, deadline=None)
def test_capacity_property_random_workloads(policy_cls, seed):
    """Capacity invariant under random workloads with huge size variance."""
    rng = np.random.default_rng(seed)
    policy = policy_cls(cache_size=500)
    sizes = {}
    for t in range(400):
        obj = int(rng.integers(0, 50))
        size = sizes.setdefault(obj, int(rng.integers(1, 400)))
        policy.on_request(Request(float(t), obj, size))
        assert 0 <= policy.used_bytes <= 500


class _ReluctantLRU(LRUCache):
    """LRU that evicts at most ``budget`` victims per admission, then
    refuses — the shape of policy that triggers a mid-plan abort."""

    def __init__(self, cache_size, budget):
        super().__init__(cache_size)
        self.budget = budget
        self._spent = 0

    def _select_victim(self, incoming):
        if self._spent >= self.budget:
            return None
        self._spent += 1
        return super()._select_victim(incoming)

    def on_request(self, request):
        self._spent = 0
        return super().on_request(request)


class TestEvictionAbortRestore:
    """A refused eviction plan must not lose the victims already removed
    (regression: partial-evict-then-bypass leaked cache contents)."""

    def _full_cache(self, budget):
        policy = _ReluctantLRU(cache_size=100, budget=budget)
        policy.on_request(Request(0, 1, 60))
        policy.on_request(Request(1, 2, 40))
        assert policy.used_bytes == 100
        return policy

    def test_aborted_plan_restores_victims(self):
        policy = self._full_cache(budget=1)
        # Object 3 needs both residents evicted; the policy gives up after
        # one, so the admission is bypassed and nothing may be lost.
        hit = policy.on_request(Request(2, 3, 80))
        assert hit is False
        assert not policy.contains(3)
        assert policy.contains(1) and policy.contains(2)
        assert policy.used_bytes == 100
        assert policy.used_bytes == sum(policy._entries.values())
        # The restored residents still hit.
        assert policy.on_request(Request(3, 1, 60)) is True
        assert policy.on_request(Request(4, 2, 40)) is True

    def test_feasible_plan_still_evicts(self):
        policy = self._full_cache(budget=2)
        policy.on_request(Request(2, 3, 80))
        assert policy.contains(3)
        assert not policy.contains(1) and not policy.contains(2)
        assert policy.used_bytes == 80

    def test_restored_victims_stay_evictable(self):
        policy = self._full_cache(budget=1)
        policy.on_request(Request(2, 3, 80))  # aborted, restored
        # With a big enough budget the same admission now succeeds: the
        # restored objects are still reachable by victim selection.
        policy.budget = 2
        policy.on_request(Request(3, 3, 80))
        assert policy.contains(3)
        assert policy.used_bytes == 80

    def test_abort_on_empty_cache_is_noop(self):
        policy = _ReluctantLRU(cache_size=100, budget=0)
        policy.on_request(Request(0, 1, 60))  # fits without eviction
        assert policy.contains(1)
        policy.on_request(Request(1, 2, 80))  # would need eviction: refused
        assert policy.contains(1) and not policy.contains(2)
        assert policy.used_bytes == 60


class _ReluctantGDSF(GDSFCache):
    """GDSF with an eviction budget, for cost-restore regression tests."""

    def __init__(self, cache_size, budget):
        super().__init__(cache_size)
        self.budget = budget
        self._spent = 0

    def _select_victim(self, incoming):
        if self._spent >= self.budget:
            return None
        self._spent += 1
        return super()._select_victim(incoming)

    def on_request(self, request):
        self._spent = 0
        return super().on_request(request)


class TestRestorePreservesCost:
    """Regression: an aborted plan used to restore victims with
    ``cost == size``, silently corrupting cost-aware priorities like
    GDSF's ``freq * cost / size``."""

    def test_base_restore_keeps_original_cost(self):
        policy = _ReluctantLRU(cache_size=100, budget=1)
        policy.on_request(Request(0, 1, 60, cost=900.0))
        policy.on_request(Request(1, 2, 40, cost=7.0))
        assert policy.entry_cost(1) == 900.0
        policy.on_request(Request(2, 3, 80))  # aborted after evicting 1
        assert policy.contains(1) and policy.contains(2)
        assert policy.entry_cost(1) == 900.0
        assert policy.entry_cost(2) == 7.0

    def test_hit_refreshes_tracked_cost(self):
        policy = LRUCache(cache_size=100)
        policy.on_request(Request(0, 1, 60, cost=900.0))
        policy.on_request(Request(1, 1, 60, cost=5.0))
        assert policy.entry_cost(1) == 5.0

    def test_gdsf_priority_survives_abort(self):
        policy = _ReluctantGDSF(cache_size=100, budget=1)
        policy.on_request(Request(0, 1, 60, cost=900.0))
        # Cheap-to-fetch object: cost/size = 0.25 makes it the victim.
        policy.on_request(Request(1, 2, 40, cost=10.0))
        policy.on_request(Request(2, 3, 90))  # needs both: aborted
        assert policy.contains(1) and policy.contains(2)
        assert policy.entry_cost(1) == 900.0
        assert policy.entry_cost(2) == 10.0
        # The restored priority is rebuilt from the *true* cost (age bumped
        # to the victim's 0.25 on eviction, freq restarts at 1): the old
        # size-fallback restore would have produced age + 1.0 instead.
        assert policy._prio[2] == pytest.approx(0.25 + 10.0 / 40)
